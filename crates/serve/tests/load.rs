//! Load-behaviour test for the readiness-driven serve loop: hundreds of
//! idle and slow-loris connections must cost nothing — a concurrent
//! `ping` stays fast with only two workers, the idle deadline reaps the
//! dead weight, and the reaps are visible in the `metrics` response.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use lowvcc_bench::{json, ExperimentContext};
use lowvcc_serve::{Daemon, ServeOptions};

fn tiny_daemon() -> Daemon {
    Daemon::new(ExperimentContext::sized(1, 2_000).expect("tiny suite builds"))
}

fn request(addr: std::net::SocketAddr, line: &str) -> String {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    {
        let mut w = &stream;
        w.write_all(line.as_bytes()).expect("send");
        w.write_all(b"\n").expect("send");
    }
    let mut resp = String::new();
    BufReader::new(&stream)
        .read_line(&mut resp)
        .expect("receive");
    resp.trim_end().to_string()
}

#[test]
fn two_workers_survive_two_hundred_idle_and_loris_connections() {
    const IDLE: usize = 100;
    const LORIS: usize = 100;
    let daemon = tiny_daemon();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let opts = ServeOptions {
        threads: 2,
        max_connections: 300,
        read_timeout: Duration::from_millis(900),
        write_timeout: Duration::from_secs(5),
        drain_deadline: Duration::from_secs(2),
    };

    std::thread::scope(|s| {
        let handle = s.spawn(|| daemon.serve_with(&listener, opts));

        // 100 connections that never send a byte, plus 100 slow-loris
        // peers that send a partial request line and stall mid-frame.
        // On the old thread-per-connection design this pins every
        // worker; on the event loop they are a buffer each.
        let mut dead_weight = Vec::with_capacity(IDLE + LORIS);
        for i in 0..IDLE + LORIS {
            let stream = TcpStream::connect(addr).expect("idle connect");
            if i >= IDLE {
                let mut w = &stream;
                w.write_all(b"{\"experiment\": \"pi").expect("partial send");
            }
            dead_weight.push(stream);
        }

        // With all 200 parked, a real client still gets through fast:
        // sockets live on the event loop, never on the 2 workers.
        let started = Instant::now();
        let resp = request(addr, "{\"experiment\": \"ping\"}");
        let elapsed = started.elapsed();
        let v = json::parse(&resp).expect("ping response parses");
        assert_eq!(v.get("ok").and_then(json::Value::as_bool), Some(true));
        assert!(
            elapsed < Duration::from_secs(1),
            "ping took {elapsed:?} with 200 idle connections parked"
        );

        // The idle deadline reaps all 200, and the reaps are visible in
        // the metrics response. Poll: reaping happens on loop wakeups.
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut reaped = 0;
        while Instant::now() < deadline {
            let resp = request(addr, "{\"experiment\": \"metrics\"}");
            let v = json::parse(&resp).expect("metrics response parses");
            reaped = v
                .get("idle_reaped")
                .and_then(json::Value::as_u64)
                .expect("metrics carries idle_reaped");
            if reaped >= (IDLE + LORIS) as u64 {
                break;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        assert_eq!(
            reaped,
            (IDLE + LORIS) as u64,
            "every idle and loris connection must be reaped"
        );

        // Reaped means actually closed: the parked sockets read EOF.
        for stream in &dead_weight {
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .expect("timeout");
            let mut buf = Vec::new();
            let n = std::io::Read::read_to_end(&mut { stream }, &mut buf).unwrap_or(0);
            assert_eq!(n, 0, "reaped connection must be closed, not answered");
        }

        let resp = request(addr, "{\"experiment\": \"shutdown\"}");
        let v = json::parse(&resp).expect("shutdown response parses");
        assert_eq!(v.get("ok").and_then(json::Value::as_bool), Some(true));
        handle.join().expect("serve thread").expect("serve loop");

        // The reap count also lands in the daemon-side snapshot, and
        // reaps are a subset of timeouts.
        let c = daemon.serve_counters();
        assert_eq!(c.idle_reaped, (IDLE + LORIS) as u64);
        assert!(c.timeouts >= c.idle_reaped);
    });
}
