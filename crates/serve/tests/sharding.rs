//! Sharding guarantees, end to end: the ring partition of the paper
//! grid is a pure function of `(shard count, seed)`, and a router
//! fronting N shard daemons answers every request type byte-identically
//! to the single-process daemon.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use lowvcc_bench::{json, ExperimentContext, ResultStore, SuiteChoice};
use lowvcc_core::CoreConfig;
use lowvcc_serve::router::{start_cluster, ClusterOptions};
use lowvcc_serve::shard::{
    read_through, voltage_anchor, Ring, DEFAULT_RING_SEED, PEER_FETCH_TIMEOUT,
};
use lowvcc_serve::Daemon;
use lowvcc_sram::{CycleTimeModel, Millivolts, PAPER_SWEEP};
use lowvcc_trace::suite;

/// The paper grid partitions identically on every independently
/// constructed ring: 13 sweep voltages × 3 trace specs, anchored and
/// keyed exactly as the router and store ownership hook do it.
#[test]
fn paper_grid_partition_is_deterministic() {
    let core = CoreConfig::silverthorne();
    let timing = CycleTimeModel::silverthorne_45nm();
    let specs = suite(1, 1_000);
    let specs = &specs[..3];

    for shards in [2u32, 3, 5] {
        let a = Ring::new(shards, DEFAULT_RING_SEED);
        let b = Ring::new(shards, DEFAULT_RING_SEED);
        let mut per_shard = vec![0usize; shards as usize];
        for vcc in PAPER_SWEEP.iter() {
            for spec in specs {
                let key = voltage_anchor(core, &timing, spec, vcc);
                let owner = a.owner(key);
                assert_eq!(
                    owner,
                    b.owner(key),
                    "two rings with identical config disagree on {vcc:?}"
                );
                assert!(owner < shards, "owner out of range");
                assert!(a.owns(owner, key));
                assert!(
                    !a.owns((owner + 1) % shards, key),
                    "ownership must be exclusive"
                );
                per_shard[owner as usize] += 1;
            }
        }
        assert_eq!(per_shard.iter().sum::<usize>(), 13 * 3);
        // The jump hash spreads 39 keys over >=2 shards; a fully
        // lopsided partition would mean the seed or hash regressed.
        assert!(
            per_shard.iter().filter(|&&n| n > 0).count() >= 2,
            "partition over {shards} shards collapsed to one: {per_shard:?}"
        );
    }
}

/// One line of protocol conversation over an existing stream.
fn roundtrip(stream: &TcpStream, reader: &mut BufReader<&TcpStream>, line: &str) -> String {
    {
        let mut w = stream;
        w.write_all(line.as_bytes()).expect("send");
        w.write_all(b"\n").expect("send");
    }
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("receive");
    assert!(resp.ends_with('\n'), "response must be newline-terminated");
    resp.trim_end().to_string()
}

/// A cold 2-shard cluster answers the whole request surface — full
/// sweep, single sweep point, table 1, stall profile, ping, and a
/// malformed line — byte-identically to a cold single-process daemon,
/// and shutdown fans out cleanly.
#[test]
fn router_matches_single_daemon_byte_for_byte() {
    const REQUESTS: &[&str] = &[
        "{\"experiment\": \"ping\"}",
        "not json",
        "{\"experiment\": \"sweep\"}",
        "{\"experiment\": \"sweep\", \"vcc\": 575}",
        "{\"experiment\": \"table1\", \"vcc\": 500}",
        "{\"experiment\": \"stalls\", \"vcc\": 575}",
    ];

    // Reference: the single-process daemon, cold store, same suite.
    let single = Daemon::new(ExperimentContext::sized(1, 2_000).expect("suite builds"));
    let expected: Vec<String> = REQUESTS
        .iter()
        .map(|line| single.handle_line(line).0)
        .collect();

    let cluster = start_cluster(
        SuiteChoice::Sized {
            per_family: 1,
            len: 2_000,
        },
        &ClusterOptions {
            shards: 2,
            jobs: 2,
            ..ClusterOptions::default()
        },
    )
    .expect("cluster starts");
    let router_addr = cluster.router_addr();
    let shard_addrs = cluster.shard_addrs().to_vec();
    assert_eq!(shard_addrs.len(), 2);

    let stream = TcpStream::connect(router_addr).expect("connect to router");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    let mut reader = BufReader::new(&stream);

    for (line, want) in REQUESTS.iter().zip(&expected) {
        let got = roundtrip(&stream, &mut reader, line);
        assert_eq!(&got, want, "sharded response diverges for {line}");
    }

    // The metrics aggregate is router-specific (not byte-compared):
    // it must merge both shards and show the sweep traffic.
    let resp = roundtrip(&stream, &mut reader, "{\"experiment\": \"metrics\"}");
    let v = json::parse(&resp).expect("metrics aggregate parses");
    assert_eq!(v.get("ok").and_then(json::Value::as_bool), Some(true));
    assert_eq!(v.get("router").and_then(json::Value::as_bool), Some(true));
    assert_eq!(v.get("shard_count").and_then(json::Value::as_u64), Some(2));
    let store = v.get("store").expect("aggregated store stats");
    assert!(
        store.get("misses").and_then(json::Value::as_u64) > Some(0),
        "cold sweep must register misses across the cluster"
    );
    let shards = v
        .get("shards")
        .and_then(json::Value::as_array)
        .expect("metrics aggregate must carry per-shard bodies");
    assert_eq!(shards.len(), 2);
    for (i, body) in shards.iter().enumerate() {
        assert_eq!(
            body.get("shard_index").and_then(json::Value::as_u64),
            Some(i as u64),
            "shard bodies must arrive in ring order"
        );
    }

    // Shutdown through the router stops the router and both shards.
    let resp = roundtrip(&stream, &mut reader, "{\"experiment\": \"shutdown\"}");
    let v = json::parse(&resp).expect("shutdown response parses");
    assert_eq!(v.get("ok").and_then(json::Value::as_bool), Some(true));
    cluster.join().expect("clean fan-out shutdown");
    for addr in shard_addrs {
        assert!(
            TcpStream::connect(addr).is_err(),
            "shard {addr} still listening after cluster shutdown"
        );
    }
}

/// One breaker row's field from an aggregated `stats`/`metrics` body.
fn breaker_field(body: &json::Value, shard: u64, field: &str) -> String {
    let rows = body
        .get("breakers")
        .and_then(json::Value::as_array)
        .expect("aggregate must carry a breakers array");
    let row = rows
        .iter()
        .find(|r| r.get("shard").and_then(json::Value::as_u64) == Some(shard))
        .expect("every shard has a breaker row");
    json::render(row.get(field).expect("breaker field"))
}

/// Read-through peer replication, end to end: a shard missing a key
/// locally asks the key's ring owner before simulating; a cold owner
/// answers a miss without cascading (its probe handler never dials
/// anyone); a warm owner ships the record and the fetched point
/// renders byte-identically.
#[test]
fn shards_read_through_to_the_ring_owner() {
    let ring = Ring::new(2, DEFAULT_RING_SEED);
    let ctx_a = ExperimentContext::sized(1, 2_000).expect("suite builds");
    let ctx_b = ExperimentContext::sized(1, 2_000).expect("suite builds");
    let core = ctx_a.core;
    let timing = ctx_a.timing;
    let spec = ctx_a.specs[0];

    // Give the "owner" role to whichever shard anchors >= 2 sweep
    // voltages (by pigeonhole at least one of the two does).
    let mut per_shard: Vec<Vec<Millivolts>> = vec![Vec::new(), Vec::new()];
    for vcc in PAPER_SWEEP.iter() {
        per_shard[ring.owner(voltage_anchor(core, &timing, &spec, vcc)) as usize].push(vcc);
    }
    let owner: u32 = u32::from(per_shard[1].len() >= 2);
    let requester = 1 - owner;
    let (cold_vcc, warm_vcc) = (per_shard[owner as usize][0], per_shard[owner as usize][1]);

    let listeners = [
        TcpListener::bind("127.0.0.1:0").expect("bind"),
        TcpListener::bind("127.0.0.1:0").expect("bind"),
    ];
    let peers: Vec<String> = listeners
        .iter()
        .map(|l| l.local_addr().expect("addr").to_string())
        .collect();
    let store = |index: u32| {
        ResultStore::ephemeral()
            .with_key_owner(Arc::new(move |key| ring.owns(index, key)))
            .with_remote_fetch(read_through(ring, index, peers.clone(), PEER_FETCH_TIMEOUT))
    };
    let d_req = Daemon::new(ctx_a.with_cache(Arc::new(store(requester)))).with_shard(requester, 2);
    let d_own =
        Arc::new(Daemon::new(ctx_b.with_cache(Arc::new(store(owner)))).with_shard(owner, 2));
    let owner_addr = peers[owner as usize].clone();
    let [l0, l1] = listeners;
    let owner_listener = if owner == 0 { l0 } else { l1 };
    let server = {
        let d_own = Arc::clone(&d_own);
        std::thread::spawn(move || d_own.serve(&owner_listener))
    };

    let sweep_line = |vcc: Millivolts| {
        format!(
            "{{\"experiment\": \"sweep\", \"vcc\": {}}}",
            vcc.millivolts()
        )
    };
    let stats_of = |d: &Daemon| {
        let (body, _) = d.handle_line("{\"experiment\": \"stats\"}");
        json::parse(&body).expect("stats parse")
    };
    let counter = |v: &json::Value, k: &str| v.get(k).and_then(json::Value::as_u64).expect("stat");

    // Cold owner: the probe comes back a miss (no cascade, no hang)
    // and the requester simulates the point itself.
    let (resp, _) = d_req.handle_line(&sweep_line(cold_vcc));
    let v = json::parse(&resp).expect("sweep response parses");
    assert_eq!(v.get("ok").and_then(json::Value::as_bool), Some(true));
    let s = stats_of(&d_req);
    assert!(
        counter(&s, "peer_fetches") > 0,
        "the requester must have dialed the ring owner: {s:?}"
    );
    assert_eq!(counter(&s, "peer_hits"), 0, "a cold owner cannot hit");

    // Warm the owner, then ask the requester for the same point: the
    // owned records ship over the wire and the point renders
    // byte-identically to the owner's own answer.
    let (owner_resp, _) = d_own.handle_line(&sweep_line(warm_vcc));
    let (got, _) = d_req.handle_line(&sweep_line(warm_vcc));
    let want = json::parse(&owner_resp).expect("owner response parses");
    let have = json::parse(&got).expect("requester response parses");
    assert_eq!(
        json::render(have.get("point").expect("point")),
        json::render(want.get("point").expect("point")),
        "a peer-fetched point must render byte-identically"
    );
    let s = stats_of(&d_req);
    assert!(
        counter(&s, "peer_hits") > 0,
        "a warm owner must serve at least the anchor record: {s:?}"
    );

    // Stop the owner daemon.
    let stream = TcpStream::connect(owner_addr.as_str()).expect("connect owner");
    let mut reader = BufReader::new(&stream);
    roundtrip(&stream, &mut reader, "{\"experiment\": \"shutdown\"}");
    server
        .join()
        .expect("owner thread")
        .expect("clean serve exit");
}

/// The robustness tentpole, end to end: kill one of three shards and
/// the cluster still answers every request type — the full sweep
/// byte-identically, via failover — while `stats`/`metrics` report the
/// open breaker; restart the shard and the half-open probe re-admits
/// it.
#[test]
fn cluster_fails_over_around_a_dead_shard_and_recovers() {
    const REQUESTS: &[&str] = &[
        "{\"experiment\": \"ping\"}",
        "{\"experiment\": \"sweep\"}",
        "{\"experiment\": \"sweep\", \"vcc\": 575}",
        "{\"experiment\": \"table1\", \"vcc\": 575}",
        "{\"experiment\": \"stalls\", \"vcc\": 575}",
    ];
    // Reference: a cold single-process daemon over the same suite.
    let single = Daemon::new(ExperimentContext::sized(1, 2_000).expect("suite builds"));
    let expected: Vec<String> = REQUESTS
        .iter()
        .map(|line| single.handle_line(line).0)
        .collect();

    let cluster = start_cluster(
        SuiteChoice::Sized {
            per_family: 1,
            len: 2_000,
        },
        &ClusterOptions {
            shards: 3,
            jobs: 2,
            ..ClusterOptions::default()
        },
    )
    .expect("cluster starts");
    let shard_addrs = cluster.shard_addrs().to_vec();

    // The victim is the shard owning the 575 mV anchor, so every
    // single-point request above crosses the hole it leaves.
    let ring = Ring::new(3, DEFAULT_RING_SEED);
    let ctx = single.context();
    let victim = ring.owner(voltage_anchor(
        ctx.core,
        &ctx.timing,
        &ctx.specs[0],
        Millivolts::literal(575),
    )) as usize;

    // Kill it with a direct shutdown and wait for its port to close.
    {
        let stream = TcpStream::connect(shard_addrs[victim]).expect("connect victim");
        let mut reader = BufReader::new(&stream);
        let resp = roundtrip(&stream, &mut reader, "{\"experiment\": \"shutdown\"}");
        assert!(resp.contains("\"shutdown\": true"), "got: {resp}");
    }
    for _ in 0..500 {
        if TcpStream::connect(shard_addrs[victim]).is_err() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let stream = TcpStream::connect(cluster.router_addr()).expect("connect router");
    stream
        .set_read_timeout(Some(Duration::from_secs(300)))
        .expect("timeout");
    let mut reader = BufReader::new(&stream);
    for (line, want) in REQUESTS.iter().zip(&expected) {
        let got = roundtrip(&stream, &mut reader, line);
        assert_eq!(&got, want, "degraded cluster diverges for {line}");
    }

    // stats and metrics still answer and report the open breaker plus
    // the failovers that answered the victim's traffic.
    let stats = roundtrip(&stream, &mut reader, "{\"experiment\": \"stats\"}");
    let v = json::parse(&stats).expect("stats parse");
    assert_eq!(v.get("ok").and_then(json::Value::as_bool), Some(true));
    assert_eq!(breaker_field(&v, victim as u64, "state"), "\"open\"");
    assert_ne!(breaker_field(&v, victim as u64, "failovers"), "0");
    let metrics = roundtrip(&stream, &mut reader, "{\"experiment\": \"metrics\"}");
    let m = json::parse(&metrics).expect("metrics parse");
    assert_eq!(m.get("ok").and_then(json::Value::as_bool), Some(true));
    assert_eq!(breaker_field(&m, victim as u64, "state"), "\"open\"");
    assert_eq!(
        m.get("metrics_parse_errors").and_then(json::Value::as_u64),
        Some(0),
        "an unreachable shard is not a parse error"
    );

    // Restart the victim on its old address (same slice, fresh store).
    let listener = {
        let mut bound = TcpListener::bind(shard_addrs[victim]);
        let mut tries = 0;
        loop {
            match bound {
                Ok(l) => break l,
                Err(e) if tries >= 500 => panic!("cannot rebind victim addr: {e}"),
                Err(_) => {
                    tries += 1;
                    std::thread::sleep(Duration::from_millis(10));
                    bound = TcpListener::bind(shard_addrs[victim]);
                }
            }
        }
    };
    let peers: Vec<String> = shard_addrs.iter().map(ToString::to_string).collect();
    let victim_u32 = victim as u32;
    let store = ResultStore::ephemeral()
        .with_key_owner(Arc::new(move |key| ring.owns(victim_u32, key)))
        .with_remote_fetch(read_through(ring, victim_u32, peers, PEER_FETCH_TIMEOUT));
    let revived_ctx = ExperimentContext::sized(1, 2_000).expect("suite builds");
    let revived = Daemon::new(revived_ctx.with_cache(Arc::new(store))).with_shard(victim_u32, 3);
    let revived_thread = std::thread::spawn(move || revived.serve(&listener));

    // Once the cooldown elapses, routed traffic becomes the half-open
    // probe; poll until the breaker closes and a recovery is counted.
    let mut recovered = false;
    for _ in 0..100 {
        std::thread::sleep(Duration::from_millis(150));
        let _ = roundtrip(
            &stream,
            &mut reader,
            "{\"experiment\": \"sweep\", \"vcc\": 575}",
        );
        let stats = roundtrip(&stream, &mut reader, "{\"experiment\": \"stats\"}");
        let v = json::parse(&stats).expect("stats parse");
        if breaker_field(&v, victim as u64, "state") == "\"closed\"" {
            assert_ne!(breaker_field(&v, victim as u64, "recoveries"), "0");
            recovered = true;
            break;
        }
    }
    assert!(recovered, "breaker never re-closed after the restart");

    // Shutdown fans out breaker-blind, so it reaches the revived shard.
    let resp = roundtrip(&stream, &mut reader, "{\"experiment\": \"shutdown\"}");
    let v = json::parse(&resp).expect("shutdown response parses");
    assert_eq!(v.get("ok").and_then(json::Value::as_bool), Some(true));
    cluster.join().expect("clean fan-out shutdown");
    revived_thread
        .join()
        .expect("revived thread")
        .expect("clean serve exit");
}
