//! Sharding guarantees, end to end: the ring partition of the paper
//! grid is a pure function of `(shard count, seed)`, and a router
//! fronting N shard daemons answers every request type byte-identically
//! to the single-process daemon.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use lowvcc_bench::{json, ExperimentContext, SuiteChoice};
use lowvcc_core::CoreConfig;
use lowvcc_serve::router::{start_cluster, ClusterOptions};
use lowvcc_serve::shard::{voltage_anchor, Ring, DEFAULT_RING_SEED};
use lowvcc_serve::Daemon;
use lowvcc_sram::{CycleTimeModel, PAPER_SWEEP};
use lowvcc_trace::suite;

/// The paper grid partitions identically on every independently
/// constructed ring: 13 sweep voltages × 3 trace specs, anchored and
/// keyed exactly as the router and store ownership hook do it.
#[test]
fn paper_grid_partition_is_deterministic() {
    let core = CoreConfig::silverthorne();
    let timing = CycleTimeModel::silverthorne_45nm();
    let specs = suite(1, 1_000);
    let specs = &specs[..3];

    for shards in [2u32, 3, 5] {
        let a = Ring::new(shards, DEFAULT_RING_SEED);
        let b = Ring::new(shards, DEFAULT_RING_SEED);
        let mut per_shard = vec![0usize; shards as usize];
        for vcc in PAPER_SWEEP.iter() {
            for spec in specs {
                let key = voltage_anchor(core, &timing, spec, vcc);
                let owner = a.owner(key);
                assert_eq!(
                    owner,
                    b.owner(key),
                    "two rings with identical config disagree on {vcc:?}"
                );
                assert!(owner < shards, "owner out of range");
                assert!(a.owns(owner, key));
                assert!(
                    !a.owns((owner + 1) % shards, key),
                    "ownership must be exclusive"
                );
                per_shard[owner as usize] += 1;
            }
        }
        assert_eq!(per_shard.iter().sum::<usize>(), 13 * 3);
        // The jump hash spreads 39 keys over >=2 shards; a fully
        // lopsided partition would mean the seed or hash regressed.
        assert!(
            per_shard.iter().filter(|&&n| n > 0).count() >= 2,
            "partition over {shards} shards collapsed to one: {per_shard:?}"
        );
    }
}

/// One line of protocol conversation over an existing stream.
fn roundtrip(stream: &TcpStream, reader: &mut BufReader<&TcpStream>, line: &str) -> String {
    {
        let mut w = stream;
        w.write_all(line.as_bytes()).expect("send");
        w.write_all(b"\n").expect("send");
    }
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("receive");
    assert!(resp.ends_with('\n'), "response must be newline-terminated");
    resp.trim_end().to_string()
}

/// A cold 2-shard cluster answers the whole request surface — full
/// sweep, single sweep point, table 1, stall profile, ping, and a
/// malformed line — byte-identically to a cold single-process daemon,
/// and shutdown fans out cleanly.
#[test]
fn router_matches_single_daemon_byte_for_byte() {
    const REQUESTS: &[&str] = &[
        "{\"experiment\": \"ping\"}",
        "not json",
        "{\"experiment\": \"sweep\"}",
        "{\"experiment\": \"sweep\", \"vcc\": 575}",
        "{\"experiment\": \"table1\", \"vcc\": 500}",
        "{\"experiment\": \"stalls\", \"vcc\": 575}",
    ];

    // Reference: the single-process daemon, cold store, same suite.
    let single = Daemon::new(ExperimentContext::sized(1, 2_000).expect("suite builds"));
    let expected: Vec<String> = REQUESTS
        .iter()
        .map(|line| single.handle_line(line).0)
        .collect();

    let cluster = start_cluster(
        SuiteChoice::Sized {
            per_family: 1,
            len: 2_000,
        },
        &ClusterOptions {
            shards: 2,
            jobs: 2,
            ..ClusterOptions::default()
        },
    )
    .expect("cluster starts");
    let router_addr = cluster.router_addr();
    let shard_addrs = cluster.shard_addrs().to_vec();
    assert_eq!(shard_addrs.len(), 2);

    let stream = TcpStream::connect(router_addr).expect("connect to router");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    let mut reader = BufReader::new(&stream);

    for (line, want) in REQUESTS.iter().zip(&expected) {
        let got = roundtrip(&stream, &mut reader, line);
        assert_eq!(&got, want, "sharded response diverges for {line}");
    }

    // The metrics aggregate is router-specific (not byte-compared):
    // it must merge both shards and show the sweep traffic.
    let resp = roundtrip(&stream, &mut reader, "{\"experiment\": \"metrics\"}");
    let v = json::parse(&resp).expect("metrics aggregate parses");
    assert_eq!(v.get("ok").and_then(json::Value::as_bool), Some(true));
    assert_eq!(v.get("router").and_then(json::Value::as_bool), Some(true));
    assert_eq!(v.get("shard_count").and_then(json::Value::as_u64), Some(2));
    let store = v.get("store").expect("aggregated store stats");
    assert!(
        store.get("misses").and_then(json::Value::as_u64) > Some(0),
        "cold sweep must register misses across the cluster"
    );
    let shards = v
        .get("shards")
        .and_then(json::Value::as_array)
        .expect("metrics aggregate must carry per-shard bodies");
    assert_eq!(shards.len(), 2);
    for (i, body) in shards.iter().enumerate() {
        assert_eq!(
            body.get("shard_index").and_then(json::Value::as_u64),
            Some(i as u64),
            "shard bodies must arrive in ring order"
        );
    }

    // Shutdown through the router stops the router and both shards.
    let resp = roundtrip(&stream, &mut reader, "{\"experiment\": \"shutdown\"}");
    let v = json::parse(&resp).expect("shutdown response parses");
    assert_eq!(v.get("ok").and_then(json::Value::as_bool), Some(true));
    cluster.join().expect("clean fan-out shutdown");
    for addr in shard_addrs {
        assert!(
            TcpStream::connect(addr).is_err(),
            "shard {addr} still listening after cluster shutdown"
        );
    }
}
