//! Concurrency tests for the thread-pool serve loop: a stalled client
//! must not block others, shutdown must drain with a deadline, excess
//! clients get the typed `busy` refusal, identical cold queries are
//! single-flighted, and concurrent answers are byte-identical to the
//! sequential daemon's.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use lowvcc_bench::{json, ExperimentContext};
use lowvcc_serve::{Daemon, ServeOptions};

fn tiny_daemon() -> Daemon {
    Daemon::new(ExperimentContext::sized(1, 2_000).expect("tiny suite builds"))
}

fn opts() -> ServeOptions {
    ServeOptions {
        threads: 3,
        max_connections: 16,
        read_timeout: Duration::from_secs(10),
        write_timeout: Duration::from_secs(10),
        drain_deadline: Duration::from_millis(300),
    }
}

/// Sends one request line and reads one response line.
fn request(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    response.trim_end().to_string()
}

fn client(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

const SWEEP_575: &str = r#"{"experiment":"sweep","vcc":575}"#;
const PING: &str = r#"{"experiment":"ping"}"#;
const SHUTDOWN: &str = r#"{"experiment":"shutdown"}"#;

#[test]
fn stalled_client_does_not_block_others() {
    let daemon = tiny_daemon();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|s| {
        let handle = s.spawn(|| daemon.serve_with(&listener, opts()));

        // A client that connects and never sends a byte — under the old
        // sequential accept loop this wedged every other query.
        let stalled = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(150));

        let start = Instant::now();
        let (mut c, mut r) = client(addr);
        let v = json::parse(&request(&mut c, &mut r, PING)).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("pong").unwrap().as_bool(), Some(true));
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "ping took {:?} with a stalled client connected",
            start.elapsed()
        );

        // Real work is also unblocked, not just liveness probes.
        let v = json::parse(&request(&mut c, &mut r, SWEEP_575)).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));

        let v = json::parse(&request(&mut c, &mut r, SHUTDOWN)).unwrap();
        assert_eq!(v.get("shutdown").unwrap().as_bool(), Some(true));
        handle.join().unwrap().unwrap();
        drop(stalled);
    });
}

#[test]
fn shutdown_drain_deadline_cuts_stalled_clients_loose() {
    let daemon = tiny_daemon();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|s| {
        let handle = s.spawn(|| daemon.serve_with(&listener, opts()));

        // Regression: shutdown used to take effect only after the
        // in-progress connection completed, so a stalled peer could
        // postpone exit indefinitely (until its 30 s read timeout).
        let stalled = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(150));

        let (mut c, mut r) = client(addr);
        let v = json::parse(&request(&mut c, &mut r, SHUTDOWN)).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));

        // The serve loop must return within the drain deadline (plus
        // slack), with the stalled client still connected.
        let start = Instant::now();
        handle.join().unwrap().unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(3),
            "drain took {:?}; a stalled peer postponed shutdown",
            start.elapsed()
        );
        drop(stalled);
    });
    let c = daemon.serve_counters();
    assert!(
        c.force_closed >= 1,
        "the stalled connection must have been force-closed at the deadline: {c:?}"
    );
}

#[test]
fn excess_clients_get_the_typed_busy_refusal() {
    let daemon = tiny_daemon();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let tight = ServeOptions {
        threads: 1,
        max_connections: 1,
        ..opts()
    };
    std::thread::scope(|s| {
        let handle = s.spawn(|| daemon.serve_with(&listener, tight));

        // Fill the single connection slot with a stalled client…
        let stalled = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(200));

        // …so the next client is refused at the accept gate.
        let (c, mut r) = client(addr);
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        let v = json::parse(line.trim_end()).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("busy").unwrap().as_bool(), Some(true));
        assert!(v
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .starts_with("busy:"));
        // The refusal closes the connection.
        let mut rest = String::new();
        assert_eq!(r.read_to_string(&mut rest).unwrap(), 0);
        drop(c);

        // Freeing the slot lets the next client in for a clean shutdown.
        drop(stalled);
        std::thread::sleep(Duration::from_millis(200));
        let (mut c, mut r) = client(addr);
        let v = json::parse(&request(&mut c, &mut r, SHUTDOWN)).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        handle.join().unwrap().unwrap();
    });
    assert!(daemon.serve_counters().refused_busy >= 1);
}

#[test]
fn identical_concurrent_cold_sweeps_are_single_flighted() {
    let daemon = tiny_daemon();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let clients = 4;
    let responses: Vec<json::Value> = std::thread::scope(|s| {
        let handle = s.spawn(|| {
            daemon.serve_with(
                &listener,
                ServeOptions {
                    threads: clients,
                    ..opts()
                },
            )
        });
        let workers: Vec<_> = (0..clients)
            .map(|_| {
                s.spawn(move || {
                    let (mut c, mut r) = client(addr);
                    json::parse(&request(&mut c, &mut r, SWEEP_575)).unwrap()
                })
            })
            .collect();
        let responses: Vec<json::Value> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        let (mut c, mut r) = client(addr);
        let v = json::parse(&request(&mut c, &mut r, SHUTDOWN)).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        handle.join().unwrap().unwrap();
        responses
    });

    // One sweep point = 2 mechanisms × 7 traces = 14 keys. N identical
    // concurrent cold queries must perform exactly one engine
    // simulation per key — the single-flight acceptance criterion.
    let stats = daemon.context().cache.as_ref().unwrap().stats();
    assert_eq!(stats.misses, 14, "one simulation per key: {stats:?}");
    assert_eq!(stats.stores, 14);

    // Every client got the same answer, and it is byte-identical to
    // what a sequential daemon computes for the same query.
    let sequential = tiny_daemon();
    let (expected, _) = sequential.handle_line(SWEEP_575);
    let expected_point = json::parse(&expected)
        .unwrap()
        .get("point")
        .unwrap()
        .clone();
    for v in &responses {
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("point"), Some(&expected_point));
    }
}

#[test]
fn concurrent_hammer_matches_sequential_byte_for_byte() {
    let daemon = tiny_daemon();
    // Warm the 575 mV point, then capture the steady-state (cached)
    // response the sequential daemon gives.
    let (_cold, _) = daemon.handle_line(SWEEP_575);
    let (expected_sweep, _) = daemon.handle_line(SWEEP_575);
    assert!(expected_sweep.contains("\"cached\": true"));
    let (expected_ping, _) = daemon.handle_line(PING);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|s| {
        let handle = s.spawn(|| {
            daemon.serve_with(
                &listener,
                ServeOptions {
                    threads: 4,
                    ..opts()
                },
            )
        });
        let hammers: Vec<_> = (0..6)
            .map(|_| {
                let expected_sweep = &expected_sweep;
                let expected_ping = &expected_ping;
                s.spawn(move || {
                    let (mut c, mut r) = client(addr);
                    for _ in 0..4 {
                        assert_eq!(request(&mut c, &mut r, PING), *expected_ping);
                        assert_eq!(request(&mut c, &mut r, SWEEP_575), *expected_sweep);
                    }
                })
            })
            .collect();
        for h in hammers {
            h.join().unwrap();
        }
        let (mut c, mut r) = client(addr);
        let v = json::parse(&request(&mut c, &mut r, SHUTDOWN)).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        handle.join().unwrap().unwrap();
    });
    let c = daemon.serve_counters();
    assert_eq!(c.accepted, 7, "6 hammer clients + the shutdown client");
    assert_eq!(c.refused_busy, 0);
    assert_eq!(c.connection_errors, 0);
    assert_eq!(c.worker_panics, 0);
}

#[test]
fn silent_clients_are_disconnected_at_the_read_timeout() {
    let daemon = tiny_daemon();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let quick_timeout = ServeOptions {
        read_timeout: Duration::from_millis(200),
        ..opts()
    };
    std::thread::scope(|s| {
        let handle = s.spawn(|| daemon.serve_with(&listener, quick_timeout));

        // Connect, send nothing: the daemon must cut us loose at the
        // read timeout rather than holding the worker for 30 s.
        let mut silent = TcpStream::connect(addr).unwrap();
        silent
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let start = Instant::now();
        let mut buf = Vec::new();
        let n = silent.read_to_end(&mut buf).unwrap();
        assert_eq!(n, 0, "timeout close is silent — no bytes");
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "disconnect took {:?}",
            start.elapsed()
        );

        let (mut c, mut r) = client(addr);
        let v = json::parse(&request(&mut c, &mut r, SHUTDOWN)).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        handle.join().unwrap().unwrap();
    });
    assert_eq!(daemon.serve_counters().timeouts, 1);
}
