//! End-to-end smoke test of the daemon over a real TCP socket: start,
//! several requests (miss → hit), graceful shutdown, loop exit.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

use lowvcc_bench::{json, ExperimentContext};
use lowvcc_serve::Daemon;

fn request(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> json::Value {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    json::parse(response.trim_end()).expect("daemon speaks valid JSON")
}

#[test]
fn daemon_serves_and_shuts_down_cleanly() {
    let ctx = ExperimentContext::sized(1, 2_000).expect("tiny suite builds");
    let daemon = Daemon::new(ctx);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    std::thread::scope(|s| {
        let handle = s.spawn(|| daemon.serve(&listener));

        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());

        // Liveness.
        let v = request(&mut stream, &mut reader, r#"{"experiment":"ping"}"#);
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("pong").unwrap().as_bool(), Some(true));

        // First sweep query simulates; the repeat is served from the store.
        let v = request(
            &mut stream,
            &mut reader,
            r#"{"experiment":"sweep","vcc":575}"#,
        );
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("cached").unwrap().as_bool(), Some(false));
        let first_point = v.get("point").unwrap().clone();
        let v = request(
            &mut stream,
            &mut reader,
            r#"{"experiment":"sweep","vcc":575}"#,
        );
        assert_eq!(v.get("cached").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("point"), Some(&first_point));

        // A malformed line answers with an error, connection intact.
        let v = request(&mut stream, &mut reader, "{broken");
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));

        // Stats see the traffic.
        let v = request(&mut stream, &mut reader, r#"{"experiment":"stats"}"#);
        assert!(v.get("hits").unwrap().as_u64().unwrap() > 0);

        // Graceful shutdown: acknowledged, then the serve loop returns.
        let v = request(&mut stream, &mut reader, r#"{"experiment":"shutdown"}"#);
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("shutdown").unwrap().as_bool(), Some(true));

        handle
            .join()
            .expect("serve thread exits")
            .expect("serve loop returns cleanly");
    });
}
