//! Readiness notification: a thin, std-only wrapper over raw `epoll`.
//!
//! The event loop in [`crate::conn`] needs exactly four primitives —
//! register a socket, change its interest set, wait with a deadline,
//! and be woken from another thread — and this module provides them
//! over direct `epoll(7)`/`eventfd(2)` syscalls declared by hand, so
//! the serve tier stays free of external runtimes. The FFI surface is
//! confined to the [`sys`] submodule, which carries the one scoped
//! waiver of the workspace-wide `unsafe_code` deny (see the root
//! manifest): seven syscalls, each wrapped in a safe function that
//! translates `-1` into [`io::Error::last_os_error`].
//!
//! Everything is **level-triggered**: an event repeats until the
//! condition is drained, so a handler that processes only part of a
//! readable buffer is re-notified on the next [`Reactor::wait`] — the
//! simplest semantics to keep correct under partial reads and writes.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Raw syscall bindings. This module is the scoped waiver of the
/// workspace `unsafe_code = "deny"` lint: the unsafe surface is seven
/// `extern` declarations and the call sites immediately wrapping them.
#[allow(unsafe_code)]
mod sys {
    use std::ffi::{c_int, c_void};
    use std::io;
    use std::os::unix::io::RawFd;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EFD_CLOEXEC: c_int = 0o2000000;
    const EFD_NONBLOCK: c_int = 0o4000;

    /// `struct epoll_event` — packed on x86 per the kernel ABI.
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
        fn eventfd(initval: u32, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    fn check(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub fn epoll_create() -> io::Result<RawFd> {
        check(unsafe { epoll_create1(EPOLL_CLOEXEC) })
    }

    pub fn ctl(epfd: RawFd, op: c_int, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        check(unsafe { epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
    }

    pub fn wait(epfd: RawFd, buf: &mut [EpollEvent], timeout_ms: c_int) -> io::Result<usize> {
        let max = c_int::try_from(buf.len()).unwrap_or(c_int::MAX);
        let n = check(unsafe { epoll_wait(epfd, buf.as_mut_ptr(), max, timeout_ms) })?;
        Ok(n.max(0) as usize)
    }

    pub fn new_eventfd() -> io::Result<RawFd> {
        check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
    }

    /// Nonblocking 8-byte read from an eventfd (drains its counter).
    pub fn eventfd_read(fd: RawFd) -> io::Result<u64> {
        let mut buf = 0u64;
        let n = unsafe { read(fd, std::ptr::addr_of_mut!(buf).cast::<c_void>(), 8) };
        if n < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(buf)
        }
    }

    /// 8-byte write to an eventfd (increments its counter).
    pub fn eventfd_write(fd: RawFd, value: u64) -> io::Result<()> {
        let n = unsafe { write(fd, std::ptr::addr_of!(value).cast::<c_void>(), 8) };
        if n < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    pub fn close_fd(fd: RawFd) {
        let _ = unsafe { close(fd) };
    }
}

/// Token reserved for the reactor's internal wake eventfd — never
/// reported to callers.
const WAKE_TOKEN: u64 = u64::MAX;

/// What a file descriptor should be watched for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Notify when a read would not block (or the peer hung up).
    pub readable: bool,
    /// Notify when a write would not block.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut m = sys::EPOLLRDHUP;
        if self.readable {
            m |= sys::EPOLLIN;
        }
        if self.writable {
            m |= sys::EPOLLOUT;
        }
        m
    }
}

/// One readiness event delivered by [`Reactor::wait`]. Error and
/// hang-up conditions are folded into `readable`, so the owner's next
/// read surfaces the actual `io::Error`/EOF — the loop needs no
/// separate error path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the file descriptor was registered with.
    pub token: u64,
    /// A read would make progress (data, EOF, or a pending error).
    pub readable: bool,
    /// A write would make progress.
    pub writable: bool,
}

/// Wakes a [`Reactor`] blocked in [`Reactor::wait`] from another
/// thread (the dispatch workers use this to deliver completions).
#[derive(Debug, Clone, Copy)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Interrupts the reactor's current (or next) wait. Wait-free;
    /// coalesces with other pending wakes.
    pub fn wake(&self) {
        // A full eventfd counter (EAGAIN) still means "wake pending".
        let _ = sys::eventfd_write(self.fd, 1);
    }
}

/// A readiness queue: raw `epoll` plus an eventfd wake channel.
#[derive(Debug)]
pub struct Reactor {
    epfd: RawFd,
    wakefd: RawFd,
}

impl Reactor {
    /// Creates the epoll instance and its wake eventfd.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1`/`eventfd` failures (fd exhaustion).
    pub fn new() -> io::Result<Self> {
        let epfd = sys::epoll_create()?;
        let wakefd = match sys::new_eventfd() {
            Ok(fd) => fd,
            Err(e) => {
                sys::close_fd(epfd);
                return Err(e);
            }
        };
        let reactor = Self { epfd, wakefd };
        reactor.register(wakefd, WAKE_TOKEN, Interest::READ)?;
        Ok(reactor)
    }

    /// A handle other threads use to interrupt [`Self::wait`]. Valid
    /// for the reactor's lifetime.
    #[must_use]
    pub fn waker(&self) -> Waker {
        Waker { fd: self.wakefd }
    }

    /// Starts watching `fd` with `token` (tokens `u64::MAX` is
    /// reserved).
    ///
    /// # Errors
    ///
    /// Propagates the `epoll_ctl` failure.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, interest.mask(), token)
    }

    /// Changes the interest set of a registered `fd`.
    ///
    /// # Errors
    ///
    /// Propagates the `epoll_ctl` failure.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::ctl(self.epfd, sys::EPOLL_CTL_MOD, fd, interest.mask(), token)
    }

    /// Stops watching `fd`. Harmless to call for an fd the kernel
    /// already dropped (closing an fd deregisters it implicitly).
    pub fn deregister(&self, fd: RawFd) {
        let _ = sys::ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Blocks until at least one registered fd is ready, the timeout
    /// elapses, or a [`Waker`] fires; fills `events` with the ready
    /// set (internal wake events are drained, not reported). `None`
    /// blocks indefinitely; sub-millisecond timeouts round **up** so a
    /// deadline is never spun past in a zero-timeout busy loop.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait` failures (`EINTR` is retried
    /// internally, surfacing as an empty ready set).
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis();
                let ms = if ms.saturating_mul(1_000_000) < d.as_nanos() {
                    ms + 1 // round a fractional millisecond up
                } else {
                    ms
                };
                i32::try_from(ms).unwrap_or(i32::MAX)
            }
        };
        let mut buf = [sys::EpollEvent { events: 0, data: 0 }; 128];
        let n = match sys::wait(self.epfd, &mut buf, timeout_ms) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for ev in buf.iter().take(n) {
            // Copy out of the (packed) struct before matching on it.
            let mask = ev.events;
            let token = ev.data;
            if token == WAKE_TOKEN {
                let _ = sys::eventfd_read(self.wakefd);
                continue;
            }
            events.push(Event {
                token,
                readable: mask & (sys::EPOLLIN | sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP)
                    != 0,
                writable: mask & (sys::EPOLLOUT | sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        sys::close_fd(self.wakefd);
        sys::close_fd(self.epfd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    #[test]
    fn timeout_expires_without_events() {
        let r = Reactor::new().unwrap();
        let mut events = Vec::new();
        let start = Instant::now();
        r.wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn waker_interrupts_a_long_wait() {
        let r = Reactor::new().unwrap();
        let waker = r.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let mut events = Vec::new();
        let start = Instant::now();
        r.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "the waker must interrupt the wait"
        );
        assert!(events.is_empty(), "internal wake events are not reported");
        handle.join().unwrap();
    }

    #[test]
    fn socket_readiness_is_reported_by_token() {
        let r = Reactor::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        r.register(listener.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        r.wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "nothing is ready yet");

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        r.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "pending connection makes the listener readable: {events:?}"
        );

        // Accept, watch the connection, see its data arrive.
        let (conn, _) = listener.accept().unwrap();
        conn.set_nonblocking(true).unwrap();
        r.register(conn.as_raw_fd(), 9, Interest::READ_WRITE)
            .unwrap();
        client.write_all(b"hello\n").unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            r.wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token == 9 && e.readable) {
                break;
            }
            assert!(Instant::now() < deadline, "data never became readable");
        }
        r.deregister(conn.as_raw_fd());
    }
}
