//! Deterministic consistent-hash sharding over [`SimKey`]s.
//!
//! The sharded serve tier splits the result store's key space across N
//! shard daemons. The split must be a pure function of `(key, shard
//! count, seed)` — no wall-clock, no per-process randomness, no
//! `std::hash` iteration-order leaks — so every router instance, every
//! shard, and every test partitions identically, forever. The
//! [`Ring`] uses Lamping–Veach **jump consistent hash** seeded through
//! the store's canonical FNV-1a: stateless (two integers of
//! configuration), perfectly balanced in expectation, and minimally
//! disruptive when the shard count changes (keys only move onto the new
//! shard, never between old ones).
//!
//! Two granularities share one ring:
//!
//! * **Request routing** hashes a *voltage anchor* — the [`SimKey`] of
//!   the baseline configuration at the request's voltage on the
//!   suite's first trace — so a whole operating point (all mechanisms
//!   × all traces) lands on one shard and its single-flight layer
//!   dedups concurrent identical queries exactly as in the
//!   single-process daemon.
//! * **Store ownership** hashes each individual [`SimKey`]: a shard's
//!   [`lowvcc_bench::ResultStore`] only publishes keys the ring assigns
//!   to it (misrouted or locally-derived foreign keys stay memory-only,
//!   counted as `foreign_puts`), so two shards never race on one disk
//!   slot.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use lowvcc_bench::{json, RemoteFetch};
use lowvcc_core::canon::fnv1a_64;
use lowvcc_core::{decode_sim_result, sim_key, CoreConfig, SimConfig, SimKey, SimResult};
use lowvcc_sram::{CycleTimeModel, Millivolts};
use lowvcc_trace::TraceSpec;

/// Default ring seed (`fnv1a_64("lowvcc-ring-v1")`, precomputed as a
/// literal so the partition is stable by construction, not by code
/// path). Every shard and router in one cluster must share a seed.
pub const DEFAULT_RING_SEED: u64 = 0x7f3a_e5c1_9d24_6b08;

/// A deterministic consistent-hash ring: `(shard count, seed)` is its
/// entire state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ring {
    shards: u32,
    seed: u64,
}

impl Ring {
    /// A ring over `shards` shards (clamped up to 1) under `seed`.
    #[must_use]
    pub fn new(shards: u32, seed: u64) -> Self {
        Self {
            shards: shards.max(1),
            seed,
        }
    }

    /// Number of shards in the ring.
    #[must_use]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The seed the ring was built with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shard index (`0..shards`) owning `key`. Pure: identical for
    /// any ring constructed with the same `(shards, seed)`.
    #[must_use]
    pub fn owner(&self, key: SimKey) -> u32 {
        let mut bytes = [0u8; 24];
        bytes[..8].copy_from_slice(&self.seed.to_le_bytes());
        bytes[8..].copy_from_slice(&key.value().to_le_bytes());
        jump_hash(fnv1a_64(&bytes), self.shards)
    }

    /// Whether shard `index` owns `key` — the closure shape
    /// [`lowvcc_bench::ResultStore::with_key_owner`] takes.
    #[must_use]
    pub fn owns(&self, index: u32, key: SimKey) -> bool {
        self.owner(key) == index
    }
}

/// Lamping–Veach jump consistent hash: maps a 64-bit key state to a
/// bucket in `0..buckets` with minimal movement as `buckets` grows.
/// The float arithmetic is IEEE-exact, so the mapping is bit-stable
/// across platforms.
fn jump_hash(mut state: u64, buckets: u32) -> u32 {
    let buckets = i64::from(buckets.max(1));
    let mut b: i64 = 0;
    let mut j: i64 = 0;
    while j < buckets {
        b = j;
        state = state
            .wrapping_mul(2_862_933_555_777_941_757)
            .wrapping_add(1);
        let denom = ((state >> 33).wrapping_add(1)) as f64;
        j = (((b.wrapping_add(1)) as f64) * ((1u64 << 31) as f64 / denom)) as i64;
    }
    // 0 <= b < buckets <= u32::MAX, so the cast is lossless.
    b as u32
}

/// How long a read-through peer probe waits on connect, send, and
/// receive. Deliberately short: `peer_get` is answered from the owner's
/// memory/disk tiers without simulating, so a peer that cannot answer
/// quickly is treated as a miss and the requester simulates locally —
/// peer trouble costs latency, never correctness.
pub const PEER_FETCH_TIMEOUT: Duration = Duration::from_secs(5);

/// Lower-case hex rendering of raw bytes (the `record` field of a
/// `peer_get` hit carries an LVCR record this way).
#[must_use]
pub fn encode_hex(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(HEX[usize::from(b >> 4)] as char);
        out.push(HEX[usize::from(b & 0x0f)] as char);
    }
    out
}

/// Strict inverse of [`encode_hex`]: rejects odd lengths and non-hex
/// digits rather than guessing.
#[must_use]
pub fn decode_hex(s: &str) -> Option<Vec<u8>> {
    if s.len() % 2 != 0 {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in s.as_bytes().chunks_exact(2) {
        let hi = char::from(pair[0]).to_digit(16)?;
        let lo = char::from(pair[1]).to_digit(16)?;
        out.push((hi << 4 | lo) as u8);
    }
    Some(out)
}

/// The request line a shard sends to a key's ring owner on a local miss.
#[must_use]
pub fn peer_get_line(key: SimKey) -> String {
    json::object(&[
        ("experiment", json::string("peer_get")),
        ("key", json::string(&key.to_hex())),
    ])
}

/// One read-through probe: dial `addr`, ask for `key`, decode the
/// returned record. Every failure — bad address, connect refusal,
/// timeout, protocol garbage, a record that fails LVCR validation —
/// maps to `None`, degrading to a local simulation.
fn fetch_from_peer(addr: &str, key: SimKey, timeout: Duration) -> Option<SimResult> {
    let sockaddr: SocketAddr = addr.parse().ok()?;
    let stream = TcpStream::connect_timeout(&sockaddr, timeout).ok()?;
    stream.set_read_timeout(Some(timeout)).ok()?;
    stream.set_write_timeout(Some(timeout)).ok()?;
    let mut writer = stream.try_clone().ok()?;
    let mut line = peer_get_line(key);
    line.push('\n');
    writer.write_all(line.as_bytes()).ok()?;
    writer.flush().ok()?;
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).ok()?;
    let body = json::parse(reply.trim()).ok()?;
    if body.get("ok")?.as_bool()? && body.get("hit")?.as_bool()? {
        let bytes = decode_hex(body.get("record")?.as_str()?)?;
        decode_sim_result(&bytes).ok()
    } else {
        None
    }
}

/// Builds the [`RemoteFetch`] hook a sharded daemon installs on its
/// store: on a local miss, ask the key's ring owner (and only the
/// owner — `peers` is indexed by shard) before simulating. Keys this
/// shard owns itself are never fetched: a local miss on an owned key
/// is authoritative. The no-cascade rule holds by construction — the
/// owner answers `peer_get` from its local tiers only
/// ([`lowvcc_bench::ResultStore::peek_local`]), so a probe can never
/// trigger another probe.
#[must_use]
pub fn read_through(ring: Ring, index: u32, peers: Vec<String>, timeout: Duration) -> RemoteFetch {
    Arc::new(move |key| {
        let owner = ring.owner(key);
        if owner == index {
            return None;
        }
        let addr = peers.get(owner as usize)?;
        fetch_from_peer(addr, key, timeout)
    })
}

/// The routing anchor for one operating point: the [`SimKey`] of the
/// *baseline* configuration at `vcc` on the suite's first trace spec.
/// Routing by this key sends every request touching an operating point
/// (any mechanism, any trace) to the same shard, preserving per-point
/// single-flight across the cluster.
#[must_use]
pub fn voltage_anchor(
    core: CoreConfig,
    timing: &CycleTimeModel,
    spec: &TraceSpec,
    vcc: Millivolts,
) -> SimKey {
    let (base, _iraw) = SimConfig::mechanism_pair(core, timing, vcc);
    sim_key(&base, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowvcc_sram::PAPER_SWEEP;

    #[test]
    fn hex_codec_round_trips_and_rejects_garbage() {
        let bytes: Vec<u8> = (0..=255).collect();
        let hex = encode_hex(&bytes);
        assert_eq!(decode_hex(&hex), Some(bytes));
        assert_eq!(decode_hex(""), Some(Vec::new()));
        assert_eq!(decode_hex("abc"), None, "odd length");
        assert_eq!(decode_hex("zz"), None, "non-hex digits");
    }

    #[test]
    fn peer_get_lines_parse_as_peer_requests() {
        let key = voltage_anchor(
            CoreConfig::silverthorne(),
            &CycleTimeModel::silverthorne_45nm(),
            &lowvcc_trace::suite(1, 1_000)[0],
            Millivolts::literal(500),
        );
        let line = peer_get_line(key);
        assert_eq!(
            crate::parse_request(&line),
            Ok(crate::Request::PeerGet(key))
        );
    }

    #[test]
    fn ring_is_deterministic_and_total() {
        let a = Ring::new(4, DEFAULT_RING_SEED);
        let b = Ring::new(4, DEFAULT_RING_SEED);
        let core = CoreConfig::silverthorne();
        let timing = CycleTimeModel::silverthorne_45nm();
        let specs = lowvcc_trace::suite(1, 1_000);
        for vcc in PAPER_SWEEP.iter() {
            for spec in &specs {
                let key = voltage_anchor(core, &timing, spec, vcc);
                let owner = a.owner(key);
                assert!(owner < 4);
                assert_eq!(owner, b.owner(key), "same inputs, same shard");
                assert!(a.owns(owner, key));
            }
        }
    }

    #[test]
    fn different_seeds_move_keys() {
        let a = Ring::new(8, DEFAULT_RING_SEED);
        let b = Ring::new(8, DEFAULT_RING_SEED ^ 0xdead_beef);
        let core = CoreConfig::silverthorne();
        let timing = CycleTimeModel::silverthorne_45nm();
        let specs = lowvcc_trace::suite(2, 1_000);
        let moved = PAPER_SWEEP
            .iter()
            .flat_map(|vcc| specs.iter().map(move |s| (vcc, s)))
            .filter(|(vcc, spec)| {
                let key = voltage_anchor(core, &timing, spec, *vcc);
                a.owner(key) != b.owner(key)
            })
            .count();
        assert!(
            moved > 0,
            "a different seed must produce a different partition"
        );
    }

    #[test]
    fn single_shard_owns_everything() {
        let ring = Ring::new(1, 12345);
        let core = CoreConfig::silverthorne();
        let timing = CycleTimeModel::silverthorne_45nm();
        let specs = lowvcc_trace::suite(1, 1_000);
        let key = voltage_anchor(core, &timing, &specs[0], Millivolts::literal(500));
        assert_eq!(ring.owner(key), 0);
        // Degenerate construction clamps instead of panicking.
        assert_eq!(Ring::new(0, 1).shards(), 1);
    }

    #[test]
    fn growing_the_ring_only_moves_keys_to_the_new_shard() {
        let small = Ring::new(3, DEFAULT_RING_SEED);
        let big = Ring::new(4, DEFAULT_RING_SEED);
        let core = CoreConfig::silverthorne();
        let timing = CycleTimeModel::silverthorne_45nm();
        let specs = lowvcc_trace::suite(3, 1_000);
        for vcc in PAPER_SWEEP.iter() {
            for spec in &specs {
                let key = voltage_anchor(core, &timing, spec, vcc);
                let (before, after) = (small.owner(key), big.owner(key));
                assert!(
                    before == after || after == 3,
                    "jump hash moves keys only onto the new shard: {before} -> {after}"
                );
            }
        }
    }
}
