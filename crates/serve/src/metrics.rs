//! The serve tier's metrics spine: lock-free counters, gauges and
//! fixed-bucket latency histograms, rendered by the `metrics` request.
//!
//! PR 4's ad-hoc `serve_counters` stats channel grew into this registry
//! so the scaling work of the readiness-driven tier is *measurable*
//! rather than asserted: every request records its queue-to-response
//! latency into a per-op histogram, the dispatch queue depth is tracked
//! as a gauge with a high-water mark, and connection outcomes (accepts,
//! refusals, idle reaps, force-closes) are monotone counters. All cells
//! are relaxed atomics — recording never takes a lock and never blocks
//! the event loop.
//!
//! Histograms use **fixed power-of-two microsecond buckets** (bucket
//! `i` counts latencies below `2^(i+1) µs`, the last bucket is
//! unbounded), so two shards' histograms merge by element-wise
//! addition — which is exactly how the router aggregates a cluster's
//! `metrics` responses.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use lowvcc_bench::{json, StoreStats};

/// Number of latency buckets. Bucket `i` spans `[2^i, 2^(i+1)) µs`
/// except bucket 0 (everything below 2 µs) and the last bucket
/// (everything at or above ~2.1 s — simulations on cold paper-scale
/// points land here).
pub const LATENCY_BUCKETS: usize = 22;

/// Upper bound (exclusive, in µs) of bucket `i`; the last bucket has no
/// bound.
#[must_use]
pub fn bucket_ceiling_us(i: usize) -> Option<u64> {
    if i + 1 >= LATENCY_BUCKETS {
        None
    } else {
        Some(1u64 << (i + 1))
    }
}

fn bucket_of(micros: u64) -> usize {
    // floor(log2(micros)) clamped into range; 0 and 1 µs land in bucket 0.
    let log = 63u32.saturating_sub(micros.leading_zeros());
    (log as usize).min(LATENCY_BUCKETS - 1)
}

/// One fixed-bucket latency histogram (relaxed atomics; `record` is
/// wait-free).
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    total_micros: AtomicU64,
}

impl Histogram {
    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_micros.fetch_add(us, Ordering::Relaxed);
    }

    /// Point-in-time copy.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; LATENCY_BUCKETS];
        for (out, cell) in buckets.iter_mut().zip(&self.buckets) {
            *out = cell.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            total_micros: self.total_micros.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_ceiling_us`]).
    pub buckets: [u64; LATENCY_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples in microseconds.
    pub total_micros: u64,
}

impl HistogramSnapshot {
    /// Upper-bound estimate (bucket ceiling, µs) of the `q`-quantile
    /// (`0.0..=1.0`), or `None` when the histogram is empty. The last
    /// bucket reports its floor (there is no ceiling).
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        // ceil(q * count), clamped to [1, count]: the rank of the
        // sample whose bucket we report.
        let rank_f = (q * self.count as f64).ceil();
        let rank = if rank_f.is_finite() && rank_f >= 1.0 {
            (rank_f as u64).min(self.count)
        } else {
            1
        };
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_ceiling_us(i).unwrap_or(1u64 << (LATENCY_BUCKETS - 1)));
            }
        }
        None
    }

    /// Element-wise merge (how the router aggregates shards).
    #[must_use]
    pub fn merged(&self, other: &Self) -> Self {
        let mut buckets = self.buckets;
        for (a, b) in buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        Self {
            buckets,
            count: self.count + other.count,
            total_micros: self.total_micros + other.total_micros,
        }
    }
}

/// Request classes tracked by the per-op histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `{"experiment": "ping"}`.
    Ping,
    /// `{"experiment": "stats"}`.
    Stats,
    /// `{"experiment": "metrics"}`.
    Metrics,
    /// `{"experiment": "sweep", "vcc": N}` — one operating point.
    SweepPoint,
    /// `{"experiment": "sweep"}` — the full grid.
    SweepFull,
    /// `{"experiment": "table1"}`.
    Table1,
    /// `{"experiment": "stalls"}`.
    Stalls,
    /// `{"experiment": "shutdown"}`.
    Shutdown,
    /// `{"experiment": "peer_get", "key": HEX}` — a peer shard's
    /// read-through probe into this shard's local cache tiers.
    PeerGet,
    /// Unparsable or unknown request lines.
    Invalid,
}

impl Op {
    /// Every op, in rendering order.
    pub const ALL: [Op; 10] = [
        Op::Ping,
        Op::Stats,
        Op::Metrics,
        Op::SweepPoint,
        Op::SweepFull,
        Op::Table1,
        Op::Stalls,
        Op::Shutdown,
        Op::PeerGet,
        Op::Invalid,
    ];

    /// Stable label used in the `metrics` response.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Op::Ping => "ping",
            Op::Stats => "stats",
            Op::Metrics => "metrics",
            Op::SweepPoint => "sweep_point",
            Op::SweepFull => "sweep_full",
            Op::Table1 => "table1",
            Op::Stalls => "stalls",
            Op::Shutdown => "shutdown",
            Op::PeerGet => "peer_get",
            Op::Invalid => "invalid",
        }
    }

    fn index(self) -> usize {
        match self {
            Op::Ping => 0,
            Op::Stats => 1,
            Op::Metrics => 2,
            Op::SweepPoint => 3,
            Op::SweepFull => 4,
            Op::Table1 => 5,
            Op::Stalls => 6,
            Op::Shutdown => 7,
            Op::PeerGet => 8,
            Op::Invalid => 9,
        }
    }
}

/// The registry: per-op latency histograms, the dispatch-queue gauge,
/// and every connection-outcome counter of the serve loop. Shared
/// (`Arc`) between the event loop, its workers and the `metrics`
/// request handler.
#[derive(Debug, Default)]
pub struct Metrics {
    ops: [Histogram; Op::ALL.len()],
    /// Connections accepted and registered with the event loop.
    pub accepted: AtomicU64,
    /// Connections ended by a clean peer close (EOF).
    pub completed: AtomicU64,
    /// Connections refused with the `busy` error at the accept gate.
    pub refused_busy: AtomicU64,
    /// Connections ended by an I/O or protocol error (counted, logged).
    pub connection_errors: AtomicU64,
    /// Connections cut loose by the idle or write-stall deadline.
    pub timeouts: AtomicU64,
    /// Idle connections reaped by the idle deadline (subset of
    /// `timeouts`: reaps with no pending output).
    pub idle_reaped: AtomicU64,
    /// Requests whose handler panicked (the worker survives).
    pub worker_panics: AtomicU64,
    /// Connections force-closed at the shutdown drain deadline.
    pub force_closed: AtomicU64,
    /// Request lines answered with the shutting-down error during drain.
    pub drain_refused: AtomicU64,
    queue_depth: AtomicU64,
    queue_peak: AtomicU64,
}

impl Metrics {
    /// A zeroed registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed request of class `op` with its
    /// enqueue-to-response latency.
    pub fn record(&self, op: Op, latency: Duration) {
        self.ops[op.index()].record(latency);
    }

    /// Histogram for one op class.
    #[must_use]
    pub fn op_histogram(&self, op: Op) -> &Histogram {
        &self.ops[op.index()]
    }

    /// Notes a request entering the dispatch queue (gauge up, peak
    /// tracked).
    pub fn job_enqueued(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Notes a request leaving the dispatch queue (gauge down).
    pub fn job_done(&self) {
        // Saturating: a stray double-done must not wrap the gauge.
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                Some(d.saturating_sub(1))
            });
    }

    /// Current dispatch-queue depth (requests submitted but not yet
    /// answered).
    #[must_use]
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// High-water mark of the dispatch queue.
    #[must_use]
    pub fn queue_peak(&self) -> u64 {
        self.queue_peak.load(Ordering::Relaxed)
    }

    /// Renders the body of a `metrics` response: shard identity (when
    /// sharded), queue gauge, connection counters, the store's
    /// hit-rate and health, and one histogram object per op.
    #[must_use]
    pub fn to_json(&self, shard: Option<(u32, u32)>, store: &StoreStats) -> String {
        let mut fields: Vec<(&str, String)> = vec![
            ("ok", json::boolean(true)),
            ("experiment", json::string("metrics")),
        ];
        if let Some((index, count)) = shard {
            fields.push(("shard_index", index.to_string()));
            fields.push(("shard_count", count.to_string()));
        }
        fields.push(("queue_depth", self.queue_depth().to_string()));
        fields.push(("queue_peak", self.queue_peak().to_string()));
        fields.push((
            "idle_reaped",
            self.idle_reaped.load(Ordering::Relaxed).to_string(),
        ));
        fields.push((
            "connections",
            json::object(&[
                (
                    "accepted",
                    self.accepted.load(Ordering::Relaxed).to_string(),
                ),
                (
                    "completed",
                    self.completed.load(Ordering::Relaxed).to_string(),
                ),
                (
                    "refused",
                    self.refused_busy.load(Ordering::Relaxed).to_string(),
                ),
                (
                    "errors",
                    self.connection_errors.load(Ordering::Relaxed).to_string(),
                ),
                (
                    "timeouts",
                    self.timeouts.load(Ordering::Relaxed).to_string(),
                ),
                (
                    "worker_panics",
                    self.worker_panics.load(Ordering::Relaxed).to_string(),
                ),
                (
                    "force_closed",
                    self.force_closed.load(Ordering::Relaxed).to_string(),
                ),
                (
                    "drain_refused",
                    self.drain_refused.load(Ordering::Relaxed).to_string(),
                ),
            ]),
        ));
        fields.push(("store", store_json(store)));
        let ceilings: Vec<String> = (0..LATENCY_BUCKETS)
            .map(|i| bucket_ceiling_us(i).map_or_else(|| "null".to_string(), |c| c.to_string()))
            .collect();
        fields.push(("latency_bucket_ceilings_us", json::array(&ceilings)));
        let ops: Vec<String> = Op::ALL
            .iter()
            .map(|&op| op_json(op, &self.ops[op.index()].snapshot()))
            .collect();
        fields.push(("ops", json::array(&ops)));
        json::object(&fields)
    }
}

/// Renders a store's traffic and health for the `metrics` response —
/// the hit-rate is `null` until the store has seen any lookups.
#[must_use]
pub fn store_json(s: &StoreStats) -> String {
    let total = s.hits + s.misses;
    let hit_rate = if total == 0 {
        f64::NAN // json::number renders non-finite as null
    } else {
        s.hits as f64 / total as f64
    };
    json::object(&[
        ("hits", s.hits.to_string()),
        ("misses", s.misses.to_string()),
        ("hit_rate", json::number(hit_rate)),
        ("stores", s.stores.to_string()),
        ("coalesced", s.coalesced.to_string()),
        ("foreign_puts", s.foreign_puts.to_string()),
        ("peer_fetches", s.peer_fetches.to_string()),
        ("peer_hits", s.peer_hits.to_string()),
        ("quarantined", s.quarantined.to_string()),
        ("degraded", json::boolean(s.degraded)),
    ])
}

/// Renders one op's histogram snapshot.
#[must_use]
pub fn op_json(op: Op, h: &HistogramSnapshot) -> String {
    let mean = if h.count == 0 {
        f64::NAN
    } else {
        h.total_micros as f64 / h.count as f64
    };
    let quant = |q: f64| {
        h.quantile_us(q)
            .map_or_else(|| "null".to_string(), |us| us.to_string())
    };
    let buckets: Vec<String> = h.buckets.iter().map(ToString::to_string).collect();
    json::object(&[
        ("op", json::string(op.label())),
        ("count", h.count.to_string()),
        ("total_us", h.total_micros.to_string()),
        ("mean_us", json::number(mean)),
        ("p50_us", quant(0.5)),
        ("p99_us", quant(0.99)),
        ("buckets", json::array(&buckets)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_microseconds() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1_000_000), 19);
        assert_eq!(bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
        assert_eq!(bucket_ceiling_us(0), Some(2));
        assert_eq!(bucket_ceiling_us(1), Some(4));
        assert_eq!(bucket_ceiling_us(LATENCY_BUCKETS - 1), None);
    }

    #[test]
    fn histogram_records_and_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.snapshot().quantile_us(0.5), None);
        for _ in 0..99 {
            h.record(Duration::from_micros(3));
        }
        h.record(Duration::from_secs(1));
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.quantile_us(0.5), Some(4), "p50 is in the 2–4 µs bucket");
        assert_eq!(
            s.quantile_us(0.99),
            Some(4),
            "99 of 100 samples are below 4 µs"
        );
        assert_eq!(
            s.quantile_us(1.0),
            Some(1 << 20),
            "the 1 s outlier lands in the 2^19..2^20 µs bucket"
        );
    }

    #[test]
    fn snapshots_merge_elementwise() {
        let a = Histogram::default();
        let b = Histogram::default();
        a.record(Duration::from_micros(3));
        b.record(Duration::from_micros(3));
        b.record(Duration::from_millis(10));
        let m = a.snapshot().merged(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.buckets[1], 2);
    }

    #[test]
    fn queue_gauge_tracks_depth_and_peak() {
        let m = Metrics::new();
        m.job_enqueued();
        m.job_enqueued();
        assert_eq!(m.queue_depth(), 2);
        m.job_done();
        assert_eq!(m.queue_depth(), 1);
        assert_eq!(m.queue_peak(), 2);
        m.job_done();
        m.job_done(); // stray extra done saturates, never wraps
        assert_eq!(m.queue_depth(), 0);
    }

    #[test]
    fn metrics_json_is_valid_and_carries_hit_rate() {
        let m = Metrics::new();
        m.record(Op::Ping, Duration::from_micros(5));
        let stats = StoreStats {
            hits: 3,
            misses: 1,
            ..StoreStats::default()
        };
        let body = m.to_json(Some((1, 2)), &stats);
        let v = json::parse(&body).expect("metrics response is valid JSON");
        assert_eq!(v.get("shard_index").and_then(json::Value::as_u64), Some(1));
        let store = v.get("store").expect("store object");
        let rate = store.get("hit_rate").and_then(json::Value::as_f64);
        assert_eq!(rate, Some(0.75));
        let ops = v.get("ops").and_then(json::Value::as_array).expect("ops");
        assert_eq!(ops.len(), Op::ALL.len());
        let ping = &ops[0];
        assert_eq!(ping.get("count").and_then(json::Value::as_u64), Some(1));
    }

    #[test]
    fn empty_store_hit_rate_is_null() {
        let body = Metrics::new().to_json(None, &StoreStats::default());
        let v = json::parse(&body).expect("valid JSON");
        assert!(v.get("shard_index").is_none());
        assert_eq!(
            v.get("store").unwrap().get("hit_rate"),
            Some(&json::Value::Null)
        );
    }
}
