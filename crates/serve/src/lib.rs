//! `lowvcc-serve`: a long-lived query daemon over the content-addressed
//! result cache.
//!
//! The batch `experiments` binary recomputes every figure per run; this
//! daemon inverts that shape for repeated traffic — characterization
//! studies, dashboards, CI — by keeping the trace suite, the calibrated
//! models and a [`ResultStore`] resident, and answering queries over
//! TCP. Cached operating points come back without simulating; misses are
//! simulated once through the work-stealing parallel runner and stored.
//!
//! ## Protocol
//!
//! Newline-delimited JSON over a plain TCP socket. One request object
//! per line, one response object per line, in order. Requests:
//!
//! ```text
//! {"experiment": "ping"}
//! {"experiment": "stats"}
//! {"experiment": "sweep"}                  → all 13 voltages
//! {"experiment": "sweep", "vcc": 575}      → one operating point
//! {"experiment": "table1", "vcc": 500}     → quantitative Table 1 rows
//! {"experiment": "stalls", "vcc": 575}     → §5.2 stall attribution
//! {"experiment": "shutdown"}
//! ```
//!
//! Every response carries `"ok"`; successes echo the experiment and a
//! `"cached"` flag (true when *this request* performed zero
//! simulations), failures carry `"error"`. Malformed lines never kill
//! the connection.
//!
//! `stats` additionally reports store health: `store_degraded` (the
//! store latched memory-only mode after a publish exhausted its
//! retries), `quarantined` (records moved aside after failed reads),
//! `retries`, `write_failures` and `orphans_swept`. The daemon keeps
//! answering queries in degraded mode — the disk is an optimization,
//! never a dependency (see DESIGN.md §9).
//!
//! ## Concurrency model
//!
//! The accept loop dispatches each connection to a bounded pool of
//! worker threads (see [`ServeOptions::threads`]) which share the
//! resident context and store, so a slow or stalled client occupies one
//! worker, not the daemon. When
//! [`max_connections`](ServeOptions::max_connections) connections are
//! already in flight, excess clients are refused immediately with the
//! typed busy error `{"ok": false, "error": "busy: …", "busy": true}`
//! instead of queueing unboundedly. Identical concurrent cold queries
//! are deduplicated by the store's single-flight layer — one engine
//! invocation per key, everyone else reuses the published result.
//!
//! Per-connection sockets get both **read and write timeouts**
//! (slow-loris hardening: a peer that never sends a byte, or never
//! drains its response, is cut loose after the timeout). `shutdown`
//! answers, stops the accept loop, drains in-flight connections for at
//! most [`drain_deadline`](ServeOptions::drain_deadline), then
//! force-closes whatever is still stalled — a wedged *peer* cannot
//! postpone daemon exit. (A request already inside the engine is the
//! one thing the deadline does not cut: simulations have no
//! cancellation point, so exit waits for them and their results are
//! published to the store.) Per-connection outcomes are reported on an
//! internal stats channel (never silently dropped), tallied into
//! [`ServeSnapshot`] counters surfaced by the `stats` request, and
//! logged to stderr.

use std::collections::{HashMap, HashSet};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use lowvcc_bench::experiments::{point, point_json, stalls, sweep, table1};
use lowvcc_bench::lockdep::OrderedMutex;
use lowvcc_bench::{json, ExperimentContext, ExperimentError, ResultStore};
use lowvcc_sram::{Millivolts, VoltageError};

use std::fmt;
use std::sync::Arc;

/// A parsed, validated request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Cache-traffic counters and suite identity.
    Stats,
    /// The Figure 11b/12 measurement — one voltage, or the full grid.
    Sweep(Option<Millivolts>),
    /// Quantitative Table 1 rows at a voltage (default 500 mV).
    Table1(Millivolts),
    /// §5.2 stall attribution at a voltage (default 575 mV).
    Stalls(Millivolts),
    /// Stop accepting and exit the serve loop.
    Shutdown,
}

/// Why a request line was rejected before reaching an experiment.
///
/// Typed so callers (and tests) can match on the failure instead of
/// string-comparing; [`fmt::Display`] renders the protocol-level
/// message the daemon sends back to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The line was not valid JSON.
    Json(json::JsonError),
    /// The request object has no string `"experiment"` field.
    MissingExperiment,
    /// The `"experiment"` field names no known experiment.
    UnknownExperiment(String),
    /// The `"vcc"` field is not a whole number.
    VccNotInteger,
    /// The `"vcc"` field does not fit a millivolt count.
    VccOutOfRange(u64),
    /// The voltage is outside the calibrated model range.
    Voltage(VoltageError),
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Json(e) => write!(f, "{e}"),
            Self::MissingExperiment => write!(f, "request needs a string \"experiment\" field"),
            Self::UnknownExperiment(other) => write!(f, "unknown experiment {other:?}"),
            Self::VccNotInteger => write!(f, "\"vcc\" must be a whole number of millivolts"),
            Self::VccOutOfRange(mv) => write!(f, "\"vcc\" {mv} out of range"),
            Self::Voltage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RequestError {}

fn parse_vcc(v: Option<&json::Value>, default_mv: u32) -> Result<Millivolts, RequestError> {
    let mv = match v {
        None => default_mv,
        Some(v) => {
            let raw = v.as_u64().ok_or(RequestError::VccNotInteger)?;
            u32::try_from(raw).map_err(|_| RequestError::VccOutOfRange(raw))?
        }
    };
    Millivolts::new(mv).map_err(RequestError::Voltage)
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a [`RequestError`] for malformed JSON, unknown experiments,
/// or out-of-model voltages; its `Display` form is the message the
/// daemon sends back.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let v = json::parse(line).map_err(RequestError::Json)?;
    let experiment = v
        .get("experiment")
        .and_then(json::Value::as_str)
        .ok_or(RequestError::MissingExperiment)?;
    match experiment {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "sweep" => match v.get("vcc") {
            None => Ok(Request::Sweep(None)),
            some => Ok(Request::Sweep(Some(parse_vcc(some, 0)?))),
        },
        "table1" => Ok(Request::Table1(parse_vcc(v.get("vcc"), 500)?)),
        "stalls" => Ok(Request::Stalls(parse_vcc(v.get("vcc"), 575)?)),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(RequestError::UnknownExperiment(other.to_string())),
    }
}

/// Tuning knobs for the concurrent serve loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Worker threads handling connections (the `--threads` flag).
    /// Clamped up to 1. Workers mostly wait on sockets — a simulating
    /// request additionally fans out over the context's `--jobs`
    /// parallelism — so this bounds *concurrent connections served*,
    /// not CPU use.
    pub threads: usize,
    /// Connections in flight (accepted, queued or being served) before
    /// the accept loop refuses new clients with the typed `busy` error
    /// (the `--max-connections` flag). Clamped up to 1.
    pub max_connections: usize,
    /// Per-connection socket read timeout: an idle peer is disconnected
    /// after this long without sending a full line.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout: a peer that stops draining
    /// its response is disconnected (slow-loris hardening).
    pub write_timeout: Duration,
    /// After a `shutdown` request, how long in-flight connections get to
    /// finish before being force-closed.
    pub drain_deadline: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(4, |n| n.get().max(4)),
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            drain_deadline: Duration::from_secs(2),
        }
    }
}

impl ServeOptions {
    fn clamped(self) -> Self {
        Self {
            threads: self.threads.max(1),
            max_connections: self.max_connections.max(1),
            ..self
        }
    }
}

/// Point-in-time copy of the serve-loop counters (the daemon-level
/// companion to the store's `StoreStats`). Every dispatched connection
/// ends in exactly one bucket, so `accepted` always equals `completed +
/// connection_errors + timeouts + worker_panics + force_closed +
/// drain_refused` once the daemon has exited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSnapshot {
    /// Connections accepted and dispatched to a worker.
    pub accepted: u64,
    /// Connections served to completion (EOF or clean close).
    pub completed: u64,
    /// Connections refused with the `busy` error at the accept gate
    /// (never dispatched, so not part of `accepted`).
    pub refused_busy: u64,
    /// Connections ended by an I/O error (reported, not dropped).
    pub connection_errors: u64,
    /// Connections cut loose by a read/write timeout.
    pub timeouts: u64,
    /// Connections whose handler panicked (the worker survives).
    pub worker_panics: u64,
    /// Connections cut mid-session by the shutdown drain deadline's
    /// force-close.
    pub force_closed: u64,
    /// Connections dequeued after shutdown began: answered with a
    /// shutting-down error instead of a full session.
    pub drain_refused: u64,
}

#[derive(Debug, Default)]
struct ServeCounters {
    accepted: AtomicU64,
    completed: AtomicU64,
    refused_busy: AtomicU64,
    connection_errors: AtomicU64,
    timeouts: AtomicU64,
    worker_panics: AtomicU64,
    force_closed: AtomicU64,
    drain_refused: AtomicU64,
}

impl ServeCounters {
    fn snapshot(&self) -> ServeSnapshot {
        ServeSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            refused_busy: self.refused_busy.load(Ordering::Relaxed),
            connection_errors: self.connection_errors.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            force_closed: self.force_closed.load(Ordering::Relaxed),
            drain_refused: self.drain_refused.load(Ordering::Relaxed),
        }
    }
}

/// How one connection ended — what workers put on the stats channel.
/// One terminal event per dispatched connection, so the counters
/// reconcile against `accepted`.
#[derive(Debug)]
enum ConnEvent {
    Done,
    TimedOut(u64),
    Error {
        conn: u64,
        what: String,
    },
    Panicked {
        conn: u64,
    },
    /// Accepted before shutdown, dequeued after: answered with a
    /// shutting-down error instead of a full session.
    DrainRefused,
    /// Cut mid-session by the drain deadline's force-close.
    ForceClosed(u64),
}

/// Shared serve-loop state, borrowed by every worker for the duration of
/// one `serve_with` call.
struct ServeShared {
    opts: ServeOptions,
    /// Flipped by the worker that handles a `shutdown` request; the
    /// accept loop polls it.
    shutdown: AtomicBool,
    /// Connections accepted but not yet finished (queued + active) —
    /// the backpressure gate compares this against `max_connections`.
    active: AtomicUsize,
    /// Clones of every live connection's stream, so the drain phase can
    /// force-shutdown stalled peers at the deadline.
    registry: OrderedMutex<HashMap<u64, TcpStream>>,
    /// Ids cut by the drain deadline's force-close. A cut socket can
    /// surface to its worker as a plain EOF, so the worker consults
    /// this set to classify the end as `ForceClosed`, not `Done`.
    cut: OrderedMutex<HashSet<u64>>,
}

/// Accept-loop poll interval: bounds both shutdown latency and the
/// stats-channel drain cadence.
const POLL: Duration = Duration::from_millis(5);

/// The resident daemon state: context (with its store) plus bookkeeping.
pub struct Daemon {
    ctx: ExperimentContext,
    /// The context's result cache, held directly so the hot path never
    /// has to re-prove `ctx.cache` is populated. `new` guarantees this
    /// is the same store `ctx.cache` carries.
    store: Arc<ResultStore>,
    counters: ServeCounters,
}

impl Daemon {
    /// Wraps a context. A result cache is what makes the daemon useful:
    /// contexts without one get an in-memory (ephemeral) store attached.
    #[must_use]
    pub fn new(ctx: ExperimentContext) -> Self {
        let store = ctx
            .cache
            .clone()
            .unwrap_or_else(|| Arc::new(ResultStore::ephemeral()));
        let ctx = if ctx.cache.is_some() {
            ctx
        } else {
            ctx.with_cache(Arc::clone(&store))
        };
        Self {
            ctx,
            store,
            counters: ServeCounters::default(),
        }
    }

    /// The wrapped context.
    #[must_use]
    pub fn context(&self) -> &ExperimentContext {
        &self.ctx
    }

    /// Serve-loop counters so far (connection outcomes, refusals,
    /// force-closes). Also surfaced by the `stats` request.
    #[must_use]
    pub fn serve_counters(&self) -> ServeSnapshot {
        self.counters.snapshot()
    }

    fn store(&self) -> &ResultStore {
        &self.store
    }

    /// Pre-fills the store: the full sweep grid, plus Table 1 and the
    /// stall study at their protocol-default voltages (500 / 575 mV).
    /// `sweep` queries are then hits at every grid point; a `table1` or
    /// `stalls` query at a *non-default* voltage still simulates its
    /// extra configurations once on first request.
    ///
    /// # Errors
    ///
    /// Propagates simulation and cache failures.
    pub fn warm(&self) -> Result<(), ExperimentError> {
        // Compile-time-validated grid anchor: the protocol default for
        // `table1` (500 mV) cannot drift out of the model range.
        const TABLE1_DEFAULT: Millivolts = Millivolts::literal(500);
        sweep::run_sweep(&self.ctx)?;
        table1::quantitative_rows_at(&self.ctx, TABLE1_DEFAULT)?;
        stalls::measure(&self.ctx)?;
        Ok(())
    }

    /// Executes `req`, returning the response line (without newline) and
    /// whether the connection should shut the daemon down.
    #[must_use]
    pub fn handle(&self, req: Request) -> (String, bool) {
        match self.respond(req) {
            Ok((body, stop)) => (body, stop),
            Err(e) => (
                json::object(&[
                    ("ok", json::boolean(false)),
                    ("error", json::string(&e.to_string())),
                ]),
                false,
            ),
        }
    }

    /// Parses and executes one raw request line.
    #[must_use]
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        match parse_request(line) {
            Ok(req) => self.handle(req),
            Err(e) => (
                json::object(&[
                    ("ok", json::boolean(false)),
                    ("error", json::string(&e.to_string())),
                ]),
                false,
            ),
        }
    }

    fn respond(&self, req: Request) -> Result<(String, bool), ExperimentError> {
        // "Did this request simulate?" == did the *calling thread's*
        // miss tally move while we served it. The thread-local (not the
        // store-global counter) keeps the flag accurate while other
        // connections miss concurrently; a request that merely waited
        // on another request's single-flight simulation reports cached.
        let misses_before = ResultStore::thread_misses();
        let cached = || ResultStore::thread_misses() == misses_before;
        match req {
            Request::Ping => Ok((
                json::object(&[("ok", json::boolean(true)), ("pong", json::boolean(true))]),
                false,
            )),
            Request::Shutdown => Ok((
                json::object(&[
                    ("ok", json::boolean(true)),
                    ("shutdown", json::boolean(true)),
                ]),
                true,
            )),
            Request::Stats => {
                let s = self.store().stats();
                let disk = self.store().disk_entries();
                let c = self.counters.snapshot();
                Ok((
                    json::object(&[
                        ("ok", json::boolean(true)),
                        ("suite", json::string(&self.ctx.suite_label)),
                        ("suite_uops", self.ctx.total_uops().to_string()),
                        ("hits", s.hits.to_string()),
                        ("misses", s.misses.to_string()),
                        ("stores", s.stores.to_string()),
                        ("coalesced", s.coalesced.to_string()),
                        ("simulated_uops", s.simulated_uops.to_string()),
                        ("disk_entries", disk.to_string()),
                        ("persistent", json::boolean(self.store().dir().is_some())),
                        ("store_degraded", json::boolean(s.degraded)),
                        ("quarantined", s.quarantined.to_string()),
                        ("retries", s.retries.to_string()),
                        ("write_failures", s.write_failures.to_string()),
                        ("orphans_swept", s.orphans_swept.to_string()),
                        ("connections_accepted", c.accepted.to_string()),
                        ("connections_completed", c.completed.to_string()),
                        ("connections_refused", c.refused_busy.to_string()),
                        ("connection_errors", c.connection_errors.to_string()),
                        ("connection_timeouts", c.timeouts.to_string()),
                        ("worker_panics", c.worker_panics.to_string()),
                        ("force_closed", c.force_closed.to_string()),
                        ("drain_refused", c.drain_refused.to_string()),
                    ]),
                    false,
                ))
            }
            Request::Sweep(Some(vcc)) => {
                let p = point(&self.ctx, vcc)?;
                Ok((
                    json::object(&[
                        ("ok", json::boolean(true)),
                        ("experiment", json::string("sweep")),
                        ("cached", json::boolean(cached())),
                        ("point", point_json(&p)),
                    ]),
                    false,
                ))
            }
            Request::Sweep(None) => {
                let points = sweep::run_sweep(&self.ctx)?;
                let rendered: Vec<String> = points.iter().map(point_json).collect();
                Ok((
                    json::object(&[
                        ("ok", json::boolean(true)),
                        ("experiment", json::string("sweep")),
                        ("cached", json::boolean(cached())),
                        ("points", json::array(&rendered)),
                    ]),
                    false,
                ))
            }
            Request::Table1(vcc) => {
                let rows = table1::quantitative_rows_at(&self.ctx, vcc)?;
                let rendered: Vec<String> = rows
                    .iter()
                    .map(|r| {
                        json::object(&[
                            ("technique", json::string(&r.technique)),
                            ("frequency_gain", json::number(r.frequency_gain)),
                            ("speedup", json::number(r.speedup)),
                            ("relative_ipc", json::number(r.relative_ipc)),
                            ("area_fraction", json::number(r.area_fraction)),
                            ("energy_factor", json::number(r.energy_factor)),
                            ("hard_to_test", json::boolean(r.hard_to_test)),
                        ])
                    })
                    .collect();
                Ok((
                    json::object(&[
                        ("ok", json::boolean(true)),
                        ("experiment", json::string("table1")),
                        ("vcc_mv", vcc.millivolts().to_string()),
                        ("cached", json::boolean(cached())),
                        ("rows", json::array(&rendered)),
                    ]),
                    false,
                ))
            }
            Request::Stalls(vcc) => {
                let r = stalls::measure_at(&self.ctx, vcc)?;
                Ok((
                    json::object(&[
                        ("ok", json::boolean(true)),
                        ("experiment", json::string("stalls")),
                        ("vcc_mv", vcc.millivolts().to_string()),
                        ("cached", json::boolean(cached())),
                        ("total_degradation", json::number(r.total_degradation)),
                        ("rf_share", json::number(r.rf_share)),
                        ("iq_share", json::number(r.iq_share)),
                        ("dl0_share", json::number(r.dl0_share)),
                        ("other_share", json::number(r.other_share)),
                        ("delayed_fraction", json::number(r.delayed_fraction)),
                    ]),
                    false,
                ))
            }
        }
    }

    /// Runs the concurrent accept loop with [`ServeOptions::default`]
    /// until a `shutdown` request (or a listener error). See
    /// [`serve_with`](Self::serve_with).
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures (per-connection errors only
    /// end that connection, and are counted + logged).
    pub fn serve(&self, listener: &TcpListener) -> io::Result<()> {
        self.serve_with(listener, ServeOptions::default())
    }

    /// Runs the accept loop until a `shutdown` request (or a listener
    /// error): connections are dispatched over a channel to a bounded
    /// pool of `opts.threads` workers sharing this daemon's context and
    /// store; excess clients beyond `opts.max_connections` are refused
    /// with the typed `busy` error. On shutdown the loop stops
    /// accepting, drains in-flight connections for
    /// `opts.drain_deadline`, force-closes socket-stalled stragglers,
    /// and joins every worker before returning. The deadline bounds
    /// waiting on *peers*; a connection already simulating runs to
    /// completion (the engine has no cancellation point) and its
    /// results are published before exit.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures. Per-connection failures are
    /// reported on the internal stats channel (see
    /// [`serve_counters`](Self::serve_counters)), never silently
    /// dropped, and never kill the daemon.
    pub fn serve_with(&self, listener: &TcpListener, opts: ServeOptions) -> io::Result<()> {
        let opts = opts.clamped();
        listener.set_nonblocking(true)?;
        let shared = ServeShared {
            opts,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            registry: OrderedMutex::new("serve.registry", HashMap::new()),
            cut: OrderedMutex::new("serve.cut", HashSet::new()),
        };
        let (conn_tx, conn_rx) = mpsc::channel::<(u64, TcpStream)>();
        let conn_rx = OrderedMutex::new("serve.conn_rx", conn_rx);
        let (event_tx, event_rx) = mpsc::channel::<ConnEvent>();

        let result = std::thread::scope(|s| -> io::Result<()> {
            let shared = &shared;
            let conn_rx = &conn_rx;
            for _ in 0..opts.threads {
                let event_tx = event_tx.clone();
                s.spawn(move || self.worker(shared, conn_rx, &event_tx));
            }

            let mut next_id: u64 = 0;
            let accept_result = loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break Ok(());
                }
                for ev in event_rx.try_iter() {
                    self.note_event(&ev);
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if shared.active.load(Ordering::SeqCst) >= opts.max_connections {
                            self.refuse_busy(&stream, &opts);
                            continue;
                        }
                        next_id += 1;
                        // Prepare before dispatch: the socket must not
                        // inherit the listener's nonblocking mode, and
                        // the registry clone is mandatory — a
                        // connection the drain deadline cannot cut must
                        // not be served at all. A failure still counts
                        // one accepted + one error, so the snapshot
                        // tallies keep reconciling.
                        let prepared = stream
                            .set_nonblocking(false)
                            .and_then(|()| stream.try_clone());
                        let clone = match prepared {
                            Ok(clone) => clone,
                            Err(e) => {
                                self.counters.accepted.fetch_add(1, Ordering::Relaxed);
                                self.note_event(&ConnEvent::Error {
                                    conn: next_id,
                                    what: format!("cannot prepare accepted socket: {e}"),
                                });
                                continue;
                            }
                        };
                        self.counters.accepted.fetch_add(1, Ordering::Relaxed);
                        shared.active.fetch_add(1, Ordering::SeqCst);
                        shared.registry.lock().insert(next_id, clone);
                        if conn_tx.send((next_id, stream)).is_err() {
                            // Every worker is gone — nothing left to
                            // serve with; drain and report.
                            shared.active.fetch_sub(1, Ordering::SeqCst);
                            shared.registry.lock().remove(&next_id);
                            self.note_event(&ConnEvent::Error {
                                conn: next_id,
                                what: "no worker available to serve the connection".to_string(),
                            });
                            break Err(io::Error::other("all serve workers exited"));
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => break Err(e),
                }
            };

            // Drain: stop feeding workers (channel close ends their recv
            // loops), give in-flight connections the deadline, then cut
            // stalled peers loose so a wedged client cannot postpone
            // exit. The scope join below waits for the workers. Raising
            // the flag here (also on the listener-error path) makes the
            // drain uniform: queued connections are refused, cut ones
            // report ForceClosed rather than spurious errors.
            shared.shutdown.store(true, Ordering::SeqCst);
            drop(conn_tx);
            let deadline = Instant::now() + opts.drain_deadline;
            while shared.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
                for ev in event_rx.try_iter() {
                    self.note_event(&ev);
                }
                std::thread::sleep(POLL);
            }
            if shared.active.load(Ordering::SeqCst) > 0 {
                // Counted per-connection via ForceClosed events (the
                // `cut` set reclassifies the worker's terminal event),
                // so each connection lands in exactly one bucket.
                let mut cut = shared.cut.lock();
                for (id, conn) in shared.registry.lock().iter() {
                    let _ = conn.shutdown(Shutdown::Both);
                    cut.insert(*id);
                }
            }
            accept_result
        });

        let _ = listener.set_nonblocking(false);
        drop(event_tx);
        for ev in event_rx.try_iter() {
            self.note_event(&ev);
        }
        result
    }

    /// One pool worker: dequeue connections until the channel closes.
    /// A panicking connection handler is caught and reported — the
    /// worker (and the daemon) survive it.
    fn worker(
        &self,
        shared: &ServeShared,
        conn_rx: &OrderedMutex<mpsc::Receiver<(u64, TcpStream)>>,
        events: &mpsc::Sender<ConnEvent>,
    ) {
        loop {
            let next = conn_rx.lock().recv();
            let Ok((id, stream)) = next else { break };
            let mut event = if shared.shutdown.load(Ordering::SeqCst) {
                Self::refuse_line(&stream, &shared.opts, "daemon is shutting down", false);
                ConnEvent::DrainRefused
            } else {
                match catch_unwind(AssertUnwindSafe(|| {
                    self.serve_connection(id, &stream, shared)
                })) {
                    Ok(ev) => ev,
                    Err(_) => ConnEvent::Panicked { conn: id },
                }
            };
            // A drain-deadline cut can look like a plain EOF to the
            // handler; the cut set gives the honest classification.
            if shared.cut.lock().remove(&id) && !matches!(event, ConnEvent::Panicked { .. }) {
                event = ConnEvent::ForceClosed(id);
            }
            shared.registry.lock().remove(&id);
            shared.active.fetch_sub(1, Ordering::SeqCst);
            let _ = events.send(event);
        }
    }

    /// Serves connection `id` to EOF (or timeout/error); returns its
    /// terminal event.
    fn serve_connection(&self, id: u64, stream: &TcpStream, shared: &ServeShared) -> ConnEvent {
        // Slow-loris hardening: a peer that never sends a byte, or
        // never drains its response, must not pin this worker past the
        // timeouts. A failure to arm them is itself an error — serving
        // an untimed socket is exactly the bug this guards against.
        if let Err(e) = stream
            .set_read_timeout(Some(shared.opts.read_timeout))
            .and_then(|()| stream.set_write_timeout(Some(shared.opts.write_timeout)))
        {
            return ConnEvent::Error {
                conn: id,
                what: format!("cannot arm socket timeouts: {e}"),
            };
        }
        let mut writer = stream;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => return ConnEvent::Done,
                Ok(_) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return ConnEvent::TimedOut(id);
                }
                Err(e) => {
                    // A drain-deadline force-shutdown can surface here
                    // as a read error; the worker's cut-set check
                    // reclassifies exactly those, so a genuine peer
                    // fault during drain still reports as an error.
                    return ConnEvent::Error {
                        conn: id,
                        what: format!("read: {e}"),
                    };
                }
            }
            if line.trim().is_empty() {
                continue;
            }
            let (response, stop) = self.handle_line(line.trim_end());
            if let Err(e) = writer
                .write_all(response.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush())
            {
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) {
                    return ConnEvent::TimedOut(id);
                }
                return ConnEvent::Error {
                    conn: id,
                    what: format!("write: {e}"),
                };
            }
            if stop {
                shared.shutdown.store(true, Ordering::SeqCst);
                return ConnEvent::Done;
            }
        }
    }

    /// Refuses a connection at the accept gate with the typed `busy`
    /// error: `{"ok": false, "error": "busy: …", "busy": true}`.
    fn refuse_busy(&self, stream: &TcpStream, opts: &ServeOptions) {
        self.counters.refused_busy.fetch_add(1, Ordering::Relaxed);
        Self::refuse_line(
            stream,
            opts,
            &format!(
                "busy: {} connections already in flight, retry later",
                opts.max_connections
            ),
            true,
        );
    }

    fn refuse_line(stream: &TcpStream, opts: &ServeOptions, error: &str, busy: bool) {
        let mut fields = vec![("ok", json::boolean(false)), ("error", json::string(error))];
        if busy {
            fields.push(("busy", json::boolean(true)));
        }
        let line = json::object(&fields);
        // Best-effort: the refusal itself must not be able to wedge the
        // caller on a slow client.
        let _ = stream.set_write_timeout(Some(opts.write_timeout.min(Duration::from_secs(1))));
        let mut w = stream;
        let _ = w
            .write_all(line.as_bytes())
            .and_then(|()| w.write_all(b"\n"))
            .and_then(|()| w.flush());
        let _ = stream.shutdown(Shutdown::Both);
    }

    /// Tallies and logs one connection outcome from the stats channel.
    fn note_event(&self, ev: &ConnEvent) {
        match ev {
            ConnEvent::Done => {
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
            }
            ConnEvent::DrainRefused => {
                self.counters.drain_refused.fetch_add(1, Ordering::Relaxed);
            }
            ConnEvent::ForceClosed(conn) => {
                self.counters.force_closed.fetch_add(1, Ordering::Relaxed);
                // lint: allow(no-print) -- operator-facing daemon log; also counted in stats
                eprintln!("lowvcc-serve: connection {conn}: force-closed at the drain deadline");
            }
            ConnEvent::TimedOut(conn) => {
                self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                // lint: allow(no-print) -- operator-facing daemon log; also counted in stats
                eprintln!("lowvcc-serve: connection {conn}: timed out waiting on the peer");
            }
            ConnEvent::Error { conn, what } => {
                self.counters
                    .connection_errors
                    .fetch_add(1, Ordering::Relaxed);
                // lint: allow(no-print) -- operator-facing daemon log; also counted in stats
                eprintln!("lowvcc-serve: connection {conn}: {what}");
            }
            ConnEvent::Panicked { conn } => {
                self.counters.worker_panics.fetch_add(1, Ordering::Relaxed);
                // lint: allow(no-print) -- operator-facing daemon log; also counted in stats
                eprintln!("lowvcc-serve: connection {conn}: handler panicked (worker recovered)");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn daemon() -> Daemon {
        Daemon::new(ExperimentContext::sized(1, 2_000).expect("tiny suite builds"))
    }

    #[test]
    fn parses_the_protocol() {
        assert_eq!(parse_request(r#"{"experiment":"ping"}"#), Ok(Request::Ping));
        assert_eq!(
            parse_request(r#"{"experiment":"sweep"}"#),
            Ok(Request::Sweep(None))
        );
        assert_eq!(
            parse_request(r#"{"experiment":"sweep","vcc":575}"#),
            Ok(Request::Sweep(Some(Millivolts::new(575).unwrap())))
        );
        assert_eq!(
            parse_request(r#"{"experiment":"table1"}"#),
            Ok(Request::Table1(Millivolts::new(500).unwrap()))
        );
        assert_eq!(
            parse_request(r#"{"experiment":"shutdown"}"#),
            Ok(Request::Shutdown)
        );
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"experiment":"lunch"}"#).is_err());
        assert!(parse_request(r#"{"experiment":"sweep","vcc":"high"}"#).is_err());
        assert!(parse_request(r#"{"experiment":"sweep","vcc":12345}"#).is_err());
        assert!(parse_request(r#"{"vcc":500}"#).is_err());
    }

    #[test]
    fn ping_and_malformed_lines_answer_inline() {
        let d = daemon();
        let (resp, stop) = d.handle_line(r#"{"experiment":"ping"}"#);
        assert!(!stop);
        let v = json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));

        let (resp, stop) = d.handle_line("garbage");
        assert!(!stop);
        let v = json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert!(v.get("error").is_some());
    }

    #[test]
    fn sweep_point_misses_then_hits() {
        let d = daemon();
        let vcc = r#"{"experiment":"sweep","vcc":575}"#;
        let (first, _) = d.handle_line(vcc);
        let v = json::parse(&first).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("cached").unwrap().as_bool(), Some(false));
        let p = v.get("point").unwrap();
        assert_eq!(p.get("vcc_mv").unwrap().as_u64(), Some(575));
        assert!(p.get("speedup").unwrap().as_f64().unwrap() > 0.5);

        let (second, _) = d.handle_line(vcc);
        let v2 = json::parse(&second).unwrap();
        assert_eq!(
            v2.get("cached").unwrap().as_bool(),
            Some(true),
            "repeat query must be answered from the store"
        );
        // Identical payload both times — the determinism the cache
        // relies on, observable at the protocol level.
        assert_eq!(v.get("point"), v2.get("point"));
    }

    #[test]
    fn stats_reflect_traffic_and_shutdown_stops() {
        let d = daemon();
        let (_, _) = d.handle_line(r#"{"experiment":"sweep","vcc":500}"#);
        let (resp, _) = d.handle_line(r#"{"experiment":"stats"}"#);
        let v = json::parse(&resp).unwrap();
        assert!(v.get("misses").unwrap().as_u64().unwrap() > 0);
        assert_eq!(v.get("persistent").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("connections_accepted").unwrap().as_u64(), Some(0));
        // Store-health fields: a healthy ephemeral store is all-clear.
        assert_eq!(v.get("store_degraded").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("quarantined").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("retries").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("write_failures").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("orphans_swept").unwrap().as_u64(), Some(0));

        let (resp, stop) = d.handle_line(r#"{"experiment":"shutdown"}"#);
        assert!(stop);
        let v = json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn options_clamp_degenerate_values() {
        let o = ServeOptions {
            threads: 0,
            max_connections: 0,
            ..ServeOptions::default()
        }
        .clamped();
        assert_eq!(o.threads, 1);
        assert_eq!(o.max_connections, 1);
        assert!(ServeOptions::default().threads >= 4);
    }
}
