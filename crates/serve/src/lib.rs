//! `lowvcc-serve`: a long-lived query daemon over the content-addressed
//! result cache.
//!
//! The batch `experiments` binary recomputes every figure per run; this
//! daemon inverts that shape for repeated traffic — characterization
//! studies, dashboards, CI — by keeping the trace suite, the calibrated
//! models and a [`ResultStore`] resident, and answering queries over
//! TCP. Cached operating points come back without simulating; misses are
//! simulated once through the work-stealing parallel runner and stored.
//!
//! ## Protocol
//!
//! Newline-delimited JSON over a plain TCP socket. One request object
//! per line, one response object per line, in order. Requests:
//!
//! ```text
//! {"experiment": "ping"}
//! {"experiment": "stats"}
//! {"experiment": "metrics"}                → latency histograms + counters
//! {"experiment": "sweep"}                  → all 13 voltages
//! {"experiment": "sweep", "vcc": 575}      → one operating point
//! {"experiment": "table1", "vcc": 500}     → quantitative Table 1 rows
//! {"experiment": "stalls", "vcc": 575}     → §5.2 stall attribution
//! {"experiment": "peer_get", "key": HEX}   → read-through probe (shards)
//! {"experiment": "shutdown"}
//! ```
//!
//! Every response carries `"ok"`; successes echo the experiment and a
//! `"cached"` flag (true when *this request* performed zero
//! simulations), failures carry `"error"`. Malformed lines never kill
//! the connection.
//!
//! `stats` additionally reports store health: `store_degraded` (the
//! store latched memory-only mode after a publish exhausted its
//! retries), `quarantined` (records moved aside after failed reads),
//! `retries`, `write_failures` and `orphans_swept`. The daemon keeps
//! answering queries in degraded mode — the disk is an optimization,
//! never a dependency (see DESIGN.md §9). `metrics` returns the
//! [`metrics::Metrics`] registry: fixed-bucket per-op latency
//! histograms, the dispatch-queue gauge, connection outcomes, and the
//! store's hit-rate (DESIGN.md §11).
//!
//! ## Concurrency model
//!
//! One **event-loop thread** owns every socket through a raw-`epoll`
//! [`reactor`]: nonblocking accept, NDJSON framing over partial reads,
//! response flushing under write backpressure, and idle/stall deadlines
//! as the epoll timeout — so idle or slow clients cost zero threads (see
//! [`conn`]). Complete request lines are dispatched to a bounded pool of
//! [`ServeOptions::threads`] workers; a simulating request additionally
//! fans out over the context's own parallelism. When
//! [`max_connections`](ServeOptions::max_connections) connections are
//! open, excess clients are refused immediately with the typed busy
//! error `{"ok": false, "error": "busy: …", "busy": true}` instead of
//! queueing unboundedly. Identical concurrent cold queries are
//! deduplicated by the store's single-flight layer — one engine
//! invocation per key, everyone else reuses the published result.
//!
//! A peer that never sends a full line is reaped at the idle deadline;
//! one that stops draining its response is cut at the write-stall
//! deadline (slow-loris hardening). `shutdown` answers, stops
//! accepting, refuses queued lines with the shutting-down error, closes
//! each connection as its last response flushes, and force-closes
//! whatever is still stalled at
//! [`drain_deadline`](ServeOptions::drain_deadline) — a wedged *peer*
//! cannot postpone daemon exit. (A request already inside the engine is
//! the one thing the deadline does not cut: simulations have no
//! cancellation point, so exit waits for them and their results are
//! published to the store.) Every connection outcome lands in the
//! [`metrics`] registry, surfaced by `stats`/`metrics` and logged to
//! stderr.
//!
//! ## Sharding
//!
//! `--shards N` runs N such daemons, each owning a deterministic slice
//! of the key space via the [`shard`] consistent-hash ring, behind a
//! [`router`] that forwards each request to the owning shard and merges
//! full-grid sweeps byte-identically with the single-process daemon.

use std::io;
use std::net::TcpListener;
use std::time::Duration;

use lowvcc_bench::experiments::{point, point_json, stalls, sweep, table1};
use lowvcc_bench::{json, ExperimentContext, ExperimentError, ResultStore};
use lowvcc_core::{encode_sim_result, SimKey};
use lowvcc_sram::{Millivolts, VoltageError, PAPER_SWEEP};

use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;

pub mod conn;
pub mod metrics;
pub mod reactor;
pub mod router;
pub mod shard;

use metrics::{Metrics, Op};

/// A parsed, validated request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Cache-traffic counters and suite identity.
    Stats,
    /// Latency histograms, queue gauge and connection counters.
    Metrics,
    /// The Figure 11b/12 measurement — one voltage, or the full grid.
    Sweep(Option<Millivolts>),
    /// Quantitative Table 1 rows at a voltage (default 500 mV).
    Table1(Millivolts),
    /// §5.2 stall attribution at a voltage (default 575 mV).
    Stalls(Millivolts),
    /// A peer shard's read-through probe for one [`SimKey`]: answered
    /// from this daemon's local cache tiers only, never by simulating
    /// and never by asking a further peer (the no-cascade rule).
    PeerGet(SimKey),
    /// Stop accepting and exit the serve loop.
    Shutdown,
}

/// Why a request line was rejected before reaching an experiment.
///
/// Typed so callers (and tests) can match on the failure instead of
/// string-comparing; [`fmt::Display`] renders the protocol-level
/// message the daemon sends back to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The line was not valid JSON.
    Json(json::JsonError),
    /// The request object has no string `"experiment"` field.
    MissingExperiment,
    /// The `"experiment"` field names no known experiment.
    UnknownExperiment(String),
    /// The `"vcc"` field is not a whole number.
    VccNotInteger,
    /// The `"vcc"` field does not fit a millivolt count.
    VccOutOfRange(u64),
    /// The `"key"` field of a `peer_get` is not a 32-hex-digit
    /// [`SimKey`] rendering.
    BadPeerKey,
    /// The voltage is outside the calibrated model range.
    Voltage(VoltageError),
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Json(e) => write!(f, "{e}"),
            Self::MissingExperiment => write!(f, "request needs a string \"experiment\" field"),
            Self::UnknownExperiment(other) => write!(f, "unknown experiment {other:?}"),
            Self::VccNotInteger => write!(f, "\"vcc\" must be a whole number of millivolts"),
            Self::VccOutOfRange(mv) => write!(f, "\"vcc\" {mv} out of range"),
            Self::BadPeerKey => {
                write!(f, "\"key\" must be a 32-hex-digit simulation key")
            }
            Self::Voltage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RequestError {}

fn parse_vcc(v: Option<&json::Value>, default_mv: u32) -> Result<Millivolts, RequestError> {
    let mv = match v {
        None => default_mv,
        Some(v) => {
            let raw = v.as_u64().ok_or(RequestError::VccNotInteger)?;
            u32::try_from(raw).map_err(|_| RequestError::VccOutOfRange(raw))?
        }
    };
    Millivolts::new(mv).map_err(RequestError::Voltage)
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a [`RequestError`] for malformed JSON, unknown experiments,
/// or out-of-model voltages; its `Display` form is the message the
/// daemon sends back.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let v = json::parse(line).map_err(RequestError::Json)?;
    let experiment = v
        .get("experiment")
        .and_then(json::Value::as_str)
        .ok_or(RequestError::MissingExperiment)?;
    match experiment {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "sweep" => match v.get("vcc") {
            None => Ok(Request::Sweep(None)),
            some => Ok(Request::Sweep(Some(parse_vcc(some, 0)?))),
        },
        "table1" => Ok(Request::Table1(parse_vcc(v.get("vcc"), 500)?)),
        "stalls" => Ok(Request::Stalls(parse_vcc(v.get("vcc"), 575)?)),
        "peer_get" => v
            .get("key")
            .and_then(json::Value::as_str)
            .and_then(SimKey::from_hex)
            .map(Request::PeerGet)
            .ok_or(RequestError::BadPeerKey),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(RequestError::UnknownExperiment(other.to_string())),
    }
}

/// The [`metrics::Op`] class of a parse outcome — errors are tracked
/// too, under [`Op::Invalid`].
#[must_use]
pub fn op_of(parsed: &Result<Request, RequestError>) -> Op {
    match parsed {
        Ok(Request::Ping) => Op::Ping,
        Ok(Request::Stats) => Op::Stats,
        Ok(Request::Metrics) => Op::Metrics,
        Ok(Request::Sweep(Some(_))) => Op::SweepPoint,
        Ok(Request::Sweep(None)) => Op::SweepFull,
        Ok(Request::Table1(_)) => Op::Table1,
        Ok(Request::Stalls(_)) => Op::Stalls,
        Ok(Request::PeerGet(_)) => Op::PeerGet,
        Ok(Request::Shutdown) => Op::Shutdown,
        Err(_) => Op::Invalid,
    }
}

/// Tuning knobs for the concurrent serve loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Worker threads computing request responses (the `--threads`
    /// flag). Clamped up to 1. Sockets live on the event loop, not on
    /// workers — this bounds *concurrent request compute*, and a
    /// simulating request additionally fans out over the context's
    /// `--jobs` parallelism.
    pub threads: usize,
    /// Connections open before the accept gate refuses new clients with
    /// the typed `busy` error (the `--max-connections` flag). Clamped
    /// up to 1.
    pub max_connections: usize,
    /// Idle deadline: a peer with no request in flight and no undrained
    /// response is disconnected after this long without sending a
    /// complete line.
    pub read_timeout: Duration,
    /// Write-stall deadline: a peer that stops draining its response is
    /// disconnected after this long without write progress (slow-loris
    /// hardening).
    pub write_timeout: Duration,
    /// After a `shutdown` request, how long still-open connections get
    /// to drain before being force-closed.
    pub drain_deadline: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(4, |n| n.get().max(4)),
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            drain_deadline: Duration::from_secs(2),
        }
    }
}

impl ServeOptions {
    pub(crate) fn clamped(self) -> Self {
        Self {
            threads: self.threads.max(1),
            max_connections: self.max_connections.max(1),
            ..self
        }
    }
}

/// Point-in-time copy of the serve-loop counters (the daemon-level
/// companion to the store's `StoreStats`), snapshotted from the
/// [`metrics::Metrics`] registry. Every accepted connection ends in
/// exactly one terminal bucket, so `accepted` always equals the sum
/// `completed + connection_errors + timeouts + worker_panics +
/// force_closed` once the daemon has exited (`drain_refused` counts
/// *request lines* answered with the shutting-down error, not
/// connections).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSnapshot {
    /// Connections accepted and registered with the event loop.
    pub accepted: u64,
    /// Connections served to completion (EOF or clean close).
    pub completed: u64,
    /// Connections refused with the `busy` error at the accept gate
    /// (never registered, so not part of `accepted`).
    pub refused_busy: u64,
    /// Connections ended by an I/O error (reported, not dropped).
    pub connection_errors: u64,
    /// Connections cut loose by the idle or write-stall deadline.
    pub timeouts: u64,
    /// Idle connections reaped by the idle deadline — the subset of
    /// `timeouts` with no pending output.
    pub idle_reaped: u64,
    /// Connections whose request handler panicked (the worker
    /// survives).
    pub worker_panics: u64,
    /// Connections closed by the shutdown drain (at the deadline, or as
    /// soon as their last response flushed).
    pub force_closed: u64,
    /// Request lines answered with the shutting-down error after
    /// shutdown began.
    pub drain_refused: u64,
}

/// The resident daemon state: context (with its store) plus bookkeeping.
pub struct Daemon {
    ctx: ExperimentContext,
    /// The context's result cache, held directly so the hot path never
    /// has to re-prove `ctx.cache` is populated. `new` guarantees this
    /// is the same store `ctx.cache` carries.
    store: Arc<ResultStore>,
    metrics: Arc<Metrics>,
    /// `(index, count)` when this daemon is one shard of a cluster;
    /// echoed by the `metrics` response.
    shard: Option<(u32, u32)>,
}

impl Daemon {
    /// Wraps a context. A result cache is what makes the daemon useful:
    /// contexts without one get an in-memory (ephemeral) store attached.
    #[must_use]
    pub fn new(ctx: ExperimentContext) -> Self {
        let store = ctx
            .cache
            .clone()
            .unwrap_or_else(|| Arc::new(ResultStore::ephemeral()));
        let ctx = if ctx.cache.is_some() {
            ctx
        } else {
            ctx.with_cache(Arc::clone(&store))
        };
        Self {
            ctx,
            store,
            metrics: Arc::new(Metrics::new()),
            shard: None,
        }
    }

    /// Marks this daemon as shard `index` of `count` (reported by its
    /// `metrics` response; the store's key-slice ownership is attached
    /// to the [`ResultStore`] itself via `with_key_owner`).
    #[must_use]
    pub fn with_shard(mut self, index: u32, count: u32) -> Self {
        self.shard = Some((index, count));
        self
    }

    /// The wrapped context.
    #[must_use]
    pub fn context(&self) -> &ExperimentContext {
        &self.ctx
    }

    /// The daemon's metrics registry (shared with the serve loop).
    #[must_use]
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Serve-loop counters so far (connection outcomes, refusals,
    /// force-closes). Also surfaced by the `stats` request.
    #[must_use]
    pub fn serve_counters(&self) -> ServeSnapshot {
        let m = &self.metrics;
        ServeSnapshot {
            accepted: m.accepted.load(Ordering::Relaxed),
            completed: m.completed.load(Ordering::Relaxed),
            refused_busy: m.refused_busy.load(Ordering::Relaxed),
            connection_errors: m.connection_errors.load(Ordering::Relaxed),
            timeouts: m.timeouts.load(Ordering::Relaxed),
            idle_reaped: m.idle_reaped.load(Ordering::Relaxed),
            worker_panics: m.worker_panics.load(Ordering::Relaxed),
            force_closed: m.force_closed.load(Ordering::Relaxed),
            drain_refused: m.drain_refused.load(Ordering::Relaxed),
        }
    }

    fn store(&self) -> &ResultStore {
        &self.store
    }

    /// Pre-fills the store: the full sweep grid, plus Table 1 and the
    /// stall study at their protocol-default voltages (500 / 575 mV).
    /// `sweep` queries are then hits at every grid point; a `table1` or
    /// `stalls` query at a *non-default* voltage still simulates its
    /// extra configurations once on first request.
    ///
    /// # Errors
    ///
    /// Propagates simulation and cache failures.
    pub fn warm(&self) -> Result<(), ExperimentError> {
        // Compile-time-validated grid anchor: the protocol default for
        // `table1` (500 mV) cannot drift out of the model range.
        const TABLE1_DEFAULT: Millivolts = Millivolts::literal(500);
        sweep::run_sweep(&self.ctx)?;
        table1::quantitative_rows_at(&self.ctx, TABLE1_DEFAULT)?;
        stalls::measure(&self.ctx)?;
        Ok(())
    }

    /// Shard-aware warm-up: pre-fills only the operating points whose
    /// routing anchor `ring` assigns to shard `index` — each shard of a
    /// cluster warms its own slice, together covering exactly what
    /// [`warm`](Self::warm) covers on a single daemon.
    ///
    /// # Errors
    ///
    /// Propagates simulation and cache failures.
    pub fn warm_slice(&self, ring: &shard::Ring, index: u32) -> Result<(), ExperimentError> {
        const TABLE1_DEFAULT: Millivolts = Millivolts::literal(500);
        const STALLS_DEFAULT: Millivolts = Millivolts::literal(575);
        let anchor =
            |vcc| shard::voltage_anchor(self.ctx.core, &self.ctx.timing, &self.ctx.specs[0], vcc);
        for vcc in PAPER_SWEEP.iter() {
            if ring.owns(index, anchor(vcc)) {
                point(&self.ctx, vcc)?;
            }
        }
        if ring.owns(index, anchor(TABLE1_DEFAULT)) {
            table1::quantitative_rows_at(&self.ctx, TABLE1_DEFAULT)?;
        }
        if ring.owns(index, anchor(STALLS_DEFAULT)) {
            stalls::measure(&self.ctx)?;
        }
        Ok(())
    }

    /// Executes `req`, returning the response line (without newline) and
    /// whether the connection should shut the daemon down.
    #[must_use]
    pub fn handle(&self, req: Request) -> (String, bool) {
        match self.respond(req) {
            Ok((body, stop)) => (body, stop),
            Err(e) => (
                json::object(&[
                    ("ok", json::boolean(false)),
                    ("error", json::string(&e.to_string())),
                ]),
                false,
            ),
        }
    }

    /// Parses and executes one raw request line.
    #[must_use]
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        match parse_request(line) {
            Ok(req) => self.handle(req),
            Err(e) => (
                json::object(&[
                    ("ok", json::boolean(false)),
                    ("error", json::string(&e.to_string())),
                ]),
                false,
            ),
        }
    }

    fn respond(&self, req: Request) -> Result<(String, bool), ExperimentError> {
        // "Did this request simulate?" == did the *calling thread's*
        // miss tally move while we served it. The thread-local (not the
        // store-global counter) keeps the flag accurate while other
        // connections miss concurrently; a request that merely waited
        // on another request's single-flight simulation reports cached.
        let misses_before = ResultStore::thread_misses();
        let cached = || ResultStore::thread_misses() == misses_before;
        match req {
            Request::Ping => Ok((
                json::object(&[("ok", json::boolean(true)), ("pong", json::boolean(true))]),
                false,
            )),
            Request::Shutdown => Ok((
                json::object(&[
                    ("ok", json::boolean(true)),
                    ("shutdown", json::boolean(true)),
                ]),
                true,
            )),
            Request::Metrics => Ok((
                self.metrics.to_json(self.shard, &self.store().stats()),
                false,
            )),
            Request::Stats => {
                let s = self.store().stats();
                let disk = self.store().disk_entries();
                let c = self.serve_counters();
                Ok((
                    json::object(&[
                        ("ok", json::boolean(true)),
                        ("suite", json::string(&self.ctx.suite_label)),
                        ("suite_uops", self.ctx.total_uops().to_string()),
                        ("hits", s.hits.to_string()),
                        ("misses", s.misses.to_string()),
                        ("stores", s.stores.to_string()),
                        ("coalesced", s.coalesced.to_string()),
                        ("simulated_uops", s.simulated_uops.to_string()),
                        ("disk_entries", disk.to_string()),
                        ("persistent", json::boolean(self.store().dir().is_some())),
                        ("store_degraded", json::boolean(s.degraded)),
                        ("quarantined", s.quarantined.to_string()),
                        ("retries", s.retries.to_string()),
                        ("write_failures", s.write_failures.to_string()),
                        ("orphans_swept", s.orphans_swept.to_string()),
                        ("foreign_puts", s.foreign_puts.to_string()),
                        ("peer_fetches", s.peer_fetches.to_string()),
                        ("peer_hits", s.peer_hits.to_string()),
                        ("connections_accepted", c.accepted.to_string()),
                        ("connections_completed", c.completed.to_string()),
                        ("connections_refused", c.refused_busy.to_string()),
                        ("connection_errors", c.connection_errors.to_string()),
                        ("connection_timeouts", c.timeouts.to_string()),
                        ("idle_reaped", c.idle_reaped.to_string()),
                        ("worker_panics", c.worker_panics.to_string()),
                        ("force_closed", c.force_closed.to_string()),
                        ("drain_refused", c.drain_refused.to_string()),
                    ]),
                    false,
                ))
            }
            Request::Sweep(Some(vcc)) => {
                let p = point(&self.ctx, vcc)?;
                Ok((
                    json::object(&[
                        ("ok", json::boolean(true)),
                        ("experiment", json::string("sweep")),
                        ("cached", json::boolean(cached())),
                        ("point", point_json(&p)),
                    ]),
                    false,
                ))
            }
            Request::Sweep(None) => {
                let points = sweep::run_sweep(&self.ctx)?;
                let rendered: Vec<String> = points.iter().map(point_json).collect();
                Ok((
                    json::object(&[
                        ("ok", json::boolean(true)),
                        ("experiment", json::string("sweep")),
                        ("cached", json::boolean(cached())),
                        ("points", json::array(&rendered)),
                    ]),
                    false,
                ))
            }
            Request::Table1(vcc) => {
                let rows = table1::quantitative_rows_at(&self.ctx, vcc)?;
                let rendered: Vec<String> = rows
                    .iter()
                    .map(|r| {
                        json::object(&[
                            ("technique", json::string(&r.technique)),
                            ("frequency_gain", json::number(r.frequency_gain)),
                            ("speedup", json::number(r.speedup)),
                            ("relative_ipc", json::number(r.relative_ipc)),
                            ("area_fraction", json::number(r.area_fraction)),
                            ("energy_factor", json::number(r.energy_factor)),
                            ("hard_to_test", json::boolean(r.hard_to_test)),
                        ])
                    })
                    .collect();
                Ok((
                    json::object(&[
                        ("ok", json::boolean(true)),
                        ("experiment", json::string("table1")),
                        ("vcc_mv", vcc.millivolts().to_string()),
                        ("cached", json::boolean(cached())),
                        ("rows", json::array(&rendered)),
                    ]),
                    false,
                ))
            }
            Request::PeerGet(key) => {
                // Local tiers only (`peek_local`): a peer probe must
                // never simulate and never cascade into a further peer
                // fetch — two shards missing the same key would
                // otherwise chase each other.
                let fields: Vec<(&str, String)> = match self.store().peek_local(key) {
                    Some(result) => vec![
                        ("ok", json::boolean(true)),
                        ("experiment", json::string("peer_get")),
                        ("hit", json::boolean(true)),
                        (
                            "record",
                            json::string(&shard::encode_hex(&encode_sim_result(&result))),
                        ),
                    ],
                    None => vec![
                        ("ok", json::boolean(true)),
                        ("experiment", json::string("peer_get")),
                        ("hit", json::boolean(false)),
                    ],
                };
                Ok((json::object(&fields), false))
            }
            Request::Stalls(vcc) => {
                let r = stalls::measure_at(&self.ctx, vcc)?;
                Ok((
                    json::object(&[
                        ("ok", json::boolean(true)),
                        ("experiment", json::string("stalls")),
                        ("vcc_mv", vcc.millivolts().to_string()),
                        ("cached", json::boolean(cached())),
                        ("total_degradation", json::number(r.total_degradation)),
                        ("rf_share", json::number(r.rf_share)),
                        ("iq_share", json::number(r.iq_share)),
                        ("dl0_share", json::number(r.dl0_share)),
                        ("other_share", json::number(r.other_share)),
                        ("delayed_fraction", json::number(r.delayed_fraction)),
                    ]),
                    false,
                ))
            }
        }
    }

    /// Runs the readiness-driven serve loop with
    /// [`ServeOptions::default`] until a `shutdown` request (or a
    /// listener error). See [`serve_with`](Self::serve_with).
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures (per-connection errors only
    /// end that connection, and are counted + logged).
    pub fn serve(&self, listener: &TcpListener) -> io::Result<()> {
        self.serve_with(listener, ServeOptions::default())
    }

    /// Runs the readiness-driven serve loop until a `shutdown` request
    /// (or a listener/reactor error): one event-loop thread owns every
    /// socket, request lines are dispatched to a bounded pool of
    /// `opts.threads` workers sharing this daemon's context and store,
    /// and excess clients beyond `opts.max_connections` are refused with
    /// the typed `busy` error. See [`conn::run`] for the drain
    /// semantics.
    ///
    /// # Errors
    ///
    /// Propagates reactor and listener I/O failures. Per-connection
    /// failures are counted in [`metrics`](Self::metrics) (see
    /// [`serve_counters`](Self::serve_counters)), never silently
    /// dropped, and never kill the daemon.
    pub fn serve_with(&self, listener: &TcpListener, opts: ServeOptions) -> io::Result<()> {
        conn::run(self, &self.metrics, listener, opts)
    }
}

impl conn::Service for Daemon {
    fn call(&self, line: &str) -> conn::Reply {
        let parsed = parse_request(line);
        let op = op_of(&parsed);
        let (body, stop) = match parsed {
            Ok(req) => self.handle(req),
            Err(e) => (
                json::object(&[
                    ("ok", json::boolean(false)),
                    ("error", json::string(&e.to_string())),
                ]),
                false,
            ),
        };
        conn::Reply { body, stop, op }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn daemon() -> Daemon {
        Daemon::new(ExperimentContext::sized(1, 2_000).expect("tiny suite builds"))
    }

    #[test]
    fn parses_the_protocol() {
        assert_eq!(parse_request(r#"{"experiment":"ping"}"#), Ok(Request::Ping));
        assert_eq!(
            parse_request(r#"{"experiment":"sweep"}"#),
            Ok(Request::Sweep(None))
        );
        assert_eq!(
            parse_request(r#"{"experiment":"sweep","vcc":575}"#),
            Ok(Request::Sweep(Some(Millivolts::new(575).unwrap())))
        );
        assert_eq!(
            parse_request(r#"{"experiment":"table1"}"#),
            Ok(Request::Table1(Millivolts::new(500).unwrap()))
        );
        assert_eq!(
            parse_request(r#"{"experiment":"metrics"}"#),
            Ok(Request::Metrics)
        );
        assert_eq!(
            parse_request(r#"{"experiment":"shutdown"}"#),
            Ok(Request::Shutdown)
        );
        let hex = "00112233445566778899aabbccddeeff";
        assert_eq!(
            parse_request(&format!(r#"{{"experiment":"peer_get","key":"{hex}"}}"#)),
            Ok(Request::PeerGet(
                SimKey::from_hex(hex).expect("valid test key")
            ))
        );
        assert_eq!(
            parse_request(r#"{"experiment":"peer_get","key":"xyz"}"#),
            Err(RequestError::BadPeerKey)
        );
        assert_eq!(
            parse_request(r#"{"experiment":"peer_get"}"#),
            Err(RequestError::BadPeerKey)
        );
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"experiment":"lunch"}"#).is_err());
        assert!(parse_request(r#"{"experiment":"sweep","vcc":"high"}"#).is_err());
        assert!(parse_request(r#"{"experiment":"sweep","vcc":12345}"#).is_err());
        assert!(parse_request(r#"{"vcc":500}"#).is_err());
    }

    #[test]
    fn peer_get_answers_from_local_tiers_without_simulating() {
        let d = daemon();
        let (_, _) = d.handle_line(r#"{"experiment":"sweep","vcc":575}"#);
        // The 575 mV anchor key was just simulated, so a peer probe hits
        // and ships a decodable LVCR record.
        let ctx = d.context();
        let key = shard::voltage_anchor(
            ctx.core,
            &ctx.timing,
            &ctx.specs[0],
            Millivolts::literal(575),
        );
        let (resp, stop) = d.handle_line(&shard::peer_get_line(key));
        assert!(!stop);
        let v = json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("hit").unwrap().as_bool(), Some(true));
        let record = shard::decode_hex(v.get("record").unwrap().as_str().unwrap()).unwrap();
        assert!(lowvcc_core::decode_sim_result(&record).is_ok());

        // A cold key answers a miss without simulating or counting one.
        let misses = d.store().stats().misses;
        let other = SimKey::from_value(key.value() ^ 0xffff);
        let (resp, _) = d.handle_line(&shard::peer_get_line(other));
        let v = json::parse(&resp).unwrap();
        assert_eq!(v.get("hit").unwrap().as_bool(), Some(false));
        assert!(v.get("record").is_none());
        assert_eq!(
            d.store().stats().misses,
            misses,
            "a peer probe is never a miss"
        );
    }

    #[test]
    fn ping_and_malformed_lines_answer_inline() {
        let d = daemon();
        let (resp, stop) = d.handle_line(r#"{"experiment":"ping"}"#);
        assert!(!stop);
        let v = json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));

        let (resp, stop) = d.handle_line("garbage");
        assert!(!stop);
        let v = json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert!(v.get("error").is_some());
    }

    #[test]
    fn sweep_point_misses_then_hits() {
        let d = daemon();
        let vcc = r#"{"experiment":"sweep","vcc":575}"#;
        let (first, _) = d.handle_line(vcc);
        let v = json::parse(&first).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("cached").unwrap().as_bool(), Some(false));
        let p = v.get("point").unwrap();
        assert_eq!(p.get("vcc_mv").unwrap().as_u64(), Some(575));
        assert!(p.get("speedup").unwrap().as_f64().unwrap() > 0.5);

        let (second, _) = d.handle_line(vcc);
        let v2 = json::parse(&second).unwrap();
        assert_eq!(
            v2.get("cached").unwrap().as_bool(),
            Some(true),
            "repeat query must be answered from the store"
        );
        // Identical payload both times — the determinism the cache
        // relies on, observable at the protocol level.
        assert_eq!(v.get("point"), v2.get("point"));
    }

    #[test]
    fn stats_reflect_traffic_and_shutdown_stops() {
        let d = daemon();
        let (_, _) = d.handle_line(r#"{"experiment":"sweep","vcc":500}"#);
        let (resp, _) = d.handle_line(r#"{"experiment":"stats"}"#);
        let v = json::parse(&resp).unwrap();
        assert!(v.get("misses").unwrap().as_u64().unwrap() > 0);
        assert_eq!(v.get("persistent").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("connections_accepted").unwrap().as_u64(), Some(0));
        // Store-health fields: a healthy ephemeral store is all-clear.
        assert_eq!(v.get("store_degraded").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("quarantined").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("retries").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("write_failures").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("orphans_swept").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("foreign_puts").unwrap().as_u64(), Some(0));

        let (resp, stop) = d.handle_line(r#"{"experiment":"shutdown"}"#);
        assert!(stop);
        let v = json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn metrics_request_reports_histograms_and_hit_rate() {
        let d = daemon();
        let (_, _) = d.handle_line(r#"{"experiment":"sweep","vcc":575}"#);
        let (resp, stop) = d.handle_line(r#"{"experiment":"metrics"}"#);
        assert!(!stop);
        let v = json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("experiment").unwrap().as_str(), Some("metrics"));
        assert!(v.get("shard_index").is_none(), "unsharded daemon");
        let store = v.get("store").unwrap();
        assert!(store.get("hit_rate").is_some());
        let ops = v.get("ops").unwrap().as_array().unwrap();
        assert_eq!(ops.len(), metrics::Op::ALL.len());
    }

    #[test]
    fn options_clamp_degenerate_values() {
        let o = ServeOptions {
            threads: 0,
            max_connections: 0,
            ..ServeOptions::default()
        }
        .clamped();
        assert_eq!(o.threads, 1);
        assert_eq!(o.max_connections, 1);
        assert!(ServeOptions::default().threads >= 4);
    }
}
