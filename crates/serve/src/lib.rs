//! `lowvcc-serve`: a long-lived query daemon over the content-addressed
//! result cache.
//!
//! The batch `experiments` binary recomputes every figure per run; this
//! daemon inverts that shape for repeated traffic — characterization
//! studies, dashboards, CI — by keeping the trace suite, the calibrated
//! models and a [`ResultStore`] resident, and answering queries over
//! TCP. Cached operating points come back without simulating; misses are
//! simulated once through the work-stealing parallel runner and stored.
//!
//! ## Protocol
//!
//! Newline-delimited JSON over a plain TCP socket. One request object
//! per line, one response object per line, in order. Requests:
//!
//! ```text
//! {"experiment": "ping"}
//! {"experiment": "stats"}
//! {"experiment": "sweep"}                  → all 13 voltages
//! {"experiment": "sweep", "vcc": 575}      → one operating point
//! {"experiment": "table1", "vcc": 500}     → quantitative Table 1 rows
//! {"experiment": "stalls", "vcc": 575}     → §5.2 stall attribution
//! {"experiment": "shutdown"}
//! ```
//!
//! Every response carries `"ok"`; successes echo the experiment and a
//! `"cached"` flag (true when the request performed zero simulations),
//! failures carry `"error"`. Malformed lines never kill the connection.
//! `shutdown` answers, closes the connection and stops the accept loop —
//! the graceful path the smoke test exercises.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use lowvcc_bench::experiments::{point, point_json, stalls, sweep, table1};
use lowvcc_bench::{json, ExperimentContext, ExperimentError, ResultStore};
use lowvcc_sram::Millivolts;

/// A parsed, validated request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Cache-traffic counters and suite identity.
    Stats,
    /// The Figure 11b/12 measurement — one voltage, or the full grid.
    Sweep(Option<Millivolts>),
    /// Quantitative Table 1 rows at a voltage (default 500 mV).
    Table1(Millivolts),
    /// §5.2 stall attribution at a voltage (default 575 mV).
    Stalls(Millivolts),
    /// Stop accepting and exit the serve loop.
    Shutdown,
}

fn parse_vcc(v: Option<&json::Value>, default_mv: u32) -> Result<Millivolts, String> {
    let mv = match v {
        None => default_mv,
        Some(v) => u32::try_from(
            v.as_u64()
                .ok_or_else(|| "\"vcc\" must be a whole number of millivolts".to_string())?,
        )
        .map_err(|_| "\"vcc\" out of range".to_string())?,
    };
    Millivolts::new(mv).map_err(|e| e.to_string())
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable message for malformed JSON, unknown
/// experiments, or out-of-model voltages.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = json::parse(line).map_err(|e| e.to_string())?;
    let experiment = v
        .get("experiment")
        .and_then(json::Value::as_str)
        .ok_or_else(|| "request needs a string \"experiment\" field".to_string())?;
    match experiment {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "sweep" => match v.get("vcc") {
            None => Ok(Request::Sweep(None)),
            some => Ok(Request::Sweep(Some(parse_vcc(some, 0)?))),
        },
        "table1" => Ok(Request::Table1(parse_vcc(v.get("vcc"), 500)?)),
        "stalls" => Ok(Request::Stalls(parse_vcc(v.get("vcc"), 575)?)),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown experiment {other:?}")),
    }
}

/// The resident daemon state: context (with its store) plus bookkeeping.
pub struct Daemon {
    ctx: ExperimentContext,
}

impl Daemon {
    /// Wraps a context. A result cache is what makes the daemon useful:
    /// contexts without one get an in-memory (ephemeral) store attached.
    #[must_use]
    pub fn new(ctx: ExperimentContext) -> Self {
        let ctx = if ctx.cache.is_some() {
            ctx
        } else {
            let store = std::sync::Arc::new(ResultStore::ephemeral());
            ctx.with_cache(store)
        };
        Self { ctx }
    }

    /// The wrapped context.
    #[must_use]
    pub fn context(&self) -> &ExperimentContext {
        &self.ctx
    }

    fn store(&self) -> &ResultStore {
        self.ctx
            .cache
            .as_deref()
            .expect("daemon always has a store")
    }

    /// Pre-fills the store: the full sweep grid, plus Table 1 and the
    /// stall study at their protocol-default voltages (500 / 575 mV).
    /// `sweep` queries are then hits at every grid point; a `table1` or
    /// `stalls` query at a *non-default* voltage still simulates its
    /// extra configurations once on first request.
    ///
    /// # Errors
    ///
    /// Propagates simulation and cache failures.
    pub fn warm(&self) -> Result<(), ExperimentError> {
        sweep::run_sweep(&self.ctx)?;
        table1::quantitative_rows_at(&self.ctx, Millivolts::new(500).expect("grid voltage"))?;
        stalls::measure(&self.ctx)?;
        Ok(())
    }

    /// Executes `req`, returning the response line (without newline) and
    /// whether the connection should shut the daemon down.
    #[must_use]
    pub fn handle(&self, req: Request) -> (String, bool) {
        match self.respond(req) {
            Ok((body, stop)) => (body, stop),
            Err(e) => (
                json::object(&[
                    ("ok", json::boolean(false)),
                    ("error", json::string(&e.to_string())),
                ]),
                false,
            ),
        }
    }

    /// Parses and executes one raw request line.
    #[must_use]
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        match parse_request(line) {
            Ok(req) => self.handle(req),
            Err(msg) => (
                json::object(&[("ok", json::boolean(false)), ("error", json::string(&msg))]),
                false,
            ),
        }
    }

    fn respond(&self, req: Request) -> Result<(String, bool), ExperimentError> {
        // "Did this request simulate?" == did the store's miss counter
        // move while we served it.
        let misses_before = self.store().stats().misses;
        let cached = |store: &ResultStore| store.stats().misses == misses_before;
        match req {
            Request::Ping => Ok((
                json::object(&[("ok", json::boolean(true)), ("pong", json::boolean(true))]),
                false,
            )),
            Request::Shutdown => Ok((
                json::object(&[
                    ("ok", json::boolean(true)),
                    ("shutdown", json::boolean(true)),
                ]),
                true,
            )),
            Request::Stats => {
                let s = self.store().stats();
                let disk = self.store().disk_entries()?;
                Ok((
                    json::object(&[
                        ("ok", json::boolean(true)),
                        ("suite", json::string(&self.ctx.suite_label)),
                        ("suite_uops", self.ctx.total_uops().to_string()),
                        ("hits", s.hits.to_string()),
                        ("misses", s.misses.to_string()),
                        ("stores", s.stores.to_string()),
                        ("simulated_uops", s.simulated_uops.to_string()),
                        ("disk_entries", disk.to_string()),
                        ("persistent", json::boolean(self.store().dir().is_some())),
                    ]),
                    false,
                ))
            }
            Request::Sweep(Some(vcc)) => {
                let p = point(&self.ctx, vcc)?;
                Ok((
                    json::object(&[
                        ("ok", json::boolean(true)),
                        ("experiment", json::string("sweep")),
                        ("cached", json::boolean(cached(self.store()))),
                        ("point", point_json(&p)),
                    ]),
                    false,
                ))
            }
            Request::Sweep(None) => {
                let points = sweep::run_sweep(&self.ctx)?;
                let rendered: Vec<String> = points.iter().map(point_json).collect();
                Ok((
                    json::object(&[
                        ("ok", json::boolean(true)),
                        ("experiment", json::string("sweep")),
                        ("cached", json::boolean(cached(self.store()))),
                        ("points", json::array(&rendered)),
                    ]),
                    false,
                ))
            }
            Request::Table1(vcc) => {
                let rows = table1::quantitative_rows_at(&self.ctx, vcc)?;
                let rendered: Vec<String> = rows
                    .iter()
                    .map(|r| {
                        json::object(&[
                            ("technique", json::string(&r.technique)),
                            ("frequency_gain", json::number(r.frequency_gain)),
                            ("speedup", json::number(r.speedup)),
                            ("relative_ipc", json::number(r.relative_ipc)),
                            ("area_fraction", json::number(r.area_fraction)),
                            ("energy_factor", json::number(r.energy_factor)),
                            ("hard_to_test", json::boolean(r.hard_to_test)),
                        ])
                    })
                    .collect();
                Ok((
                    json::object(&[
                        ("ok", json::boolean(true)),
                        ("experiment", json::string("table1")),
                        ("vcc_mv", vcc.millivolts().to_string()),
                        ("cached", json::boolean(cached(self.store()))),
                        ("rows", json::array(&rendered)),
                    ]),
                    false,
                ))
            }
            Request::Stalls(vcc) => {
                let r = stalls::measure_at(&self.ctx, vcc)?;
                Ok((
                    json::object(&[
                        ("ok", json::boolean(true)),
                        ("experiment", json::string("stalls")),
                        ("vcc_mv", vcc.millivolts().to_string()),
                        ("cached", json::boolean(cached(self.store()))),
                        ("total_degradation", json::number(r.total_degradation)),
                        ("rf_share", json::number(r.rf_share)),
                        ("iq_share", json::number(r.iq_share)),
                        ("dl0_share", json::number(r.dl0_share)),
                        ("other_share", json::number(r.other_share)),
                        ("delayed_fraction", json::number(r.delayed_fraction)),
                    ]),
                    false,
                ))
            }
        }
    }

    /// Runs the accept loop until a `shutdown` request (or a listener
    /// error). Connections are handled sequentially and fully — the
    /// store keeps popular answers warm, so responses are fast; a
    /// request that does simulate still fans out over the context's
    /// worker threads.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures (per-connection errors only
    /// end that connection).
    pub fn serve(&self, listener: &TcpListener) -> std::io::Result<()> {
        for stream in listener.incoming() {
            let stream = stream?;
            if self.serve_connection(stream) {
                return Ok(());
            }
        }
        Ok(())
    }

    /// Serves one connection to EOF; returns true on a shutdown request.
    fn serve_connection(&self, stream: TcpStream) -> bool {
        // An idle or stalled client must not wedge the daemon forever.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return false,
        };
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let (response, stop) = self.handle_line(&line);
            if writer
                .write_all(response.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush())
                .is_err()
            {
                break;
            }
            if stop {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn daemon() -> Daemon {
        Daemon::new(ExperimentContext::sized(1, 2_000).expect("tiny suite builds"))
    }

    #[test]
    fn parses_the_protocol() {
        assert_eq!(parse_request(r#"{"experiment":"ping"}"#), Ok(Request::Ping));
        assert_eq!(
            parse_request(r#"{"experiment":"sweep"}"#),
            Ok(Request::Sweep(None))
        );
        assert_eq!(
            parse_request(r#"{"experiment":"sweep","vcc":575}"#),
            Ok(Request::Sweep(Some(Millivolts::new(575).unwrap())))
        );
        assert_eq!(
            parse_request(r#"{"experiment":"table1"}"#),
            Ok(Request::Table1(Millivolts::new(500).unwrap()))
        );
        assert_eq!(
            parse_request(r#"{"experiment":"shutdown"}"#),
            Ok(Request::Shutdown)
        );
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"experiment":"lunch"}"#).is_err());
        assert!(parse_request(r#"{"experiment":"sweep","vcc":"high"}"#).is_err());
        assert!(parse_request(r#"{"experiment":"sweep","vcc":12345}"#).is_err());
        assert!(parse_request(r#"{"vcc":500}"#).is_err());
    }

    #[test]
    fn ping_and_malformed_lines_answer_inline() {
        let d = daemon();
        let (resp, stop) = d.handle_line(r#"{"experiment":"ping"}"#);
        assert!(!stop);
        let v = json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));

        let (resp, stop) = d.handle_line("garbage");
        assert!(!stop);
        let v = json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert!(v.get("error").is_some());
    }

    #[test]
    fn sweep_point_misses_then_hits() {
        let d = daemon();
        let vcc = r#"{"experiment":"sweep","vcc":575}"#;
        let (first, _) = d.handle_line(vcc);
        let v = json::parse(&first).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("cached").unwrap().as_bool(), Some(false));
        let p = v.get("point").unwrap();
        assert_eq!(p.get("vcc_mv").unwrap().as_u64(), Some(575));
        assert!(p.get("speedup").unwrap().as_f64().unwrap() > 0.5);

        let (second, _) = d.handle_line(vcc);
        let v2 = json::parse(&second).unwrap();
        assert_eq!(
            v2.get("cached").unwrap().as_bool(),
            Some(true),
            "repeat query must be answered from the store"
        );
        // Identical payload both times — the determinism the cache
        // relies on, observable at the protocol level.
        assert_eq!(v.get("point"), v2.get("point"));
    }

    #[test]
    fn stats_reflect_traffic_and_shutdown_stops() {
        let d = daemon();
        let (_, _) = d.handle_line(r#"{"experiment":"sweep","vcc":500}"#);
        let (resp, _) = d.handle_line(r#"{"experiment":"stats"}"#);
        let v = json::parse(&resp).unwrap();
        assert!(v.get("misses").unwrap().as_u64().unwrap() > 0);
        assert_eq!(v.get("persistent").unwrap().as_bool(), Some(false));

        let (resp, stop) = d.handle_line(r#"{"experiment":"shutdown"}"#);
        assert!(stop);
        let v = json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    }
}
