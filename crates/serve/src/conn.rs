//! Per-connection state machines and the readiness-driven event loop.
//!
//! One thread owns every socket: it blocks in [`crate::reactor::Reactor::wait`]
//! with a timeout equal to the nearest deadline (idle reap, write
//! stall, or shutdown drain), accepts new peers, frames NDJSON request
//! lines out of partial reads, and flushes response bytes under write
//! backpressure — so thousands of idle or slow clients cost zero
//! threads and zero wakeups. Request *compute* never runs on the loop:
//! complete lines are handed to a bounded worker pool (simulating
//! requests additionally fan out over the context's own parallelism),
//! and completions come back over a wake channel. An idle client
//! therefore holds nothing but a buffer; a slow-loris one is cut at the
//! idle/write deadlines without ever pinning a worker.
//!
//! Shutdown is a state, not a sleep: when a handler returns `stop`, the
//! loop deregisters the listener, answers any queued lines with the
//! shutting-down error, and closes each connection as its last response
//! flushes — blocking on readiness with the drain deadline as the epoll
//! timeout (the 5 ms poll busy-wait of the thread-pool loop is gone).
//! At the deadline, whatever is still open is force-closed; a request
//! already inside the engine still runs to completion (simulations have
//! no cancellation point) and publishes its result before the loop's
//! workers are joined.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read as _, Write as _};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use lowvcc_bench::json;
use lowvcc_bench::lockdep::OrderedMutex;

use crate::metrics::{Metrics, Op};
use crate::reactor::{Interest, Reactor, Waker};
use crate::ServeOptions;

/// Longest accepted request line (bytes, newline excluded). A peer that
/// exceeds it is a protocol error, not a memory commitment.
pub const MAX_LINE: usize = 1 << 20;

/// The listener's registration token (`u64::MAX` is the reactor's).
const LISTENER_TOKEN: u64 = u64::MAX - 1;

/// One answered request line: what a [`Service`] hands back to the loop.
#[derive(Debug)]
pub struct Reply {
    /// The response line (no trailing newline).
    pub body: String,
    /// True when this request stops the serve loop (`shutdown`).
    pub stop: bool,
    /// Request class, for the latency histograms.
    pub op: Op,
}

/// What the worker pool runs: one request line in, one [`Reply`] out.
/// Implemented by the shard daemon and the cluster router.
pub trait Service: Sync {
    /// Answers one raw request line. Called on a worker thread; must
    /// not assume any connection state beyond the line itself.
    fn call(&self, line: &str) -> Reply;
}

/// A request line travelling loop → worker.
struct Job {
    conn: u64,
    line: String,
    enqueued: Instant,
}

/// A finished job travelling worker → loop (via the done queue + waker).
struct Done {
    conn: u64,
    outcome: Outcome,
}

enum Outcome {
    Reply(Reply),
    /// Dequeued after shutdown began: answered without computing.
    DrainRefused(String),
    Panicked,
}

/// How one connection ended — every accepted connection lands in
/// exactly one of these, so the counters reconcile against `accepted`.
enum End {
    Completed,
    IdleReaped,
    WriteStalled,
    Error(String),
    ForceClosed,
    Panicked,
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet framed into a line.
    read_buf: Vec<u8>,
    /// Response bytes not yet accepted by the kernel.
    write_buf: Vec<u8>,
    /// How much of `write_buf` is already written.
    cursor: usize,
    /// Complete lines waiting their turn (responses stay in request
    /// order: one job in flight per connection).
    pending: VecDeque<String>,
    in_flight: bool,
    peer_eof: bool,
    /// Worker panicked on this connection's request: close as soon as
    /// observed.
    poisoned: bool,
    /// Last byte received or response queued — the idle-reap clock.
    last_activity: Instant,
    /// Last write progress while output is pending — the stall clock.
    write_since: Option<Instant>,
    interest: Interest,
}

impl Conn {
    fn flushed(&self) -> bool {
        self.cursor == self.write_buf.len()
    }

    /// The instant this connection must be acted on, if any. A
    /// connection waiting on its own compute has no deadline — the
    /// engine has no cancellation point, so there is nothing to cut.
    fn deadline(&self, opts: &ServeOptions) -> Option<(Instant, bool)> {
        if !self.flushed() {
            // `write_since` is set whenever output is pending.
            let since = self.write_since.unwrap_or(self.last_activity);
            Some((since + opts.write_timeout, false))
        } else if !self.in_flight && self.pending.is_empty() {
            Some((self.last_activity + opts.read_timeout, true))
        } else {
            None
        }
    }
}

/// Runs the readiness-driven serve loop over `listener` until a
/// handler returns `stop` (or a listener/reactor error), dispatching
/// request lines to a pool of `opts.threads` workers calling `svc`.
/// Connection outcomes, queue depth and per-op latencies land in
/// `metrics`.
///
/// # Errors
///
/// Propagates reactor setup and listener failures. Per-connection
/// failures only end that connection, counted and logged.
pub fn run<S: Service>(
    svc: &S,
    metrics: &Metrics,
    listener: &TcpListener,
    opts: ServeOptions,
) -> io::Result<()> {
    let opts = opts.clamped();
    listener.set_nonblocking(true)?;
    let reactor = Reactor::new()?;
    reactor.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;

    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let job_rx = OrderedMutex::new("serve.jobs", job_rx);
    let done = OrderedMutex::new("serve.done", Vec::<Done>::new());
    let draining = AtomicBool::new(false);

    std::thread::scope(|s| {
        for _ in 0..opts.threads {
            let job_rx = &job_rx;
            let done = &done;
            let draining = &draining;
            let waker = reactor.waker();
            s.spawn(move || worker(svc, metrics, job_rx, done, draining, waker));
        }
        let result = Loop {
            metrics,
            listener,
            reactor: &reactor,
            opts: &opts,
            job_tx,
            done: &done,
            draining: &draining,
            conns: HashMap::new(),
            next_id: 0,
            drain_at: None,
            listener_armed: true,
        }
        .run();
        // `job_tx` was owned by the loop and is gone: workers drain the
        // queued jobs (refusing them — `draining` is set on every exit
        // path) and exit on channel close; the scope joins them. A
        // simulation already in the engine completes and publishes.
        draining.store(true, Ordering::SeqCst);
        result
    })
}

/// One pool worker: dequeue lines until the channel closes. A panicking
/// handler is caught and reported — the worker (and the daemon)
/// survive it.
fn worker<S: Service>(
    svc: &S,
    metrics: &Metrics,
    job_rx: &OrderedMutex<mpsc::Receiver<Job>>,
    done: &OrderedMutex<Vec<Done>>,
    draining: &AtomicBool,
    waker: Waker,
) {
    loop {
        let next = job_rx.lock().recv();
        let Ok(job) = next else { break };
        let outcome = if draining.load(Ordering::SeqCst) {
            Outcome::DrainRefused(error_line("daemon is shutting down", false))
        } else {
            match catch_unwind(AssertUnwindSafe(|| svc.call(&job.line))) {
                Ok(reply) => {
                    metrics.record(reply.op, job.enqueued.elapsed());
                    Outcome::Reply(reply)
                }
                Err(_) => Outcome::Panicked,
            }
        };
        metrics.job_done();
        done.lock().push(Done {
            conn: job.conn,
            outcome,
        });
        waker.wake();
    }
}

/// Renders the protocol error line `{"ok": false, "error": …}` (with
/// `"busy": true` for accept-gate refusals).
fn error_line(error: &str, busy: bool) -> String {
    let mut fields = vec![("ok", json::boolean(false)), ("error", json::string(error))];
    if busy {
        fields.push(("busy", json::boolean(true)));
    }
    json::object(&fields)
}

/// The event loop's state, method-ized so the phases stay readable.
struct Loop<'a> {
    metrics: &'a Metrics,
    listener: &'a TcpListener,
    reactor: &'a Reactor,
    opts: &'a ServeOptions,
    job_tx: mpsc::Sender<Job>,
    done: &'a OrderedMutex<Vec<Done>>,
    draining: &'a AtomicBool,
    conns: HashMap<u64, Conn>,
    next_id: u64,
    drain_at: Option<Instant>,
    listener_armed: bool,
}

impl Loop<'_> {
    fn run(mut self) -> io::Result<()> {
        let mut events = Vec::new();
        loop {
            if self.drain_at.is_some() && self.conns.is_empty() {
                return Ok(());
            }
            let timeout = self.next_timeout();
            self.reactor.wait(&mut events, timeout)?;

            for d in std::mem::take(&mut *self.done.lock()) {
                self.apply_completion(d);
            }
            for ev in &events {
                if ev.token == LISTENER_TOKEN {
                    self.accept_ready()?;
                } else {
                    self.conn_ready(ev.token, ev.readable, ev.writable);
                }
            }
            self.reap_deadlines();
            self.sweep_closable();
        }
    }

    /// The nearest deadline across every connection plus the drain
    /// deadline, as an epoll timeout. `None` = block until an event or
    /// a worker wake — there is nothing to time out.
    fn next_timeout(&self) -> Option<Duration> {
        let mut nearest: Option<Instant> = self.drain_at;
        for conn in self.conns.values() {
            if let Some((at, _)) = conn.deadline(self.opts) {
                nearest = Some(nearest.map_or(at, |n| n.min(at)));
            }
        }
        nearest.map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// Accepts until the listener would block; gates on
    /// `max_connections` with the typed busy refusal.
    fn accept_ready(&mut self) -> io::Result<()> {
        if !self.listener_armed {
            return Ok(());
        }
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _peer)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if self.conns.len() >= self.opts.max_connections {
                self.metrics.refused_busy.fetch_add(1, Ordering::Relaxed);
                refuse(
                    &stream,
                    &error_line(
                        &format!(
                            "busy: {} connections already in flight, retry later",
                            self.opts.max_connections
                        ),
                        true,
                    ),
                );
                continue;
            }
            self.metrics.accepted.fetch_add(1, Ordering::Relaxed);
            self.next_id += 1;
            let id = self.next_id;
            // Accepted sockets do not inherit the listener's
            // nonblocking mode on Linux; an fcntl failure here is a
            // counted connection error, never silently swallowed.
            if let Err(e) = stream.set_nonblocking(true) {
                self.count_end(id, &End::Error(format!("cannot set nonblocking: {e}")));
                continue;
            }
            if let Err(e) = self
                .reactor
                .register(stream.as_raw_fd(), id, Interest::READ)
            {
                self.count_end(id, &End::Error(format!("cannot register socket: {e}")));
                continue;
            }
            self.conns.insert(
                id,
                Conn {
                    stream,
                    read_buf: Vec::new(),
                    write_buf: Vec::new(),
                    cursor: 0,
                    pending: VecDeque::new(),
                    in_flight: false,
                    peer_eof: false,
                    poisoned: false,
                    last_activity: Instant::now(),
                    write_since: None,
                    interest: Interest::READ,
                },
            );
        }
    }

    /// Advances one connection's state machine on a readiness event.
    fn conn_ready(&mut self, id: u64, readable: bool, writable: bool) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return; // closed earlier this iteration
        };
        if writable && !conn.flushed() {
            if let Err(end) = flush(conn) {
                self.close(id, &end);
                return;
            }
        }
        if readable && !conn.peer_eof {
            if let Err(end) = self.read_lines(id) {
                self.close(id, &end);
                return;
            }
        }
        self.pump(id);
    }

    /// Reads until the socket would block, framing complete lines into
    /// the connection's pending queue (or refusing them during drain).
    fn read_lines(&mut self, id: u64) -> Result<(), End> {
        let draining = self.drain_at.is_some();
        let Some(conn) = self.conns.get_mut(&id) else {
            return Ok(());
        };
        let mut scratch = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    conn.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&scratch[..n]);
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(End::Error(format!("read: {e}"))),
            }
        }
        let mut refused = 0u64;
        while let Some(pos) = conn.read_buf.iter().position(|&b| b == b'\n') {
            let raw: Vec<u8> = conn.read_buf.drain(..=pos).collect();
            let line = match std::str::from_utf8(&raw[..pos]) {
                Ok(s) => s.trim(),
                Err(_) => return Err(End::Error("request line is not valid UTF-8".into())),
            };
            if line.is_empty() {
                continue;
            }
            if draining {
                refused += 1;
                queue_response(conn, &error_line("daemon is shutting down", false));
            } else {
                conn.pending.push_back(line.to_string());
            }
        }
        self.metrics
            .drain_refused
            .fetch_add(refused, Ordering::Relaxed);
        if conn.read_buf.len() > MAX_LINE {
            return Err(End::Error(format!(
                "request line exceeds {MAX_LINE} bytes without a newline"
            )));
        }
        Ok(())
    }

    /// Dispatches the next pending line (one in flight per connection,
    /// so responses stay in request order), flushes, closes if done.
    fn pump(&mut self, id: u64) {
        let draining = self.drain_at.is_some();
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if !draining && !conn.in_flight {
            if let Some(line) = conn.pending.pop_front() {
                conn.in_flight = true;
                self.metrics.job_enqueued();
                if self
                    .job_tx
                    .send(Job {
                        conn: id,
                        line,
                        enqueued: Instant::now(),
                    })
                    .is_err()
                {
                    // Unreachable while the pool lives (panics are
                    // caught); classified rather than ignored anyway.
                    self.metrics.job_done();
                    self.close(id, &End::Error("no worker available".into()));
                    return;
                }
            }
        }
        self.flush_and_update(id);
    }

    /// Applies one worker completion: queue the response bytes, start
    /// the drain on `stop`, move on to the connection's next line.
    fn apply_completion(&mut self, d: Done) {
        let mut stop = false;
        if let Some(conn) = self.conns.get_mut(&d.conn) {
            match d.outcome {
                Outcome::Reply(reply) => {
                    conn.in_flight = false;
                    queue_response(conn, &reply.body);
                    stop = reply.stop;
                }
                Outcome::DrainRefused(body) => {
                    conn.in_flight = false;
                    self.metrics.drain_refused.fetch_add(1, Ordering::Relaxed);
                    queue_response(conn, &body);
                }
                Outcome::Panicked => {
                    conn.in_flight = false;
                    conn.poisoned = true;
                }
            }
        }
        // else: force-closed while its job ran; the reply is dropped.
        if stop && self.drain_at.is_none() {
            self.begin_drain();
        }
        if let Some(conn) = self.conns.get(&d.conn) {
            if conn.poisoned {
                self.close(d.conn, &End::Panicked);
                return;
            }
        }
        self.pump(d.conn);
    }

    /// Enters the drain state: stop accepting, refuse queued lines,
    /// and let the deadline (as the epoll timeout — no polling) bound
    /// how long still-open peers are waited on.
    fn begin_drain(&mut self) {
        self.draining.store(true, Ordering::SeqCst);
        self.drain_at = Some(Instant::now() + self.opts.drain_deadline);
        if self.listener_armed {
            self.reactor.deregister(self.listener.as_raw_fd());
            self.listener_armed = false;
        }
        let mut refused = 0u64;
        for conn in self.conns.values_mut() {
            let dropped = conn.pending.len() as u64;
            refused += dropped;
            conn.pending.clear();
            for _ in 0..dropped {
                queue_response(conn, &error_line("daemon is shutting down", false));
            }
        }
        self.metrics
            .drain_refused
            .fetch_add(refused, Ordering::Relaxed);
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            self.flush_and_update(id);
        }
    }

    /// Flushes what the kernel will take, fixes the interest set, and
    /// closes the connection once nothing remains to do for it.
    fn flush_and_update(&mut self, id: u64) {
        let draining = self.drain_at.is_some();
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if !conn.flushed() {
            if let Err(end) = flush(conn) {
                self.close(id, &end);
                return;
            }
        }
        let want = if conn.flushed() {
            Interest::READ
        } else {
            Interest::READ_WRITE
        };
        if want != conn.interest {
            conn.interest = want;
            if let Err(e) = self.reactor.modify(conn.stream.as_raw_fd(), id, want) {
                self.close(id, &End::Error(format!("cannot update interest: {e}")));
                return;
            }
        }
        let idle = conn.flushed() && !conn.in_flight && conn.pending.is_empty();
        if idle && conn.peer_eof {
            self.close(id, &End::Completed);
        } else if idle && draining {
            // Nothing outstanding and the daemon is stopping: cut the
            // still-connected peer loose now rather than at the
            // deadline.
            self.close(id, &End::ForceClosed);
        }
    }

    /// Closes every connection whose idle/stall deadline has passed,
    /// and everything still open once the drain deadline passes.
    fn reap_deadlines(&mut self) {
        let now = Instant::now();
        let mut due: Vec<(u64, End)> = Vec::new();
        for (&id, conn) in &self.conns {
            if let Some((at, idle)) = conn.deadline(self.opts) {
                if now >= at {
                    due.push((
                        id,
                        if idle {
                            End::IdleReaped
                        } else {
                            End::WriteStalled
                        },
                    ));
                }
            }
        }
        for (id, end) in due {
            self.close(id, &end);
        }
        if self.drain_at.is_some_and(|at| now >= at) {
            let ids: Vec<u64> = self.conns.keys().copied().collect();
            for id in ids {
                self.close(id, &End::ForceClosed);
            }
        }
    }

    /// Closes connections whose terminal condition was reached via a
    /// completion or drain transition outside an I/O event.
    fn sweep_closable(&mut self) {
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            self.flush_and_update(id);
        }
    }

    /// Tears one connection down and tallies its end.
    fn close(&mut self, id: u64, end: &End) {
        if let Some(conn) = self.conns.remove(&id) {
            self.reactor.deregister(conn.stream.as_raw_fd());
            let _ = conn.stream.shutdown(Shutdown::Both);
            self.count_end(id, end);
        }
    }

    /// Tallies (and logs) one connection outcome. Every accepted
    /// connection reaches this exactly once.
    fn count_end(&self, id: u64, end: &End) {
        let m = self.metrics;
        match end {
            End::Completed => {
                m.completed.fetch_add(1, Ordering::Relaxed);
            }
            End::IdleReaped => {
                m.timeouts.fetch_add(1, Ordering::Relaxed);
                m.idle_reaped.fetch_add(1, Ordering::Relaxed);
                // lint: allow(no-print) -- operator-facing daemon log; also counted in stats
                eprintln!("lowvcc-serve: connection {id}: timed out waiting on the peer");
            }
            End::WriteStalled => {
                m.timeouts.fetch_add(1, Ordering::Relaxed);
                // lint: allow(no-print) -- operator-facing daemon log; also counted in stats
                eprintln!("lowvcc-serve: connection {id}: peer stopped draining its response");
            }
            End::Error(what) => {
                m.connection_errors.fetch_add(1, Ordering::Relaxed);
                // lint: allow(no-print) -- operator-facing daemon log; also counted in stats
                eprintln!("lowvcc-serve: connection {id}: {what}");
            }
            End::ForceClosed => {
                m.force_closed.fetch_add(1, Ordering::Relaxed);
                // lint: allow(no-print) -- operator-facing daemon log; also counted in stats
                eprintln!("lowvcc-serve: connection {id}: closed by the shutdown drain");
            }
            End::Panicked => {
                m.worker_panics.fetch_add(1, Ordering::Relaxed);
                // lint: allow(no-print) -- operator-facing daemon log; also counted in stats
                eprintln!("lowvcc-serve: connection {id}: handler panicked (worker recovered)");
            }
        }
    }
}

/// Appends one response line to the connection's output and restarts
/// its activity clocks.
fn queue_response(conn: &mut Conn, body: &str) {
    if conn.flushed() {
        // Reclaim the fully-written prefix before growing the buffer.
        conn.write_buf.clear();
        conn.cursor = 0;
    }
    conn.write_buf.extend_from_slice(body.as_bytes());
    conn.write_buf.push(b'\n');
    let now = Instant::now();
    conn.last_activity = now;
    if conn.write_since.is_none() {
        conn.write_since = Some(now);
    }
}

/// Writes as much pending output as the kernel will take. Progress
/// restarts the write-stall clock; a fully drained buffer clears it.
fn flush(conn: &mut Conn) -> Result<(), End> {
    while conn.cursor < conn.write_buf.len() {
        match conn.stream.write(&conn.write_buf[conn.cursor..]) {
            Ok(0) => return Err(End::Error("write returned zero bytes".into())),
            Ok(n) => {
                conn.cursor += n;
                conn.write_since = Some(Instant::now());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) if conn.peer_eof => {
                // The peer closed first; failing to deliver the tail of
                // a response it will never read is a completed session,
                // not an error.
                conn.write_buf.clear();
                conn.cursor = 0;
                break;
            }
            Err(e) => return Err(End::Error(format!("write: {e}"))),
        }
    }
    if conn.flushed() {
        conn.write_buf.clear();
        conn.cursor = 0;
        conn.write_since = None;
    }
    Ok(())
}

/// Best-effort, nonblocking refusal at the accept gate: write the
/// error line if the fresh socket buffer takes it, then close. Must
/// never be able to wedge the event loop on a slow client.
fn refuse(stream: &TcpStream, line: &str) {
    let _ = stream.set_nonblocking(true);
    let mut payload = Vec::with_capacity(line.len() + 1);
    payload.extend_from_slice(line.as_bytes());
    payload.push(b'\n');
    let mut w = stream;
    let _ = w.write(&payload);
    let _ = stream.shutdown(Shutdown::Both);
}
