//! The `lowvcc-serve` binary: bind, optionally pre-fill, serve.
//!
//! ```text
//! lowvcc-serve [--suite quick|standard|paper|NxLEN] [--cache DIR]
//!              [--jobs N] [--threads N] [--max-connections N]
//!              [--addr HOST:PORT] [--warm]
//! ```
//!
//! Defaults: quick suite, in-memory store, all hardware threads for
//! simulation (`--jobs`), `max(4, hardware threads)` connection workers
//! (`--threads`), 64 in-flight connections (`--max-connections`),
//! `127.0.0.1:0` (ephemeral port). The bound address is announced on
//! stdout as `lowvcc-serve listening on HOST:PORT` so harnesses can
//! scrape the port. Excess clients beyond the connection cap receive
//! the typed `{"ok": false, "error": "busy: …", "busy": true}` refusal
//! instead of queueing unboundedly. `--warm` runs the full sweep grid
//! plus Table 1 and the stall study at their default voltages once
//! before accepting, so sweep queries (and default-voltage
//! table1/stalls queries) are cache hits from the first request;
//! non-default table1/stalls voltages simulate once on demand.
//! `--cache DIR` shares the store with `experiments --cache DIR` —
//! either can warm it for the other.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use lowvcc_bench::{ResultStore, SuiteChoice};
use lowvcc_core::Parallelism;
use lowvcc_serve::{Daemon, ServeOptions};

const USAGE: &str = "usage: lowvcc-serve [--suite quick|standard|paper|NxLEN] [--cache DIR] \
                     [--jobs N] [--threads N] [--max-connections N] [--addr HOST:PORT] [--warm]";

struct Options {
    suite: String,
    cache: Option<PathBuf>,
    jobs: usize,
    serve: ServeOptions,
    addr: String,
    warm: bool,
    help: bool,
}

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Options, String> {
    let mut o = Options {
        suite: "quick".to_string(),
        cache: None,
        jobs: Parallelism::available().count(),
        serve: ServeOptions::default(),
        addr: "127.0.0.1:0".to_string(),
        warm: false,
        help: false,
    };
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--suite" => match args.next() {
                Some(v) => o.suite = v,
                None => return Err("--suite needs a value".into()),
            },
            "--cache" => match args.next() {
                Some(v) => o.cache = Some(PathBuf::from(v)),
                None => return Err("--cache needs a value".into()),
            },
            "--addr" => match args.next() {
                Some(v) => o.addr = v,
                None => return Err("--addr needs a value".into()),
            },
            "--jobs" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => o.jobs = n,
                Some(_) => return Err("--jobs needs a positive integer".into()),
                None => return Err("--jobs needs a value".into()),
            },
            "--threads" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => o.serve.threads = n,
                Some(_) => return Err("--threads needs a positive integer".into()),
                None => return Err("--threads needs a value".into()),
            },
            "--max-connections" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => o.serve.max_connections = n,
                Some(_) => return Err("--max-connections needs a positive integer".into()),
                None => return Err("--max-connections needs a value".into()),
            },
            "--warm" => o.warm = true,
            "--help" | "-h" => o.help = true,
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    Ok(o)
}

fn run() -> Result<(), String> {
    let opts = parse_args(std::env::args().skip(1))?;
    if opts.help {
        println!("{USAGE}");
        return Ok(());
    }
    // Same grammar and degenerate-input rejections as `experiments`.
    let mut ctx = SuiteChoice::parse(&opts.suite)
        .map_err(|e| e.to_string())?
        .build()
        .map_err(|e| e.to_string())?
        .with_parallelism(Parallelism::threads(opts.jobs));
    if let Some(dir) = &opts.cache {
        let store = ResultStore::open(dir).map_err(|e| e.to_string())?;
        ctx = ctx.with_cache(Arc::new(store));
    }
    let daemon = Daemon::new(ctx);
    if opts.warm {
        eprintln!("warming the store (full sweep grid + Table 1 + stall study)…");
        daemon.warm().map_err(|e| e.to_string())?;
        eprintln!("store warm");
    }
    let listener =
        TcpListener::bind(&opts.addr).map_err(|e| format!("cannot bind {}: {e}", opts.addr))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("no local address: {e}"))?;
    println!("lowvcc-serve listening on {local}");
    eprintln!(
        "suite {} ({} uops), store {}, {} jobs, {} workers (max {} connections); \
         send {{\"experiment\":\"shutdown\"}} to stop",
        daemon.context().suite_label,
        daemon.context().total_uops(),
        daemon
            .context()
            .cache
            .as_ref()
            .and_then(|s| s.dir())
            .map_or_else(|| "in-memory".to_string(), |d| d.display().to_string()),
        opts.jobs,
        opts.serve.threads,
        opts.serve.max_connections,
    );
    daemon
        .serve_with(&listener, opts.serve)
        .map_err(|e| e.to_string())?;
    eprintln!("shutdown requested; exiting cleanly");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
