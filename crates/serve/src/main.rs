//! The `lowvcc-serve` binary: bind, optionally pre-fill, serve — as a
//! single daemon, an in-process sharded cluster, one shard of a manual
//! cluster, or a standalone router.
//!
//! ```text
//! lowvcc-serve [--suite quick|standard|paper|NxLEN] [--cache DIR]
//!              [--jobs N] [--threads N] [--max-connections N]
//!              [--addr HOST:PORT] [--warm] [--warm-bundle FILE]
//!              [--shards N] [--ring-seed S]
//!              [--shard-index I --shard-count N] [--peers HOST:PORT,...]
//!              [--route HOST:PORT,HOST:PORT,...] [--local-fallback]
//! ```
//!
//! Defaults: quick suite, in-memory store, all hardware threads for
//! simulation (`--jobs`), `max(4, hardware threads)` connection workers
//! (`--threads`), 64 in-flight connections (`--max-connections`),
//! `127.0.0.1:0` (ephemeral port). The bound address is announced on
//! stdout as `lowvcc-serve listening on HOST:PORT` so harnesses can
//! scrape the port. Excess clients beyond the connection cap receive
//! the typed `{"ok": false, "error": "busy: …", "busy": true}` refusal
//! instead of queueing unboundedly. `--warm` runs the full sweep grid
//! plus Table 1 and the stall study at their default voltages once
//! before accepting, so sweep queries (and default-voltage
//! table1/stalls queries) are cache hits from the first request;
//! non-default table1/stalls voltages simulate once on demand.
//! `--cache DIR` shares the store with `experiments --cache DIR` —
//! either can warm it for the other.
//!
//! ## Cluster modes
//!
//! `--shards N` starts N shard daemons plus a router in one process:
//! the router binds `--addr` and is announced on **stdout** as
//! `lowvcc-serve router listening on HOST:PORT`; each shard binds an
//! ephemeral port announced on **stderr** (`lowvcc-serve shard I
//! listening on HOST:PORT`) — harnesses scrape stdout and always get
//! the front door. All shards share `--cache DIR` safely: each only
//! publishes the key slice the deterministic ring (seeded by
//! `--ring-seed`) assigns to it. With `--warm`, each shard pre-fills
//! exactly its own slice.
//!
//! `--shard-index I --shard-count N` runs one such shard standalone
//! (for multi-process clusters); `--route a,b,c` runs the router alone
//! over already-running shards, which must have been started with the
//! same suite, shard count and ring seed.
//!
//! ## Resilience flags
//!
//! `--warm-bundle FILE` imports an LVCB warm-cache bundle (produced by
//! `lowvcc-store export`) into the store before serving — every shard
//! of a cluster imports it, so a freshly provisioned fleet answers
//! warm from the first request. `--peers a,b,c` (standalone shard mode
//! only, index-aligned with the ring, length = `--shard-count`) turns
//! on read-through peer replication: a key missing locally is fetched
//! from its ring owner before being simulated. `--local-fallback`
//! (router mode only) builds a local simulation context so the router
//! can answer voltage-routed requests itself when every shard is
//! unreachable; the in-process `--shards N` cluster always has one.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use lowvcc_bench::{ResultStore, SuiteChoice};
use lowvcc_core::{CoreConfig, Parallelism};
use lowvcc_serve::router::{start_cluster, ClusterOptions, Router};
use lowvcc_serve::shard::{read_through, Ring, DEFAULT_RING_SEED, PEER_FETCH_TIMEOUT};
use lowvcc_serve::{Daemon, ServeOptions};
use lowvcc_sram::CycleTimeModel;

const USAGE: &str = "usage: lowvcc-serve [--suite quick|standard|paper|NxLEN] [--cache DIR] \
                     [--jobs N] [--threads N] [--max-connections N] [--addr HOST:PORT] [--warm] \
                     [--warm-bundle FILE] [--shards N] [--ring-seed S] \
                     [--shard-index I --shard-count N] [--peers HOST:PORT,...] \
                     [--route HOST:PORT,...] [--local-fallback]";

struct Options {
    suite: String,
    cache: Option<PathBuf>,
    jobs: usize,
    serve: ServeOptions,
    addr: String,
    warm: bool,
    warm_bundle: Option<PathBuf>,
    shards: Option<u32>,
    shard_index: Option<u32>,
    shard_count: Option<u32>,
    peers: Option<String>,
    route: Option<String>,
    local_fallback: bool,
    ring_seed: u64,
    help: bool,
}

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Options, String> {
    let mut o = Options {
        suite: "quick".to_string(),
        cache: None,
        jobs: Parallelism::available().count(),
        serve: ServeOptions::default(),
        addr: "127.0.0.1:0".to_string(),
        warm: false,
        warm_bundle: None,
        shards: None,
        shard_index: None,
        shard_count: None,
        peers: None,
        route: None,
        local_fallback: false,
        ring_seed: DEFAULT_RING_SEED,
        help: false,
    };
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--suite" => match args.next() {
                Some(v) => o.suite = v,
                None => return Err("--suite needs a value".into()),
            },
            "--cache" => match args.next() {
                Some(v) => o.cache = Some(PathBuf::from(v)),
                None => return Err("--cache needs a value".into()),
            },
            "--addr" => match args.next() {
                Some(v) => o.addr = v,
                None => return Err("--addr needs a value".into()),
            },
            "--route" => match args.next() {
                Some(v) => o.route = Some(v),
                None => return Err("--route needs a comma-separated address list".into()),
            },
            "--peers" => match args.next() {
                Some(v) => o.peers = Some(v),
                None => return Err("--peers needs a comma-separated address list".into()),
            },
            "--warm-bundle" => match args.next() {
                Some(v) => o.warm_bundle = Some(PathBuf::from(v)),
                None => return Err("--warm-bundle needs a file path".into()),
            },
            "--jobs" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => o.jobs = n,
                Some(_) => return Err("--jobs needs a positive integer".into()),
                None => return Err("--jobs needs a value".into()),
            },
            "--threads" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => o.serve.threads = n,
                Some(_) => return Err("--threads needs a positive integer".into()),
                None => return Err("--threads needs a value".into()),
            },
            "--max-connections" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => o.serve.max_connections = n,
                Some(_) => return Err("--max-connections needs a positive integer".into()),
                None => return Err("--max-connections needs a value".into()),
            },
            "--shards" => match args.next().map(|v| v.parse::<u32>()) {
                Some(Ok(n)) if n > 0 => o.shards = Some(n),
                Some(_) => return Err("--shards needs a positive integer".into()),
                None => return Err("--shards needs a value".into()),
            },
            "--shard-index" => match args.next().map(|v| v.parse::<u32>()) {
                Some(Ok(n)) => o.shard_index = Some(n),
                Some(Err(_)) => return Err("--shard-index needs an integer".into()),
                None => return Err("--shard-index needs a value".into()),
            },
            "--shard-count" => match args.next().map(|v| v.parse::<u32>()) {
                Some(Ok(n)) if n > 0 => o.shard_count = Some(n),
                Some(_) => return Err("--shard-count needs a positive integer".into()),
                None => return Err("--shard-count needs a value".into()),
            },
            "--ring-seed" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(s)) => o.ring_seed = s,
                Some(Err(_)) => return Err("--ring-seed needs an unsigned integer".into()),
                None => return Err("--ring-seed needs a value".into()),
            },
            "--warm" => o.warm = true,
            "--local-fallback" => o.local_fallback = true,
            "--help" | "-h" => o.help = true,
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    let modes = [
        o.shards.is_some(),
        o.shard_index.is_some() || o.shard_count.is_some(),
        o.route.is_some(),
    ];
    if modes.iter().filter(|&&m| m).count() > 1 {
        return Err(
            "--shards, --shard-index/--shard-count and --route are mutually exclusive".into(),
        );
    }
    if o.shard_index.is_some() != o.shard_count.is_some() {
        return Err("--shard-index and --shard-count must be given together".into());
    }
    if let (Some(i), Some(n)) = (o.shard_index, o.shard_count) {
        if i >= n {
            return Err(format!(
                "--shard-index {i} out of range for --shard-count {n}"
            ));
        }
    }
    if o.peers.is_some() && o.shard_index.is_none() {
        return Err("--peers only applies to --shard-index/--shard-count mode".into());
    }
    if o.local_fallback && o.route.is_none() {
        return Err("--local-fallback only applies to --route mode".into());
    }
    if o.warm_bundle.is_some() && o.route.is_some() {
        return Err("--warm-bundle does not apply to --route (the router owns no store)".into());
    }
    Ok(o)
}

/// `--shards N`: in-process cluster — N shard daemons plus the router.
fn run_cluster(opts: &Options, shards: u32) -> Result<(), String> {
    let choice = SuiteChoice::parse(&opts.suite).map_err(|e| e.to_string())?;
    let cluster = start_cluster(
        choice,
        &ClusterOptions {
            shards,
            seed: opts.ring_seed,
            jobs: opts.jobs,
            cache: opts.cache.clone(),
            warm: opts.warm,
            warm_bundle: opts.warm_bundle.clone(),
            serve: opts.serve,
            router_addr: opts.addr.clone(),
        },
    )
    .map_err(|e| e.to_string())?;
    for (i, addr) in cluster.shard_addrs().iter().enumerate() {
        eprintln!("lowvcc-serve shard {i} listening on {addr}");
    }
    // stdout carries only the front door, so port-scraping harnesses
    // cannot pick up a shard by mistake.
    println!("lowvcc-serve router listening on {}", cluster.router_addr());
    eprintln!(
        "cluster of {shards} shards (ring seed {}), {} jobs each; \
         send {{\"experiment\":\"shutdown\"}} to the router to stop",
        opts.ring_seed, opts.jobs,
    );
    cluster.join().map_err(|e| e.to_string())?;
    eprintln!("shutdown requested; cluster exited cleanly");
    Ok(())
}

/// `--route a,b,c`: standalone router over already-running shards.
fn run_router(opts: &Options, route: &str) -> Result<(), String> {
    let shards: Vec<String> = route
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(ToString::to_string)
        .collect();
    if shards.is_empty() {
        return Err("--route needs at least one shard address".into());
    }
    // Only the spec identities are needed — no traces are generated
    // (unless `--local-fallback` asks for a last-resort simulator).
    let choice = SuiteChoice::parse(&opts.suite).map_err(|e| e.to_string())?;
    let specs = choice.specs();
    let ring = Ring::new(shards.len() as u32, opts.ring_seed);
    let shard_count = shards.len();
    let mut router = Router::new(
        shards,
        ring,
        CoreConfig::silverthorne(),
        CycleTimeModel::silverthorne_45nm(),
        specs[0],
    );
    if opts.local_fallback {
        eprintln!("building the local fallback context…");
        let ctx = choice
            .build()
            .map_err(|e| e.to_string())?
            .with_parallelism(Parallelism::threads(opts.jobs));
        let store = match &opts.cache {
            Some(dir) => ResultStore::open(dir).map_err(|e| e.to_string())?,
            None => ResultStore::ephemeral(),
        };
        // Read-only against a shared cache: the shards own every slice.
        let store = store.with_key_owner(Arc::new(|_| false));
        router = router.with_local_fallback(Daemon::new(ctx.with_cache(Arc::new(store))));
    }
    let listener =
        TcpListener::bind(&opts.addr).map_err(|e| format!("cannot bind {}: {e}", opts.addr))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("no local address: {e}"))?;
    println!("lowvcc-serve router listening on {local}");
    eprintln!(
        "routing over {shard_count} shards (ring seed {}); \
         send {{\"experiment\":\"shutdown\"}} to stop the whole cluster",
        opts.ring_seed,
    );
    router
        .serve_with(&listener, opts.serve)
        .map_err(|e| e.to_string())?;
    eprintln!("shutdown requested; exiting cleanly");
    Ok(())
}

/// Default mode (and `--shard-index I --shard-count N`): one daemon.
fn run_daemon(opts: &Options) -> Result<(), String> {
    // Same grammar and degenerate-input rejections as `experiments`.
    let mut ctx = SuiteChoice::parse(&opts.suite)
        .map_err(|e| e.to_string())?
        .build()
        .map_err(|e| e.to_string())?
        .with_parallelism(Parallelism::threads(opts.jobs));
    let shard = opts
        .shard_index
        .zip(opts.shard_count)
        .map(|(i, n)| (i, Ring::new(n, opts.ring_seed)));
    let mut store = match &opts.cache {
        Some(dir) => ResultStore::open(dir).map_err(|e| e.to_string())?,
        None => ResultStore::ephemeral(),
    };
    if let Some((index, ring)) = shard {
        store = store.with_key_owner(Arc::new(move |key| ring.owns(index, key)));
        if let Some(peers) = &opts.peers {
            let list: Vec<String> = peers
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(ToString::to_string)
                .collect();
            if list.len() as u32 != ring.shards() {
                return Err(format!(
                    "--peers lists {} addresses but --shard-count is {}",
                    list.len(),
                    ring.shards()
                ));
            }
            store = store.with_remote_fetch(read_through(ring, index, list, PEER_FETCH_TIMEOUT));
        }
    }
    if let Some(bundle) = &opts.warm_bundle {
        let report = store.import_bundle(bundle).map_err(|e| e.to_string())?;
        eprintln!(
            "warm bundle {}: {} imported, {} already present, {} quarantined",
            bundle.display(),
            report.imported,
            report.already_present,
            report.quarantined
        );
    }
    ctx = ctx.with_cache(Arc::new(store));
    let mut daemon = Daemon::new(ctx);
    if let Some((index, ring)) = shard {
        daemon = daemon.with_shard(index, ring.shards());
    }
    if opts.warm {
        match shard {
            Some((index, ring)) => {
                eprintln!("warming this shard's slice of the sweep grid…");
                daemon.warm_slice(&ring, index).map_err(|e| e.to_string())?;
            }
            None => {
                eprintln!("warming the store (full sweep grid + Table 1 + stall study)…");
                daemon.warm().map_err(|e| e.to_string())?;
            }
        }
        eprintln!("store warm");
    }
    let listener =
        TcpListener::bind(&opts.addr).map_err(|e| format!("cannot bind {}: {e}", opts.addr))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("no local address: {e}"))?;
    println!("lowvcc-serve listening on {local}");
    eprintln!(
        "suite {} ({} uops), store {}, {} jobs, {} workers (max {} connections); \
         send {{\"experiment\":\"shutdown\"}} to stop",
        daemon.context().suite_label,
        daemon.context().total_uops(),
        daemon
            .context()
            .cache
            .as_ref()
            .and_then(|s| s.dir())
            .map_or_else(|| "in-memory".to_string(), |d| d.display().to_string()),
        opts.jobs,
        opts.serve.threads,
        opts.serve.max_connections,
    );
    daemon
        .serve_with(&listener, opts.serve)
        .map_err(|e| e.to_string())?;
    eprintln!("shutdown requested; exiting cleanly");
    Ok(())
}

fn run() -> Result<(), String> {
    let opts = parse_args(std::env::args().skip(1))?;
    if opts.help {
        println!("{USAGE}");
        return Ok(());
    }
    if let Some(shards) = opts.shards {
        run_cluster(&opts, shards)
    } else if let Some(route) = opts.route.clone() {
        run_router(&opts, &route)
    } else {
        run_daemon(&opts)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
