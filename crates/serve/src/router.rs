//! The cluster front door: a request router over N shard daemons.
//!
//! A [`Router`] speaks the same NDJSON protocol as a single
//! [`Daemon`] and is served by the same readiness-driven loop
//! ([`crate::conn::run`]). It owns no simulator and no store — it
//! classifies each request, forwards it **verbatim** to the shard the
//! consistent-hash [`Ring`] assigns, and relays the shard's response
//! bytes unchanged. Full-grid sweeps are the one request that spans
//! shards: the router fans the 13 voltages out to their owners in
//! parallel, then merges the returned points back into grid order
//! through the canonical JSON renderer — producing a response
//! **byte-identical** to a single-process daemon's (`json::render` is
//! the emitters' own canonical form, and `f64` round-trips exactly).
//!
//! ## Resilience
//!
//! Every relay goes through a per-shard **circuit breaker**. A closed
//! breaker relays normally, retrying transport failures under the
//! store's own [`RetryPolicy`] discipline (bounded exponential backoff
//! with deterministic jitter). [`BREAKER_STRIKES`] consecutive failures
//! open the breaker: further requests are refused instantly instead of
//! burning a connect timeout each. After [`DEFAULT_PROBE_AFTER`] the
//! next request becomes the **half-open probe** — exactly one, by
//! compare-and-swap — and its outcome either closes the breaker
//! (recovery) or re-opens it with a fresh cooldown.
//!
//! A request whose owning shard is down **fails over** around the
//! ring: the next owner simulates the point itself (its read-through
//! peer hook cannot reach the dead owner, so it recomputes — results
//! are deterministic, so the bytes match). If *every* shard is
//! unreachable the router falls back to its own local [`Daemon`]
//! (see [`Router::with_local_fallback`]), which renders through the
//! same emitters and therefore stays byte-identical. Only `shutdown`
//! bypasses the breakers: a restarted shard whose breaker has not yet
//! re-closed must still hear it.
//!
//! `stats` and `metrics` are aggregates, not relays: the router sums
//! shard histograms element-wise and pools store traffic into a
//! cluster-wide hit-rate, attaching each shard's verbatim response for
//! drill-down plus a `breakers` health array and the count of
//! malformed shard metrics fields (`metrics_parse_errors` — a silent
//! `unwrap_or(0)` would under-report a shard that answers garbage).
//! `shutdown` fans out to every shard before stopping the router
//! itself.
//!
//! [`start_cluster`] wires the whole thing up in one process: N shard
//! daemons on ephemeral ports — each with a store that only publishes
//! its own key slice (`with_key_owner`) and read-through peer
//! replication (`with_remote_fetch`) — plus the router, each on its
//! own thread. The CLI's `--shards N` flag and the integration tests
//! both go through it.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lowvcc_bench::{json, ResultStore, RetryPolicy, StoreStats, SuiteChoice};
use lowvcc_core::{CoreConfig, Parallelism};
use lowvcc_sram::{CycleTimeModel, Millivolts, PAPER_SWEEP};
use lowvcc_trace::TraceSpec;

use crate::conn;
use crate::metrics::{op_json, store_json, HistogramSnapshot, Metrics, Op, LATENCY_BUCKETS};
use crate::shard::{read_through, voltage_anchor, Ring, PEER_FETCH_TIMEOUT};
use crate::{op_of, parse_request, Daemon, Request, ServeOptions};

/// How long the router waits on a shard for one relayed response.
/// Generous by default: a cold full-grid point at paper scale simulates
/// for minutes.
pub const DEFAULT_RELAY_TIMEOUT: Duration = Duration::from_secs(600);

/// How long an open breaker refuses traffic before admitting one
/// half-open probe.
pub const DEFAULT_PROBE_AFTER: Duration = Duration::from_secs(1);

/// Consecutive relay failures that open a shard's circuit breaker.
pub const BREAKER_STRIKES: u64 = 3;

/// Bound on one relay's TCP connect (reads use the relay timeout).
const RELAY_CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// Breaker states, stored in [`ShardHealth::state`].
const CLOSED: u64 = 0;
const OPEN: u64 = 1;
const HALF_OPEN: u64 = 2;

/// One shard's breaker state and lifetime counters (all relaxed
/// atomics: the counters are monotone telemetry, and the one
/// transition that must not race — claiming the half-open probe — is
/// a compare-and-swap).
#[derive(Default)]
struct ShardHealth {
    state: AtomicU64,
    strikes: AtomicU64,
    /// Milliseconds since the router's epoch when the breaker opened.
    opened_at_ms: AtomicU64,
    relay_errors: AtomicU64,
    breaker_opens: AtomicU64,
    probes: AtomicU64,
    recoveries: AtomicU64,
    /// Requests this shard owned that another shard (or the local
    /// fallback) answered.
    failovers: AtomicU64,
}

/// What the breaker lets a relay do.
enum Admission {
    /// Closed breaker: relay with retries.
    Normal,
    /// This caller claimed the half-open probe: one attempt, no retry.
    Probe,
    /// Open breaker still cooling down (or a probe is in flight).
    Refused,
}

/// The cluster front door. Cheap to construct (no traces, no store):
/// everything it needs is the shard addresses, the ring, and the anchor
/// identity (core + timing + first trace spec) that maps a voltage to
/// its owning shard. An optional local [`Daemon`] (which *does* carry
/// a context) serves as the last-resort fallback.
pub struct Router {
    shards: Vec<String>,
    ring: Ring,
    core: CoreConfig,
    timing: CycleTimeModel,
    spec: TraceSpec,
    relay_timeout: Duration,
    retry: RetryPolicy,
    probe_after: Duration,
    epoch: Instant,
    health: Vec<ShardHealth>,
    local: Option<Daemon>,
    local_fallbacks: AtomicU64,
    metrics_parse_errors: AtomicU64,
    metrics: Arc<Metrics>,
}

impl Router {
    /// A router over `shards` (host:port strings, index-aligned with
    /// the ring). `core`, `timing` and `spec` must match the shards'
    /// own context so the routing anchors agree — [`start_cluster`]
    /// guarantees this; manual wiring must use the same suite.
    #[must_use]
    pub fn new(
        shards: Vec<String>,
        ring: Ring,
        core: CoreConfig,
        timing: CycleTimeModel,
        spec: TraceSpec,
    ) -> Self {
        let health = shards.iter().map(|_| ShardHealth::default()).collect();
        Self {
            shards,
            ring,
            core,
            timing,
            spec,
            relay_timeout: DEFAULT_RELAY_TIMEOUT,
            retry: RetryPolicy::default(),
            probe_after: DEFAULT_PROBE_AFTER,
            epoch: Instant::now(),
            health,
            local: None,
            local_fallbacks: AtomicU64::new(0),
            metrics_parse_errors: AtomicU64::new(0),
            metrics: Arc::new(Metrics::new()),
        }
    }

    /// Returns the router with a different per-response relay timeout.
    #[must_use]
    pub fn with_relay_timeout(mut self, timeout: Duration) -> Self {
        self.relay_timeout = timeout;
        self
    }

    /// Returns the router with a different relay retry schedule
    /// (`RetryPolicy::none()` disables retries for tests).
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Returns the router with a different open-breaker cooldown.
    #[must_use]
    pub fn with_probe_after(mut self, probe_after: Duration) -> Self {
        self.probe_after = probe_after;
        self
    }

    /// Attaches a last-resort local simulator: when no shard can
    /// answer a voltage-routed request, the router answers it itself.
    /// The daemon renders through the same emitters as the shards, so
    /// the fallback body is byte-identical to a healthy relay.
    #[must_use]
    pub fn with_local_fallback(mut self, local: Daemon) -> Self {
        self.local = Some(local);
        self
    }

    /// The router's own metrics registry (its serve loop records into
    /// it; the `metrics` request additionally aggregates the shards').
    #[must_use]
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The ring this router partitions by.
    #[must_use]
    pub fn ring(&self) -> Ring {
        self.ring
    }

    /// The shard a request at `vcc` routes to.
    #[must_use]
    pub fn owner_of(&self, vcc: Millivolts) -> u32 {
        self.ring
            .owner(voltage_anchor(self.core, &self.timing, &self.spec, vcc))
    }

    /// Serves the cluster protocol with default options until a
    /// `shutdown` request (which fans out to every shard first).
    ///
    /// # Errors
    ///
    /// Propagates reactor and listener failures, as [`Daemon::serve`].
    pub fn serve(&self, listener: &TcpListener) -> io::Result<()> {
        self.serve_with(listener, ServeOptions::default())
    }

    /// Serves the cluster protocol until a `shutdown` request.
    ///
    /// # Errors
    ///
    /// Propagates reactor and listener failures, as
    /// [`Daemon::serve_with`].
    pub fn serve_with(&self, listener: &TcpListener, opts: ServeOptions) -> io::Result<()> {
        conn::run(self, &self.metrics, listener, opts)
    }

    /// Milliseconds since this router was built (the breakers'
    /// monotonic clock).
    fn now_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Asks shard `index`'s breaker whether a relay may proceed.
    fn admit(&self, index: usize) -> Admission {
        let h = &self.health[index];
        match h.state.load(Relaxed) {
            OPEN => {
                let opened = h.opened_at_ms.load(Relaxed);
                if self.now_ms().saturating_sub(opened) < ms(self.probe_after) {
                    return Admission::Refused;
                }
                // Cooldown elapsed: exactly one caller wins the probe.
                if h.state
                    .compare_exchange(OPEN, HALF_OPEN, Relaxed, Relaxed)
                    .is_ok()
                {
                    h.probes.fetch_add(1, Relaxed);
                    Admission::Probe
                } else {
                    Admission::Refused
                }
            }
            HALF_OPEN => Admission::Refused,
            _ => Admission::Normal,
        }
    }

    /// Records a successful relay: strikes reset, breaker closes.
    fn note_success(&self, index: usize) {
        let h = &self.health[index];
        h.strikes.store(0, Relaxed);
        if h.state.swap(CLOSED, Relaxed) != CLOSED {
            h.recoveries.fetch_add(1, Relaxed);
        }
    }

    /// Records a failed relay: a failed probe re-opens the breaker
    /// with a fresh cooldown; [`BREAKER_STRIKES`] consecutive failures
    /// open a closed one.
    fn note_failure(&self, index: usize) {
        let h = &self.health[index];
        h.relay_errors.fetch_add(1, Relaxed);
        if h.state.load(Relaxed) == HALF_OPEN {
            h.opened_at_ms.store(self.now_ms(), Relaxed);
            h.state.store(OPEN, Relaxed);
            return;
        }
        let strikes = h.strikes.fetch_add(1, Relaxed) + 1;
        if strikes >= BREAKER_STRIKES {
            // Stamp the open time first so a racing admit cannot see
            // OPEN with a stale timestamp and probe immediately.
            h.opened_at_ms.store(self.now_ms(), Relaxed);
            if h.state
                .compare_exchange(CLOSED, OPEN, Relaxed, Relaxed)
                .is_ok()
            {
                h.breaker_opens.fetch_add(1, Relaxed);
            }
        }
    }

    /// Sends `lines` to shard `index` over one fresh connection and
    /// reads one response per line, in order. Transport only — no
    /// breaker, no retry ([`Self::relay_guarded`] adds both).
    fn relay(&self, index: usize, lines: &[String]) -> Result<Vec<String>, String> {
        let addr = &self.shards[index];
        let fail =
            |what: &str, e: &dyn std::fmt::Display| format!("shard {index} ({addr}): {what}: {e}");
        let stream = match addr.parse::<SocketAddr>() {
            Ok(sock) => TcpStream::connect_timeout(&sock, RELAY_CONNECT_TIMEOUT),
            Err(_) => TcpStream::connect(addr.as_str()),
        }
        .map_err(|e| fail("connect", &e))?;
        stream
            .set_read_timeout(Some(self.relay_timeout))
            .map_err(|e| fail("set timeout", &e))?;
        stream
            .set_write_timeout(Some(self.relay_timeout))
            .map_err(|e| fail("set timeout", &e))?;
        {
            let mut w = &stream;
            for line in lines {
                w.write_all(line.as_bytes()).map_err(|e| fail("send", &e))?;
                w.write_all(b"\n").map_err(|e| fail("send", &e))?;
            }
            w.flush().map_err(|e| fail("send", &e))?;
        }
        let mut reader = BufReader::new(&stream);
        let mut out = Vec::with_capacity(lines.len());
        for _ in lines {
            let mut resp = String::new();
            let n = reader
                .read_line(&mut resp)
                .map_err(|e| fail("receive", &e))?;
            if n == 0 {
                return Err(fail("receive", &"connection closed mid-conversation"));
            }
            out.push(resp.trim_end().to_string());
        }
        Ok(out)
    }

    /// [`Self::relay`] under the shard's circuit breaker: refused
    /// instantly while the breaker cools down, one attempt when this
    /// call claims the half-open probe, retried per [`RetryPolicy`]
    /// otherwise. Every outcome feeds the breaker.
    fn relay_guarded(&self, index: usize, lines: &[String]) -> Result<Vec<String>, String> {
        match self.admit(index) {
            Admission::Refused => Err(format!(
                "shard {index} ({}): circuit breaker open",
                self.shards[index]
            )),
            Admission::Probe => match self.relay(index, lines) {
                Ok(resps) => {
                    self.note_success(index);
                    Ok(resps)
                }
                Err(e) => {
                    self.note_failure(index);
                    Err(e)
                }
            },
            Admission::Normal => {
                let attempts = self.retry.attempts.max(1);
                let mut last = String::new();
                for attempt in 1..=attempts {
                    match self.relay(index, lines) {
                        Ok(resps) => {
                            self.note_success(index);
                            return Ok(resps);
                        }
                        Err(e) => {
                            self.note_failure(index);
                            last = e;
                            if attempt < attempts {
                                std::thread::sleep(self.retry.delay(attempt, index as u64));
                            }
                        }
                    }
                }
                Err(last)
            }
        }
    }

    /// Answers `raw` from the router's own local daemon, or reports
    /// every shard's failure when no fallback is attached.
    fn local_answer(&self, raw: &str, errors: &[String]) -> String {
        let Some(local) = &self.local else {
            return error_body(&format!("no shard reachable: {}", errors.join("; ")));
        };
        self.local_fallbacks.fetch_add(1, Relaxed);
        let (body, _) = local.handle_line(raw);
        body
    }

    /// Relays one line to shard `owner`, failing over around the ring
    /// (and finally to the local daemon) until someone answers. A
    /// non-owner shard recomputes the point deterministically, so the
    /// response bytes match what the owner would have sent.
    fn reroute_line(&self, owner: usize, raw: &str) -> String {
        let request = [raw.to_string()];
        let mut errors = Vec::new();
        for step in 0..self.shards.len() {
            let index = (owner + step) % self.shards.len();
            match self.relay_guarded(index, &request) {
                Ok(mut resps) => {
                    if step > 0 {
                        self.health[owner].failovers.fetch_add(1, Relaxed);
                    }
                    return resps
                        .pop()
                        .unwrap_or_else(|| error_body("empty shard response"));
                }
                Err(e) => errors.push(e),
            }
        }
        self.local_answer(raw, &errors)
    }

    /// Relays one raw request line to the shard owning `vcc` — with
    /// failover — returning the response bytes unchanged (the
    /// byte-identity path for `sweep`-at-a-voltage, `table1` and
    /// `stalls`).
    fn relay_to_owner(&self, vcc: Millivolts, raw: &str) -> String {
        self.reroute_line(self.owner_of(vcc) as usize, raw)
    }

    /// Full-grid sweep: fan each voltage to its owning shard (one
    /// connection per shard, all shards in parallel), then merge the
    /// returned points back into `PAPER_SWEEP` order. A shard whose
    /// whole batch fails gets each of its voltages rerouted
    /// individually (next ring owner, then the local daemon), so one
    /// dead shard degrades to failover instead of failing the sweep.
    /// The merged response is byte-identical to a single daemon's
    /// because every point is re-rendered through the same canonical
    /// emitter that produced it, and `cached` is the conjunction over
    /// shards.
    fn full_sweep(&self) -> String {
        let shards = self.ring.shards() as usize;
        let mut owners: Vec<usize> = Vec::new();
        let mut per_shard: Vec<Vec<String>> = vec![Vec::new(); shards];
        for vcc in PAPER_SWEEP.iter() {
            let owner = self.owner_of(vcc) as usize;
            owners.push(owner);
            per_shard[owner].push(format!(
                "{{\"experiment\": \"sweep\", \"vcc\": {}}}",
                vcc.millivolts()
            ));
        }
        let fanned: Vec<Option<Result<Vec<String>, String>>> = std::thread::scope(|s| {
            let handles: Vec<_> = per_shard
                .iter()
                .enumerate()
                .map(|(i, lines)| {
                    (!lines.is_empty()).then(|| s.spawn(move || self.relay_guarded(i, lines)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.map(|h| {
                        h.join()
                            .unwrap_or_else(|_| Err("relay thread panicked".to_string()))
                    })
                })
                .collect()
        });
        let mut replies: Vec<std::vec::IntoIter<String>> = Vec::with_capacity(shards);
        for (index, r) in fanned.into_iter().enumerate() {
            match r {
                None => replies.push(Vec::new().into_iter()),
                Some(Ok(resps)) => replies.push(resps.into_iter()),
                Some(Err(_)) => {
                    // The batch failed even after retries (the breaker
                    // is open by now): fail each voltage over
                    // one by one.
                    let rerouted: Vec<String> = per_shard[index]
                        .iter()
                        .map(|line| self.reroute_line(index, line))
                        .collect();
                    replies.push(rerouted.into_iter());
                }
            }
        }
        let mut cached = true;
        let mut points = Vec::with_capacity(owners.len());
        for (vcc, owner) in PAPER_SWEEP.iter().zip(owners) {
            let Some(resp) = replies[owner].next() else {
                return error_body(&format!(
                    "shard {owner} ({}): missing response for {} mV",
                    self.shards[owner],
                    vcc.millivolts()
                ));
            };
            let v = match json::parse(&resp) {
                Ok(v) => v,
                Err(e) => {
                    return error_body(&format!(
                        "shard {owner} ({}): unparsable response: {e}",
                        self.shards[owner]
                    ))
                }
            };
            if v.get("ok").and_then(json::Value::as_bool) != Some(true) {
                let detail = v
                    .get("error")
                    .and_then(json::Value::as_str)
                    .unwrap_or("unknown shard error");
                return error_body(&format!("shard {owner} ({}): {detail}", self.shards[owner]));
            }
            cached &= v.get("cached").and_then(json::Value::as_bool) == Some(true);
            let Some(point) = v.get("point") else {
                return error_body(&format!(
                    "shard {owner} ({}): response has no point",
                    self.shards[owner]
                ));
            };
            points.push(json::render(point));
        }
        json::object(&[
            ("ok", json::boolean(true)),
            ("experiment", json::string("sweep")),
            ("cached", json::boolean(cached)),
            ("points", json::array(&points)),
        ])
    }

    /// Fans a request to every shard through the breakers, returning
    /// each shard's response (or an error body for unreachable
    /// shards).
    fn fan_out(&self, line: &str) -> Vec<String> {
        let request = [line.to_string()];
        (0..self.shards.len())
            .map(|i| match self.relay_guarded(i, &request) {
                Ok(mut resps) => resps
                    .pop()
                    .unwrap_or_else(|| error_body("empty shard response")),
                Err(e) => error_body(&e),
            })
            .collect()
    }

    /// Breaker-blind fan-out, one attempt per shard — for `shutdown`,
    /// which must reach a freshly restarted shard even while its
    /// breaker is still open.
    fn fan_out_raw(&self, line: &str) -> Vec<String> {
        let request = [line.to_string()];
        (0..self.shards.len())
            .map(|i| match self.relay(i, &request) {
                Ok(mut resps) => resps
                    .pop()
                    .unwrap_or_else(|| error_body("empty shard response")),
                Err(e) => error_body(&e),
            })
            .collect()
    }

    /// The per-shard breaker telemetry, as a rendered JSON array.
    fn health_json(&self) -> String {
        let rows: Vec<String> = self
            .health
            .iter()
            .enumerate()
            .map(|(index, h)| {
                let state = match h.state.load(Relaxed) {
                    OPEN => "open",
                    HALF_OPEN => "half_open",
                    _ => "closed",
                };
                json::object(&[
                    ("shard", index.to_string()),
                    ("addr", json::string(&self.shards[index])),
                    ("state", json::string(state)),
                    ("relay_errors", h.relay_errors.load(Relaxed).to_string()),
                    ("breaker_opens", h.breaker_opens.load(Relaxed).to_string()),
                    ("probes", h.probes.load(Relaxed).to_string()),
                    ("recoveries", h.recoveries.load(Relaxed).to_string()),
                    ("failovers", h.failovers.load(Relaxed).to_string()),
                ])
            })
            .collect();
        json::array(&rows)
    }

    /// Cluster `metrics`: element-wise merge of the shards' histograms
    /// and pooled store traffic, with each shard's verbatim response
    /// attached under `"shards"`. Malformed shard fields are *counted*
    /// (`metrics_parse_errors`, cumulative), never silently zeroed;
    /// a downed shard's `ok: false` body is unreachability, not a
    /// parse error, and is skipped.
    fn aggregate_metrics(&self) -> String {
        let bodies = self.fan_out("{\"experiment\": \"metrics\"}");
        let mut store = StoreStats::default();
        let mut ops = [HistogramSnapshot::default(); Op::ALL.len()];
        let mut parse_errors: u64 = 0;
        for body in &bodies {
            let Ok(v) = json::parse(body) else {
                parse_errors += 1;
                continue;
            };
            if v.get("ok").and_then(json::Value::as_bool) != Some(true) {
                continue;
            }
            if let Some(s) = v.get("store") {
                {
                    let mut n = |k: &str| match s.get(k).and_then(json::Value::as_u64) {
                        Some(n) => n,
                        None => {
                            parse_errors += 1;
                            0
                        }
                    };
                    store.hits += n("hits");
                    store.misses += n("misses");
                    store.stores += n("stores");
                    store.coalesced += n("coalesced");
                    store.foreign_puts += n("foreign_puts");
                    store.peer_fetches += n("peer_fetches");
                    store.peer_hits += n("peer_hits");
                    store.quarantined += n("quarantined");
                }
                store.degraded |= s.get("degraded").and_then(json::Value::as_bool) == Some(true);
            } else {
                parse_errors += 1;
            }
            let Some(shard_ops) = v.get("ops").and_then(json::Value::as_array) else {
                parse_errors += 1;
                continue;
            };
            for (slot, op) in ops.iter_mut().zip(Op::ALL) {
                let Some(o) = shard_ops
                    .iter()
                    .find(|o| o.get("op").and_then(json::Value::as_str) == Some(op.label()))
                else {
                    parse_errors += 1;
                    continue;
                };
                let (snap, errs) = snapshot_of(o);
                parse_errors += errs;
                *slot = slot.merged(&snap);
            }
        }
        let total = self.metrics_parse_errors.fetch_add(parse_errors, Relaxed) + parse_errors;
        let rendered_ops: Vec<String> = Op::ALL
            .iter()
            .zip(&ops)
            .map(|(&op, snap)| op_json(op, snap))
            .collect();
        json::object(&[
            ("ok", json::boolean(true)),
            ("experiment", json::string("metrics")),
            ("router", json::boolean(true)),
            ("shard_count", self.shards.len().to_string()),
            ("metrics_parse_errors", total.to_string()),
            (
                "local_fallbacks",
                self.local_fallbacks.load(Relaxed).to_string(),
            ),
            ("breakers", self.health_json()),
            ("store", store_json(&store)),
            ("ops", json::array(&rendered_ops)),
            ("shards", json::array(&bodies)),
        ])
    }

    /// Cluster `stats`: the router's own connection counters, the
    /// breaker health array, and each shard's verbatim `stats`
    /// response.
    fn aggregate_stats(&self) -> String {
        let bodies = self.fan_out("{\"experiment\": \"stats\"}");
        let c = {
            let m = &self.metrics;
            json::object(&[
                ("accepted", m.accepted.load(Relaxed).to_string()),
                ("completed", m.completed.load(Relaxed).to_string()),
                ("refused", m.refused_busy.load(Relaxed).to_string()),
                ("errors", m.connection_errors.load(Relaxed).to_string()),
                ("timeouts", m.timeouts.load(Relaxed).to_string()),
                ("idle_reaped", m.idle_reaped.load(Relaxed).to_string()),
            ])
        };
        json::object(&[
            ("ok", json::boolean(true)),
            ("router", json::boolean(true)),
            ("shard_count", self.shards.len().to_string()),
            ("connections", c),
            (
                "local_fallbacks",
                self.local_fallbacks.load(Relaxed).to_string(),
            ),
            ("breakers", self.health_json()),
            ("shards", json::array(&bodies)),
        ])
    }

    fn route(&self, req: Request, raw: &str) -> (String, bool) {
        match req {
            Request::Ping => (
                json::object(&[("ok", json::boolean(true)), ("pong", json::boolean(true))]),
                false,
            ),
            Request::Shutdown => {
                // Best-effort fan-out: a shard that is already gone must
                // not keep the cluster alive, and an open breaker must
                // not shield a restarted shard from the order.
                let _ = self.fan_out_raw("{\"experiment\": \"shutdown\"}");
                (
                    json::object(&[
                        ("ok", json::boolean(true)),
                        ("shutdown", json::boolean(true)),
                    ]),
                    true,
                )
            }
            Request::Stats => (self.aggregate_stats(), false),
            Request::Metrics => (self.aggregate_metrics(), false),
            Request::Sweep(None) => (self.full_sweep(), false),
            Request::Sweep(Some(vcc)) | Request::Table1(vcc) | Request::Stalls(vcc) => {
                (self.relay_to_owner(vcc, raw), false)
            }
            // Peer probes are shard-to-shard by design: answering one
            // here would let a router bounce it back into the fleet
            // and defeat the no-cascade rule.
            Request::PeerGet(_) => (
                error_body("peer_get is a shard-to-shard request; ask a shard directly"),
                false,
            ),
        }
    }
}

impl conn::Service for Router {
    fn call(&self, line: &str) -> conn::Reply {
        let parsed = parse_request(line);
        let op = op_of(&parsed);
        let (body, stop) = match parsed {
            Ok(req) => self.route(req, line),
            Err(e) => (
                json::object(&[
                    ("ok", json::boolean(false)),
                    ("error", json::string(&e.to_string())),
                ]),
                false,
            ),
        };
        conn::Reply { body, stop, op }
    }
}

/// `Duration` → whole milliseconds, saturating.
fn ms(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

/// Rebuilds a [`HistogramSnapshot`] from one rendered op object (the
/// wire inverse of [`op_json`]), counting every missing or mistyped
/// field instead of silently zeroing it.
fn snapshot_of(o: &json::Value) -> (HistogramSnapshot, u64) {
    let mut errors: u64 = 0;
    let mut snap = HistogramSnapshot::default();
    {
        let mut field = |k: &str| match o.get(k).and_then(json::Value::as_u64) {
            Some(n) => n,
            None => {
                errors += 1;
                0
            }
        };
        snap.count = field("count");
        snap.total_micros = field("total_us");
    }
    match o.get("buckets").and_then(json::Value::as_array) {
        Some(buckets) => {
            for (slot, b) in snap
                .buckets
                .iter_mut()
                .zip(buckets.iter().take(LATENCY_BUCKETS))
            {
                match b.as_u64() {
                    Some(n) => *slot = n,
                    None => errors += 1,
                }
            }
            if buckets.len() < LATENCY_BUCKETS {
                errors += (LATENCY_BUCKETS - buckets.len()) as u64;
            }
        }
        None => errors += 1,
    }
    (snap, errors)
}

fn error_body(error: &str) -> String {
    json::object(&[("ok", json::boolean(false)), ("error", json::string(error))])
}

/// Why a cluster failed to start or exited uncleanly.
#[derive(Debug)]
pub enum ClusterError {
    /// Building a shard (suite, store, bind) failed before serving.
    Start(String),
    /// A shard's or the router's serve loop returned an I/O error.
    Serve(io::Error),
    /// A cluster thread panicked.
    ThreadPanicked,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Start(what) => write!(f, "{what}"),
            Self::Serve(e) => write!(f, "serve loop failed: {e}"),
            Self::ThreadPanicked => write!(f, "cluster thread panicked"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Configuration for [`start_cluster`].
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Number of shard daemons (clamped up to 1 by the ring).
    pub shards: u32,
    /// Ring seed — every shard and the router must agree on it.
    pub seed: u64,
    /// Simulation threads per shard (`--jobs`).
    pub jobs: usize,
    /// Shared on-disk store directory. All shards open the *same*
    /// directory: key-slice ownership (`with_key_owner`) keeps their
    /// disk writes disjoint. `None` = per-shard in-memory stores.
    pub cache: Option<PathBuf>,
    /// Pre-fill each shard's slice of the sweep grid (plus the
    /// default-voltage `table1`/`stalls` points) before serving.
    pub warm: bool,
    /// An LVCB bundle (`lowvcc-store export`) imported into every
    /// shard's store — and the router's fallback store — before
    /// serving.
    pub warm_bundle: Option<PathBuf>,
    /// Serve-loop options applied to every shard and the router.
    pub serve: ServeOptions,
    /// Router bind address (shards always bind `127.0.0.1:0`).
    pub router_addr: String,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        Self {
            shards: 2,
            seed: crate::shard::DEFAULT_RING_SEED,
            jobs: Parallelism::available().count(),
            cache: None,
            warm: false,
            warm_bundle: None,
            serve: ServeOptions::default(),
            router_addr: "127.0.0.1:0".to_string(),
        }
    }
}

/// A running in-process cluster: N shard daemons plus the router, each
/// on its own thread.
pub struct Cluster {
    router_addr: SocketAddr,
    shard_addrs: Vec<SocketAddr>,
    threads: Vec<JoinHandle<io::Result<()>>>,
}

impl Cluster {
    /// Where clients connect.
    #[must_use]
    pub fn router_addr(&self) -> SocketAddr {
        self.router_addr
    }

    /// The shard daemons' addresses, index-aligned with the ring.
    #[must_use]
    pub fn shard_addrs(&self) -> &[SocketAddr] {
        &self.shard_addrs
    }

    /// Waits for the whole cluster to exit (a client's `shutdown`
    /// request fans out through the router).
    ///
    /// # Errors
    ///
    /// Reports the first serve-loop failure or thread panic.
    pub fn join(self) -> Result<(), ClusterError> {
        let mut first_err = None;
        for t in self.threads {
            match t.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    first_err.get_or_insert(ClusterError::Serve(e));
                }
                Err(_) => {
                    first_err.get_or_insert(ClusterError::ThreadPanicked);
                }
            }
        }
        first_err.map_or(Ok(()), Err)
    }
}

/// Builds and starts a full cluster for `choice`: N shard daemons (one
/// thread each, ephemeral ports, per-slice store ownership, read-
/// through peer replication, optional per-slice warm-up or bundle
/// import) and the router (bound to [`ClusterOptions::router_addr`],
/// with a local fallback daemon for total-fleet failures). Returns
/// once every listener is bound — warm-up proceeds on the shard
/// threads, with early requests queueing in the listen backlog until
/// their shard is ready.
///
/// # Errors
///
/// Reports suite-build, store-open, bundle-import and bind failures.
pub fn start_cluster(choice: SuiteChoice, opts: &ClusterOptions) -> Result<Cluster, ClusterError> {
    let ring = Ring::new(opts.shards, opts.seed);
    let shards = ring.shards();
    // Bind every shard listener before building any daemon: each
    // shard's read-through hook needs the full peer address list.
    let mut listeners = Vec::with_capacity(shards as usize);
    let mut shard_addrs = Vec::with_capacity(shards as usize);
    for index in 0..shards {
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| ClusterError::Start(format!("shard {index}: bind: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ClusterError::Start(format!("shard {index}: local addr: {e}")))?;
        shard_addrs.push(addr);
        listeners.push(listener);
    }
    let peers: Vec<String> = shard_addrs.iter().map(ToString::to_string).collect();
    let mut threads = Vec::with_capacity(shards as usize + 1);
    let mut anchor: Option<(CoreConfig, CycleTimeModel, TraceSpec)> = None;
    for (index, listener) in listeners.into_iter().enumerate() {
        let index = index as u32;
        let ctx = choice
            .build()
            .map_err(|e| ClusterError::Start(format!("shard {index}: suite: {e}")))?
            .with_parallelism(Parallelism::threads(opts.jobs));
        if anchor.is_none() {
            anchor = Some((ctx.core, ctx.timing, ctx.specs[0]));
        }
        let store = match &opts.cache {
            Some(dir) => ResultStore::open(dir)
                .map_err(|e| ClusterError::Start(format!("shard {index}: store: {e}")))?,
            None => ResultStore::ephemeral(),
        };
        let store = store
            .with_key_owner(Arc::new(move |key| ring.owns(index, key)))
            .with_remote_fetch(read_through(ring, index, peers.clone(), PEER_FETCH_TIMEOUT));
        if let Some(bundle) = &opts.warm_bundle {
            store
                .import_bundle(bundle)
                .map_err(|e| ClusterError::Start(format!("shard {index}: bundle: {e}")))?;
        }
        let daemon = Daemon::new(ctx.with_cache(Arc::new(store))).with_shard(index, shards);
        let serve = opts.serve;
        let warm = opts.warm;
        threads.push(std::thread::spawn(move || {
            if warm {
                daemon
                    .warm_slice(&ring, index)
                    .map_err(|e| io::Error::other(e.to_string()))?;
            }
            daemon.serve_with(&listener, serve)
        }));
    }
    let Some((core, timing, spec)) = anchor else {
        return Err(ClusterError::Start(
            "cluster needs at least one shard".to_string(),
        ));
    };
    // The router's last-resort simulator. It reads the shared cache
    // but never publishes (the shards own every key slice), so the
    // fallback cannot corrupt the fleet's disk layout.
    let local_ctx = choice
        .build()
        .map_err(|e| ClusterError::Start(format!("router: suite: {e}")))?
        .with_parallelism(Parallelism::threads(opts.jobs));
    let local_store = match &opts.cache {
        Some(dir) => ResultStore::open(dir)
            .map_err(|e| ClusterError::Start(format!("router: store: {e}")))?,
        None => ResultStore::ephemeral(),
    };
    let local_store = local_store.with_key_owner(Arc::new(|_| false));
    if let Some(bundle) = &opts.warm_bundle {
        local_store
            .import_bundle(bundle)
            .map_err(|e| ClusterError::Start(format!("router: bundle: {e}")))?;
    }
    let local = Daemon::new(local_ctx.with_cache(Arc::new(local_store)));
    let router = Router::new(peers, ring, core, timing, spec).with_local_fallback(local);
    let listener = TcpListener::bind(&opts.router_addr).map_err(|e| {
        ClusterError::Start(format!("router: cannot bind {}: {e}", opts.router_addr))
    })?;
    let router_addr = listener
        .local_addr()
        .map_err(|e| ClusterError::Start(format!("router: local addr: {e}")))?;
    let serve = opts.serve;
    threads.push(std::thread::spawn(move || {
        router.serve_with(&listener, serve)
    }));
    Ok(Cluster {
        router_addr,
        shard_addrs,
        threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn test_router(shards: Vec<String>) -> Router {
        let spec = SuiteChoice::parse("quick")
            .expect("quick suite parses")
            .specs()[0];
        Router::new(
            shards,
            Ring::new(1, crate::shard::DEFAULT_RING_SEED),
            CoreConfig::silverthorne(),
            CycleTimeModel::silverthorne_45nm(),
            spec,
        )
        .with_retry_policy(RetryPolicy::none())
        .with_relay_timeout(Duration::from_secs(2))
    }

    /// A one-shot shard stand-in: accepts one connection, reads one
    /// line, answers `{"ok": true}`.
    fn one_shot_shard(listener: TcpListener) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            if let Ok((stream, _)) = listener.accept() {
                let mut reader = BufReader::new(&stream);
                let mut line = String::new();
                let _ = reader.read_line(&mut line);
                let mut w = &stream;
                let _ = w.write_all(b"{\"ok\": true}\n");
                let _ = w.flush();
            }
        })
    }

    #[test]
    fn breaker_opens_after_strikes_refuses_then_probes_and_recovers() {
        // Reserve a port, then free it: relays to it are refused fast.
        let parked = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = parked.local_addr().expect("addr").to_string();
        drop(parked);
        let router = test_router(vec![addr.clone()]).with_probe_after(Duration::from_millis(30));
        let line = ["{\"experiment\": \"ping\"}".to_string()];

        // Three consecutive failures open the breaker…
        for _ in 0..BREAKER_STRIKES {
            assert!(router.relay_guarded(0, &line).is_err());
        }
        assert!(router.health_json().contains("\"state\": \"open\""));

        // …and while it cools down, relays are refused without dialing.
        let err = router.relay_guarded(0, &line).expect_err("refused");
        assert!(err.contains("circuit breaker open"), "got: {err}");
        assert!(err.contains(&addr), "breaker errors carry the addr: {err}");

        // After the cooldown a probe against a revived shard recovers.
        std::thread::sleep(Duration::from_millis(40));
        let revived = loop {
            match TcpListener::bind(&addr) {
                Ok(l) => break l,
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        };
        let shard = one_shot_shard(revived);
        let resp = router.relay_guarded(0, &line).expect("probe succeeds");
        assert_eq!(resp, vec!["{\"ok\": true}".to_string()]);
        shard.join().expect("shard thread");
        let health = router.health_json();
        assert!(health.contains("\"state\": \"closed\""), "got: {health}");
        assert!(health.contains("\"probes\": 1"), "got: {health}");
        assert!(health.contains("\"recoveries\": 1"), "got: {health}");
        assert!(health.contains("\"breaker_opens\": 1"), "got: {health}");
    }

    #[test]
    fn failed_probes_reopen_the_breaker() {
        let parked = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = parked.local_addr().expect("addr").to_string();
        drop(parked);
        let router = test_router(vec![addr]).with_probe_after(Duration::from_millis(10));
        let line = ["{\"experiment\": \"ping\"}".to_string()];
        for _ in 0..BREAKER_STRIKES {
            assert!(router.relay_guarded(0, &line).is_err());
        }
        std::thread::sleep(Duration::from_millis(15));
        // The probe dials the still-dead shard and fails: re-open.
        assert!(router.relay_guarded(0, &line).is_err());
        let health = router.health_json();
        assert!(health.contains("\"state\": \"open\""), "got: {health}");
        assert!(health.contains("\"probes\": 1"), "got: {health}");
        // Immediately after, the fresh cooldown refuses again.
        let err = router.relay_guarded(0, &line).expect_err("refused");
        assert!(err.contains("circuit breaker open"), "got: {err}");
    }

    #[test]
    fn malformed_shard_metrics_are_counted_not_zeroed() {
        // A well-formed op parses with zero errors.
        let full = vec!["0"; LATENCY_BUCKETS].join(", ");
        let good = json::parse(&format!(
            "{{\"op\": \"ping\", \"count\": 2, \"total_us\": 7, \"buckets\": [{full}]}}"
        ))
        .expect("valid op json");
        let (snap, errs) = snapshot_of(&good);
        assert_eq!((snap.count, snap.total_micros, errs), (2, 7, 0));

        // Missing count + truncated buckets are each counted.
        let bad = json::parse("{\"op\": \"ping\", \"total_us\": 7, \"buckets\": [1]}")
            .expect("valid json");
        let (snap, errs) = snapshot_of(&bad);
        assert_eq!(snap.count, 0);
        assert_eq!(
            errs,
            1 + (LATENCY_BUCKETS as u64 - 1),
            "one missing field plus the short bucket array"
        );

        // No buckets at all is one more structural error.
        let worse = json::parse("{\"op\": \"ping\"}").expect("valid json");
        let (_, errs) = snapshot_of(&worse);
        assert_eq!(errs, 3, "count, total_us and buckets all missing");
    }
}
