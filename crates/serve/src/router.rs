//! The cluster front door: a request router over N shard daemons.
//!
//! A [`Router`] speaks the same NDJSON protocol as a single
//! [`Daemon`] and is served by the same readiness-driven loop
//! ([`crate::conn::run`]). It owns no simulator and no store — it
//! classifies each request, forwards it **verbatim** to the shard the
//! consistent-hash [`Ring`] assigns, and relays the shard's response
//! bytes unchanged. Full-grid sweeps are the one request that spans
//! shards: the router fans the 13 voltages out to their owners in
//! parallel, then merges the returned points back into grid order
//! through the canonical JSON renderer — producing a response
//! **byte-identical** to a single-process daemon's (`json::render` is
//! the emitters' own canonical form, and `f64` round-trips exactly).
//!
//! `stats` and `metrics` are aggregates, not relays: the router sums
//! shard histograms element-wise and pools store traffic into a
//! cluster-wide hit-rate, attaching each shard's verbatim response for
//! drill-down. `shutdown` fans out to every shard before stopping the
//! router itself.
//!
//! [`start_cluster`] wires the whole thing up in one process: N shard
//! daemons on ephemeral ports — each with a store that only publishes
//! its own key slice (`with_key_owner`) — plus the router, each on its
//! own thread. The CLI's `--shards N` flag and the integration tests
//! both go through it.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use lowvcc_bench::{json, ResultStore, StoreStats, SuiteChoice};
use lowvcc_core::{CoreConfig, Parallelism};
use lowvcc_sram::{CycleTimeModel, Millivolts, PAPER_SWEEP};
use lowvcc_trace::TraceSpec;

use crate::conn;
use crate::metrics::{op_json, store_json, HistogramSnapshot, Metrics, Op, LATENCY_BUCKETS};
use crate::shard::{voltage_anchor, Ring};
use crate::{op_of, parse_request, Daemon, Request, ServeOptions};

/// How long the router waits on a shard for one relayed response.
/// Generous by default: a cold full-grid point at paper scale simulates
/// for minutes.
pub const DEFAULT_RELAY_TIMEOUT: Duration = Duration::from_secs(600);

/// The cluster front door. Cheap to construct (no traces, no store):
/// everything it needs is the shard addresses, the ring, and the anchor
/// identity (core + timing + first trace spec) that maps a voltage to
/// its owning shard.
pub struct Router {
    shards: Vec<String>,
    ring: Ring,
    core: CoreConfig,
    timing: CycleTimeModel,
    spec: TraceSpec,
    relay_timeout: Duration,
    metrics: Arc<Metrics>,
}

impl Router {
    /// A router over `shards` (host:port strings, index-aligned with
    /// the ring). `core`, `timing` and `spec` must match the shards'
    /// own context so the routing anchors agree — [`start_cluster`]
    /// guarantees this; manual wiring must use the same suite.
    #[must_use]
    pub fn new(
        shards: Vec<String>,
        ring: Ring,
        core: CoreConfig,
        timing: CycleTimeModel,
        spec: TraceSpec,
    ) -> Self {
        Self {
            shards,
            ring,
            core,
            timing,
            spec,
            relay_timeout: DEFAULT_RELAY_TIMEOUT,
            metrics: Arc::new(Metrics::new()),
        }
    }

    /// Returns the router with a different per-response relay timeout.
    #[must_use]
    pub fn with_relay_timeout(mut self, timeout: Duration) -> Self {
        self.relay_timeout = timeout;
        self
    }

    /// The router's own metrics registry (its serve loop records into
    /// it; the `metrics` request additionally aggregates the shards').
    #[must_use]
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The ring this router partitions by.
    #[must_use]
    pub fn ring(&self) -> Ring {
        self.ring
    }

    /// The shard a request at `vcc` routes to.
    #[must_use]
    pub fn owner_of(&self, vcc: Millivolts) -> u32 {
        self.ring
            .owner(voltage_anchor(self.core, &self.timing, &self.spec, vcc))
    }

    /// Serves the cluster protocol with default options until a
    /// `shutdown` request (which fans out to every shard first).
    ///
    /// # Errors
    ///
    /// Propagates reactor and listener failures, as [`Daemon::serve`].
    pub fn serve(&self, listener: &TcpListener) -> io::Result<()> {
        self.serve_with(listener, ServeOptions::default())
    }

    /// Serves the cluster protocol until a `shutdown` request.
    ///
    /// # Errors
    ///
    /// Propagates reactor and listener failures, as
    /// [`Daemon::serve_with`].
    pub fn serve_with(&self, listener: &TcpListener, opts: ServeOptions) -> io::Result<()> {
        conn::run(self, &self.metrics, listener, opts)
    }

    /// Sends `lines` to shard `index` over one fresh connection and
    /// reads one response per line, in order.
    fn relay(&self, index: usize, lines: &[String]) -> Result<Vec<String>, String> {
        let addr = &self.shards[index];
        let fail =
            |what: &str, e: &dyn std::fmt::Display| format!("shard {index} ({addr}): {what}: {e}");
        let stream = TcpStream::connect(addr).map_err(|e| fail("connect", &e))?;
        stream
            .set_read_timeout(Some(self.relay_timeout))
            .map_err(|e| fail("set timeout", &e))?;
        stream
            .set_write_timeout(Some(self.relay_timeout))
            .map_err(|e| fail("set timeout", &e))?;
        {
            let mut w = &stream;
            for line in lines {
                w.write_all(line.as_bytes()).map_err(|e| fail("send", &e))?;
                w.write_all(b"\n").map_err(|e| fail("send", &e))?;
            }
            w.flush().map_err(|e| fail("send", &e))?;
        }
        let mut reader = BufReader::new(&stream);
        let mut out = Vec::with_capacity(lines.len());
        for _ in lines {
            let mut resp = String::new();
            let n = reader
                .read_line(&mut resp)
                .map_err(|e| fail("receive", &e))?;
            if n == 0 {
                return Err(fail("receive", &"connection closed mid-conversation"));
            }
            out.push(resp.trim_end().to_string());
        }
        Ok(out)
    }

    /// Relays one raw request line to the shard owning `vcc`, returning
    /// the shard's response bytes unchanged (the byte-identity path for
    /// `sweep`-at-a-voltage, `table1` and `stalls`).
    fn relay_to_owner(&self, vcc: Millivolts, raw: &str) -> String {
        let owner = self.owner_of(vcc) as usize;
        match self.relay(owner, &[raw.to_string()]) {
            Ok(mut resps) => resps
                .pop()
                .unwrap_or_else(|| error_body("empty shard response")),
            Err(e) => error_body(&e),
        }
    }

    /// Full-grid sweep: fan each voltage to its owning shard (one
    /// connection per shard, all shards in parallel), then merge the
    /// returned points back into `PAPER_SWEEP` order. The merged
    /// response is byte-identical to a single daemon's because every
    /// point is re-rendered through the same canonical emitter that
    /// produced it, and `cached` is the conjunction over shards.
    fn full_sweep(&self) -> String {
        let shards = self.ring.shards() as usize;
        let mut owners: Vec<usize> = Vec::new();
        let mut per_shard: Vec<Vec<String>> = vec![Vec::new(); shards];
        for vcc in PAPER_SWEEP.iter() {
            let owner = self.owner_of(vcc) as usize;
            owners.push(owner);
            per_shard[owner].push(format!(
                "{{\"experiment\": \"sweep\", \"vcc\": {}}}",
                vcc.millivolts()
            ));
        }
        let fanned: Vec<Option<Result<Vec<String>, String>>> = std::thread::scope(|s| {
            let handles: Vec<_> = per_shard
                .iter()
                .enumerate()
                .map(|(i, lines)| {
                    (!lines.is_empty()).then(|| s.spawn(move || self.relay(i, lines)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.map(|h| {
                        h.join()
                            .unwrap_or_else(|_| Err("relay thread panicked".to_string()))
                    })
                })
                .collect()
        });
        let mut replies: Vec<std::vec::IntoIter<String>> = Vec::with_capacity(shards);
        for r in fanned {
            match r {
                None => replies.push(Vec::new().into_iter()),
                Some(Ok(resps)) => replies.push(resps.into_iter()),
                Some(Err(e)) => return error_body(&e),
            }
        }
        let mut cached = true;
        let mut points = Vec::with_capacity(owners.len());
        for (vcc, owner) in PAPER_SWEEP.iter().zip(owners) {
            let Some(resp) = replies[owner].next() else {
                return error_body(&format!(
                    "shard {owner}: missing response for {} mV",
                    vcc.millivolts()
                ));
            };
            let v = match json::parse(&resp) {
                Ok(v) => v,
                Err(e) => return error_body(&format!("shard {owner}: unparsable response: {e}")),
            };
            if v.get("ok").and_then(json::Value::as_bool) != Some(true) {
                let detail = v
                    .get("error")
                    .and_then(json::Value::as_str)
                    .unwrap_or("unknown shard error");
                return error_body(&format!("shard {owner}: {detail}"));
            }
            cached &= v.get("cached").and_then(json::Value::as_bool) == Some(true);
            let Some(point) = v.get("point") else {
                return error_body(&format!("shard {owner}: response has no point"));
            };
            points.push(json::render(point));
        }
        json::object(&[
            ("ok", json::boolean(true)),
            ("experiment", json::string("sweep")),
            ("cached", json::boolean(cached)),
            ("points", json::array(&points)),
        ])
    }

    /// Fans a request to every shard, returning each shard's response
    /// (or an error body for unreachable shards).
    fn fan_out(&self, line: &str) -> Vec<String> {
        let request = [line.to_string()];
        (0..self.shards.len())
            .map(|i| match self.relay(i, &request) {
                Ok(mut resps) => resps
                    .pop()
                    .unwrap_or_else(|| error_body("empty shard response")),
                Err(e) => error_body(&e),
            })
            .collect()
    }

    /// Cluster `metrics`: element-wise merge of the shards' histograms
    /// and pooled store traffic, with each shard's verbatim response
    /// attached under `"shards"`.
    fn aggregate_metrics(&self) -> String {
        let bodies = self.fan_out("{\"experiment\": \"metrics\"}");
        let mut store = StoreStats::default();
        let mut ops = [HistogramSnapshot::default(); Op::ALL.len()];
        for body in &bodies {
            let Ok(v) = json::parse(body) else { continue };
            if v.get("ok").and_then(json::Value::as_bool) != Some(true) {
                continue;
            }
            if let Some(s) = v.get("store") {
                let n = |k: &str| s.get(k).and_then(json::Value::as_u64).unwrap_or(0);
                store.hits += n("hits");
                store.misses += n("misses");
                store.stores += n("stores");
                store.coalesced += n("coalesced");
                store.foreign_puts += n("foreign_puts");
                store.quarantined += n("quarantined");
                store.degraded |= s.get("degraded").and_then(json::Value::as_bool) == Some(true);
            }
            let Some(shard_ops) = v.get("ops").and_then(json::Value::as_array) else {
                continue;
            };
            for (slot, op) in ops.iter_mut().zip(Op::ALL) {
                let Some(o) = shard_ops
                    .iter()
                    .find(|o| o.get("op").and_then(json::Value::as_str) == Some(op.label()))
                else {
                    continue;
                };
                *slot = slot.merged(&snapshot_of(o));
            }
        }
        let rendered_ops: Vec<String> = Op::ALL
            .iter()
            .zip(&ops)
            .map(|(&op, snap)| op_json(op, snap))
            .collect();
        json::object(&[
            ("ok", json::boolean(true)),
            ("experiment", json::string("metrics")),
            ("router", json::boolean(true)),
            ("shard_count", self.shards.len().to_string()),
            ("store", store_json(&store)),
            ("ops", json::array(&rendered_ops)),
            ("shards", json::array(&bodies)),
        ])
    }

    /// Cluster `stats`: the router's own connection counters plus each
    /// shard's verbatim `stats` response.
    fn aggregate_stats(&self) -> String {
        let bodies = self.fan_out("{\"experiment\": \"stats\"}");
        let c = {
            use std::sync::atomic::Ordering::Relaxed;
            let m = &self.metrics;
            json::object(&[
                ("accepted", m.accepted.load(Relaxed).to_string()),
                ("completed", m.completed.load(Relaxed).to_string()),
                ("refused", m.refused_busy.load(Relaxed).to_string()),
                ("errors", m.connection_errors.load(Relaxed).to_string()),
                ("timeouts", m.timeouts.load(Relaxed).to_string()),
                ("idle_reaped", m.idle_reaped.load(Relaxed).to_string()),
            ])
        };
        json::object(&[
            ("ok", json::boolean(true)),
            ("router", json::boolean(true)),
            ("shard_count", self.shards.len().to_string()),
            ("connections", c),
            ("shards", json::array(&bodies)),
        ])
    }

    fn route(&self, req: Request, raw: &str) -> (String, bool) {
        match req {
            Request::Ping => (
                json::object(&[("ok", json::boolean(true)), ("pong", json::boolean(true))]),
                false,
            ),
            Request::Shutdown => {
                // Best-effort fan-out: a shard that is already gone must
                // not keep the cluster alive.
                let _ = self.fan_out("{\"experiment\": \"shutdown\"}");
                (
                    json::object(&[
                        ("ok", json::boolean(true)),
                        ("shutdown", json::boolean(true)),
                    ]),
                    true,
                )
            }
            Request::Stats => (self.aggregate_stats(), false),
            Request::Metrics => (self.aggregate_metrics(), false),
            Request::Sweep(None) => (self.full_sweep(), false),
            Request::Sweep(Some(vcc)) | Request::Table1(vcc) | Request::Stalls(vcc) => {
                (self.relay_to_owner(vcc, raw), false)
            }
        }
    }
}

impl conn::Service for Router {
    fn call(&self, line: &str) -> conn::Reply {
        let parsed = parse_request(line);
        let op = op_of(&parsed);
        let (body, stop) = match parsed {
            Ok(req) => self.route(req, line),
            Err(e) => (
                json::object(&[
                    ("ok", json::boolean(false)),
                    ("error", json::string(&e.to_string())),
                ]),
                false,
            ),
        };
        conn::Reply { body, stop, op }
    }
}

/// Rebuilds a [`HistogramSnapshot`] from one rendered op object (the
/// wire inverse of [`op_json`]; unknown/short bucket arrays pad with
/// zero).
fn snapshot_of(o: &json::Value) -> HistogramSnapshot {
    let mut snap = HistogramSnapshot {
        count: o.get("count").and_then(json::Value::as_u64).unwrap_or(0),
        total_micros: o.get("total_us").and_then(json::Value::as_u64).unwrap_or(0),
        ..HistogramSnapshot::default()
    };
    if let Some(buckets) = o.get("buckets").and_then(json::Value::as_array) {
        for (slot, b) in snap
            .buckets
            .iter_mut()
            .zip(buckets.iter().take(LATENCY_BUCKETS))
        {
            *slot = b.as_u64().unwrap_or(0);
        }
    }
    snap
}

fn error_body(error: &str) -> String {
    json::object(&[("ok", json::boolean(false)), ("error", json::string(error))])
}

/// Why a cluster failed to start or exited uncleanly.
#[derive(Debug)]
pub enum ClusterError {
    /// Building a shard (suite, store, bind) failed before serving.
    Start(String),
    /// A shard's or the router's serve loop returned an I/O error.
    Serve(io::Error),
    /// A cluster thread panicked.
    ThreadPanicked,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Start(what) => write!(f, "{what}"),
            Self::Serve(e) => write!(f, "serve loop failed: {e}"),
            Self::ThreadPanicked => write!(f, "cluster thread panicked"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Configuration for [`start_cluster`].
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Number of shard daemons (clamped up to 1 by the ring).
    pub shards: u32,
    /// Ring seed — every shard and the router must agree on it.
    pub seed: u64,
    /// Simulation threads per shard (`--jobs`).
    pub jobs: usize,
    /// Shared on-disk store directory. All shards open the *same*
    /// directory: key-slice ownership (`with_key_owner`) keeps their
    /// disk writes disjoint. `None` = per-shard in-memory stores.
    pub cache: Option<PathBuf>,
    /// Pre-fill each shard's slice of the sweep grid (plus the
    /// default-voltage `table1`/`stalls` points) before serving.
    pub warm: bool,
    /// Serve-loop options applied to every shard and the router.
    pub serve: ServeOptions,
    /// Router bind address (shards always bind `127.0.0.1:0`).
    pub router_addr: String,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        Self {
            shards: 2,
            seed: crate::shard::DEFAULT_RING_SEED,
            jobs: Parallelism::available().count(),
            cache: None,
            warm: false,
            serve: ServeOptions::default(),
            router_addr: "127.0.0.1:0".to_string(),
        }
    }
}

/// A running in-process cluster: N shard daemons plus the router, each
/// on its own thread.
pub struct Cluster {
    router_addr: SocketAddr,
    shard_addrs: Vec<SocketAddr>,
    threads: Vec<JoinHandle<io::Result<()>>>,
}

impl Cluster {
    /// Where clients connect.
    #[must_use]
    pub fn router_addr(&self) -> SocketAddr {
        self.router_addr
    }

    /// The shard daemons' addresses, index-aligned with the ring.
    #[must_use]
    pub fn shard_addrs(&self) -> &[SocketAddr] {
        &self.shard_addrs
    }

    /// Waits for the whole cluster to exit (a client's `shutdown`
    /// request fans out through the router).
    ///
    /// # Errors
    ///
    /// Reports the first serve-loop failure or thread panic.
    pub fn join(self) -> Result<(), ClusterError> {
        let mut first_err = None;
        for t in self.threads {
            match t.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    first_err.get_or_insert(ClusterError::Serve(e));
                }
                Err(_) => {
                    first_err.get_or_insert(ClusterError::ThreadPanicked);
                }
            }
        }
        first_err.map_or(Ok(()), Err)
    }
}

/// Builds and starts a full cluster for `choice`: N shard daemons (one
/// thread each, ephemeral ports, per-slice store ownership, optional
/// per-slice warm-up) and the router (bound to
/// [`ClusterOptions::router_addr`]). Returns once every listener is
/// bound — warm-up proceeds on the shard threads, with early requests
/// queueing in the listen backlog until their shard is ready.
///
/// # Errors
///
/// Reports suite-build, store-open and bind failures.
pub fn start_cluster(choice: SuiteChoice, opts: &ClusterOptions) -> Result<Cluster, ClusterError> {
    let ring = Ring::new(opts.shards, opts.seed);
    let mut shard_addrs = Vec::with_capacity(ring.shards() as usize);
    let mut threads = Vec::with_capacity(ring.shards() as usize + 1);
    let mut anchor: Option<(CoreConfig, CycleTimeModel, TraceSpec)> = None;
    for index in 0..ring.shards() {
        let ctx = choice
            .build()
            .map_err(|e| ClusterError::Start(format!("shard {index}: suite: {e}")))?
            .with_parallelism(Parallelism::threads(opts.jobs));
        if anchor.is_none() {
            anchor = Some((ctx.core, ctx.timing, ctx.specs[0]));
        }
        let store = match &opts.cache {
            Some(dir) => ResultStore::open(dir)
                .map_err(|e| ClusterError::Start(format!("shard {index}: store: {e}")))?,
            None => ResultStore::ephemeral(),
        };
        let store = store.with_key_owner(Arc::new(move |key| ring.owns(index, key)));
        let daemon = Daemon::new(ctx.with_cache(Arc::new(store))).with_shard(index, ring.shards());
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| ClusterError::Start(format!("shard {index}: bind: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ClusterError::Start(format!("shard {index}: local addr: {e}")))?;
        shard_addrs.push(addr);
        let serve = opts.serve;
        let warm = opts.warm;
        threads.push(std::thread::spawn(move || {
            if warm {
                daemon
                    .warm_slice(&ring, index)
                    .map_err(|e| io::Error::other(e.to_string()))?;
            }
            daemon.serve_with(&listener, serve)
        }));
    }
    let Some((core, timing, spec)) = anchor else {
        return Err(ClusterError::Start(
            "cluster needs at least one shard".to_string(),
        ));
    };
    let router = Router::new(
        shard_addrs.iter().map(ToString::to_string).collect(),
        ring,
        core,
        timing,
        spec,
    );
    let listener = TcpListener::bind(&opts.router_addr).map_err(|e| {
        ClusterError::Start(format!("router: cannot bind {}: {e}", opts.router_addr))
    })?;
    let router_addr = listener
        .local_addr()
        .map_err(|e| ClusterError::Start(format!("router: local addr: {e}")))?;
    let serve = opts.serve;
    threads.push(std::thread::spawn(move || {
        router.serve_with(&listener, serve)
    }));
    Ok(Cluster {
        router_addr,
        shard_addrs,
        threads,
    })
}
