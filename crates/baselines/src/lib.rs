//! Faulty Bits and Extra Bypass — the two state-of-the-art alternatives
//! the HPCA 2010 low-Vcc paper compares IRAW avoidance against (its
//! Table 1), implemented and measurable.
//!
//! Both techniques try to clock an SRAM-bearing core above its 6σ write
//! delay. Both fail the paper's first test — *works for all SRAM blocks* —
//! which is why each design here carries a **realistic scope** (the blocks
//! it can actually cover, at which the core gains nothing) and an
//! **all-blocks hypothetical scope** (quantifying what the technique would
//! cost even if it applied everywhere).
//!
//! ```
//! use lowvcc_baselines::{FaultyBitsDesign, FaultyBitsScope};
//! use lowvcc_sram::{CycleTimeModel, Millivolts};
//!
//! let timing = CycleTimeModel::silverthorne_45nm();
//! let vcc = Millivolts::new(450)?;
//! // Realistic Faulty Bits (caches only): the register file pins the
//! // clock, so the core-level frequency gain is exactly 1.
//! let realistic = FaultyBitsDesign::four_sigma(FaultyBitsScope::CachesOnly);
//! assert_eq!(realistic.frequency_gain(&timing, vcc), 1.0);
//! # Ok::<(), lowvcc_sram::VoltageError>(())
//! ```

pub mod comparison;
pub mod extra_bypass;
pub mod faulty_bits;

pub use comparison::{
    qualitative_table, quantitative_table, quantitative_table_with, rows_from_results,
    technique_configs, QuantRow, Table1Row, TechniqueConfig,
};
pub use extra_bypass::{ExtraBypassDesign, ExtraBypassScope};
pub use faulty_bits::{FaultyBitsDesign, FaultyBitsScope};
