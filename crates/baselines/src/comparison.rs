//! Regenerates the paper's Table 1 — qualitatively and, beyond the paper,
//! quantitatively from simulation.
//!
//! Table 1 compares state-of-the-art ways to override the SRAM write
//! delay along five axes: works for all SRAM blocks, adapts to multiple
//! Vcc, hardware overhead, IPC impact, and testability. The qualitative
//! rows reproduce the published table verbatim; [`quantitative_table`]
//! backs each claim with measured numbers at a chosen voltage.

use lowvcc_core::{run_suite_with, CoreConfig, Mechanism, Parallelism, SimConfig, SimError};
use lowvcc_energy::{ExtraBypassOverhead, FaultyBitsOverhead, IrawOverhead};
use lowvcc_sram::{CycleTimeModel, Millivolts};
use lowvcc_trace::Trace;

use crate::extra_bypass::{ExtraBypassDesign, ExtraBypassScope};
use crate::faulty_bits::{FaultyBitsDesign, FaultyBitsScope};

/// One qualitative row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// Technique name.
    pub technique: &'static str,
    /// Works for all SRAM blocks in the core?
    pub works_for_all_blocks: bool,
    /// Adapts cheaply to multiple Vcc levels?
    pub adapts_to_multiple_vcc: bool,
    /// Hardware-overhead verdict.
    pub hw_overhead: &'static str,
    /// Large IPC impact?
    pub large_ipc_impact: bool,
    /// Introduces post-silicon testing indeterminism?
    pub hard_to_test: bool,
}

/// The paper's Table 1, plus the IRAW row its Section 5 concludes with.
#[must_use]
pub fn qualitative_table() -> Vec<Table1Row> {
    vec![
        Table1Row {
            technique: "Faulty Bits",
            works_for_all_blocks: false,
            adapts_to_multiple_vcc: true, // "costly": maps or re-test
            hw_overhead: "LOW (fault maps not negligible)",
            large_ipc_impact: true,
            hard_to_test: true,
        },
        Table1Row {
            technique: "Extra Bypass",
            works_for_all_blocks: false,
            adapts_to_multiple_vcc: false,
            hw_overhead: "HIGH (wide latches, wires)",
            large_ipc_impact: true,
            hard_to_test: false,
        },
        Table1Row {
            technique: "IRAW avoidance",
            works_for_all_blocks: true,
            adapts_to_multiple_vcc: true,
            hw_overhead: "NEGLIGIBLE (<0.1% area)",
            large_ipc_impact: false,
            hard_to_test: false,
        },
    ]
}

/// One measured row of the quantitative companion table.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantRow {
    /// Technique name.
    pub technique: String,
    /// Core-level clock-frequency gain over the write-limited baseline.
    pub frequency_gain: f64,
    /// Measured performance speedup over the baseline (total time).
    pub speedup: f64,
    /// Measured IPC relative to the baseline's IPC.
    pub relative_ipc: f64,
    /// Extra area as a fraction of core SRAM.
    pub area_fraction: f64,
    /// Dynamic-energy multiplier of the extra hardware.
    pub energy_factor: f64,
    /// Testing indeterminism?
    pub hard_to_test: bool,
}

/// Measures every technique at `vcc` over `traces`.
///
/// Rows: write-limited baseline (reference), realistic Faulty Bits
/// (caches only), hypothetical all-block Faulty Bits at 4σ, realistic
/// Extra Bypass (RF only), hypothetical all-block Extra Bypass, and IRAW
/// avoidance.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn quantitative_table(
    core: CoreConfig,
    timing: &CycleTimeModel,
    vcc: Millivolts,
    traces: &[Trace],
) -> Result<Vec<QuantRow>, SimError> {
    quantitative_table_with(core, timing, vcc, traces, Parallelism::sequential())
}

/// [`quantitative_table`], with each technique's suite fanned out across
/// `par` worker threads. Output is identical for any `par`.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn quantitative_table_with(
    core: CoreConfig,
    timing: &CycleTimeModel,
    vcc: Millivolts,
    traces: &[Trace],
    par: Parallelism,
) -> Result<Vec<QuantRow>, SimError> {
    let base_cfg = SimConfig::at_vcc(core, timing, vcc, Mechanism::Baseline);
    let base = run_suite_with(&base_cfg, traces, par)?;
    let base_time = base.total_seconds();
    let base_ipc = base.aggregate_ipc();

    let mut rows = Vec::new();
    let mut push = |name: &str,
                    cfg: SimConfig,
                    area: f64,
                    energy: f64,
                    hard_to_test: bool|
     -> Result<(), SimError> {
        let suite = run_suite_with(&cfg, traces, par)?;
        rows.push(QuantRow {
            technique: name.to_string(),
            frequency_gain: base_cfg.cycle_time / cfg.cycle_time,
            speedup: base_time / suite.total_seconds(),
            relative_ipc: suite.aggregate_ipc() / base_ipc,
            area_fraction: area,
            energy_factor: energy,
            hard_to_test,
        });
        Ok(())
    };

    push(
        "baseline (6-sigma write-limited)",
        base_cfg.clone(),
        0.0,
        1.0,
        false,
    )?;

    let fb_real = FaultyBitsDesign::four_sigma(FaultyBitsScope::CachesOnly);
    push(
        "faulty bits 4-sigma (caches only, realistic)",
        fb_real.sim_config(core, timing, vcc, 1),
        FaultyBitsOverhead::silverthorne().area_fraction(),
        1.0,
        true,
    )?;

    let fb_hyp = FaultyBitsDesign::four_sigma(FaultyBitsScope::AllBlocksHypothetical);
    push(
        "faulty bits 4-sigma (all blocks, hypothetical)",
        fb_hyp.sim_config(core, timing, vcc, 1),
        FaultyBitsOverhead::silverthorne().area_fraction(),
        1.0,
        true,
    )?;

    let eb_real = ExtraBypassDesign::two_cycle(ExtraBypassScope::RegisterFileOnly);
    push(
        "extra bypass (RF only, realistic)",
        eb_real.sim_config(core, timing, vcc),
        ExtraBypassOverhead::silverthorne().area_fraction(),
        ExtraBypassOverhead::silverthorne().dynamic_energy_factor(),
        false,
    )?;

    let eb_hyp = ExtraBypassDesign::two_cycle(ExtraBypassScope::AllBlocksHypothetical);
    push(
        "extra bypass (all blocks, hypothetical)",
        eb_hyp.sim_config(core, timing, vcc),
        ExtraBypassOverhead::silverthorne().area_fraction(),
        ExtraBypassOverhead::silverthorne().dynamic_energy_factor(),
        false,
    )?;

    let iraw_cfg = SimConfig::at_vcc(core, timing, vcc, Mechanism::Iraw);
    push(
        "IRAW avoidance (this paper)",
        iraw_cfg,
        IrawOverhead::silverthorne().area_fraction(),
        IrawOverhead::silverthorne().dynamic_energy_factor(),
        false,
    )?;

    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowvcc_sram::voltage::mv;
    use lowvcc_trace::{TraceSpec, WorkloadFamily};

    #[test]
    fn qualitative_rows_match_the_paper() {
        let t = qualitative_table();
        assert_eq!(t.len(), 3);
        let fb = &t[0];
        assert!(!fb.works_for_all_blocks && fb.hard_to_test);
        let eb = &t[1];
        assert!(!eb.works_for_all_blocks && !eb.adapts_to_multiple_vcc && !eb.hard_to_test);
        let iraw = &t[2];
        assert!(iraw.works_for_all_blocks && iraw.adapts_to_multiple_vcc && !iraw.hard_to_test);
    }

    #[test]
    fn quantitative_table_tells_the_papers_story() {
        let timing = CycleTimeModel::silverthorne_45nm();
        let traces: Vec<Trace> = vec![
            TraceSpec::new(WorkloadFamily::SpecInt, 0, 12_000)
                .build()
                .unwrap(),
            TraceSpec::new(WorkloadFamily::Multimedia, 1, 12_000)
                .build()
                .unwrap(),
        ];
        let rows =
            quantitative_table(CoreConfig::silverthorne(), &timing, mv(475), &traces).unwrap();
        assert_eq!(rows.len(), 6);
        let by_name = |s: &str| {
            rows.iter()
                .find(|r| r.technique.contains(s))
                .unwrap_or_else(|| panic!("row {s}"))
        };
        // Realistic alternatives cannot speed the core up…
        assert!((by_name("caches only").speedup - 1.0).abs() < 0.02);
        assert!(by_name("RF only").speedup <= 1.02);
        // …IRAW can, and decisively.
        let iraw = by_name("IRAW");
        assert!(iraw.speedup > 1.3, "IRAW speedup {:.3}", iraw.speedup);
        // The hypothetical variants gain frequency but pay IPC.
        let eb = by_name("extra bypass (all blocks");
        assert!(eb.frequency_gain > 1.2);
        assert!(eb.relative_ipc < 1.0, "write-port contention costs IPC");
        // Overheads ordered as the paper argues: IRAW ≪ fault maps.
        assert!(iraw.area_fraction < by_name("faulty bits").area_fraction);
    }
}
