//! Regenerates the paper's Table 1 — qualitatively and, beyond the paper,
//! quantitatively from simulation.
//!
//! Table 1 compares state-of-the-art ways to override the SRAM write
//! delay along five axes: works for all SRAM blocks, adapts to multiple
//! Vcc, hardware overhead, IPC impact, and testability. The qualitative
//! rows reproduce the published table verbatim; [`quantitative_table`]
//! backs each claim with measured numbers at a chosen voltage.

use lowvcc_core::{
    run_suite_with, CoreConfig, Mechanism, Parallelism, SimConfig, SimError, SuiteResult,
};
use lowvcc_energy::{ExtraBypassOverhead, FaultyBitsOverhead, IrawOverhead};
use lowvcc_sram::{CycleTimeModel, Millivolts};
use lowvcc_trace::Trace;

use crate::extra_bypass::{ExtraBypassDesign, ExtraBypassScope};
use crate::faulty_bits::{FaultyBitsDesign, FaultyBitsScope};

/// One qualitative row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// Technique name.
    pub technique: &'static str,
    /// Works for all SRAM blocks in the core?
    pub works_for_all_blocks: bool,
    /// Adapts cheaply to multiple Vcc levels?
    pub adapts_to_multiple_vcc: bool,
    /// Hardware-overhead verdict.
    pub hw_overhead: &'static str,
    /// Large IPC impact?
    pub large_ipc_impact: bool,
    /// Introduces post-silicon testing indeterminism?
    pub hard_to_test: bool,
}

/// The paper's Table 1, plus the IRAW row its Section 5 concludes with.
#[must_use]
pub fn qualitative_table() -> Vec<Table1Row> {
    vec![
        Table1Row {
            technique: "Faulty Bits",
            works_for_all_blocks: false,
            adapts_to_multiple_vcc: true, // "costly": maps or re-test
            hw_overhead: "LOW (fault maps not negligible)",
            large_ipc_impact: true,
            hard_to_test: true,
        },
        Table1Row {
            technique: "Extra Bypass",
            works_for_all_blocks: false,
            adapts_to_multiple_vcc: false,
            hw_overhead: "HIGH (wide latches, wires)",
            large_ipc_impact: true,
            hard_to_test: false,
        },
        Table1Row {
            technique: "IRAW avoidance",
            works_for_all_blocks: true,
            adapts_to_multiple_vcc: true,
            hw_overhead: "NEGLIGIBLE (<0.1% area)",
            large_ipc_impact: false,
            hard_to_test: false,
        },
    ]
}

/// One measured row of the quantitative companion table.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantRow {
    /// Technique name.
    pub technique: String,
    /// Core-level clock-frequency gain over the write-limited baseline.
    pub frequency_gain: f64,
    /// Measured performance speedup over the baseline (total time).
    pub speedup: f64,
    /// Measured IPC relative to the baseline's IPC.
    pub relative_ipc: f64,
    /// Extra area as a fraction of core SRAM.
    pub area_fraction: f64,
    /// Dynamic-energy multiplier of the extra hardware.
    pub energy_factor: f64,
    /// Testing indeterminism?
    pub hard_to_test: bool,
}

/// One technique of the quantitative comparison: its name, the exact
/// [`SimConfig`] it runs under, and its bookkept overheads.
///
/// Exposing the configuration (rather than only running it) lets
/// callers route each suite run through their own executor — the bench
/// crate's result cache replays Table 1 without re-simulating.
#[derive(Debug, Clone, PartialEq)]
pub struct TechniqueConfig {
    /// Technique name (row label).
    pub name: &'static str,
    /// The configuration the technique runs under.
    pub cfg: SimConfig,
    /// Extra area as a fraction of core SRAM.
    pub area_fraction: f64,
    /// Dynamic-energy multiplier of the extra hardware.
    pub energy_factor: f64,
    /// Testing indeterminism?
    pub hard_to_test: bool,
}

/// The six techniques of the quantitative Table 1 companion at `vcc`,
/// in row order. The first entry is always the write-limited baseline —
/// [`rows_from_results`] uses it as the reference.
#[must_use]
pub fn technique_configs(
    core: CoreConfig,
    timing: &CycleTimeModel,
    vcc: Millivolts,
) -> Vec<TechniqueConfig> {
    let fb_real = FaultyBitsDesign::four_sigma(FaultyBitsScope::CachesOnly);
    let fb_hyp = FaultyBitsDesign::four_sigma(FaultyBitsScope::AllBlocksHypothetical);
    let eb_real = ExtraBypassDesign::two_cycle(ExtraBypassScope::RegisterFileOnly);
    let eb_hyp = ExtraBypassDesign::two_cycle(ExtraBypassScope::AllBlocksHypothetical);
    vec![
        TechniqueConfig {
            name: "baseline (6-sigma write-limited)",
            cfg: SimConfig::at_vcc(core, timing, vcc, Mechanism::Baseline),
            area_fraction: 0.0,
            energy_factor: 1.0,
            hard_to_test: false,
        },
        TechniqueConfig {
            name: "faulty bits 4-sigma (caches only, realistic)",
            cfg: fb_real.sim_config(core, timing, vcc, 1),
            area_fraction: FaultyBitsOverhead::silverthorne().area_fraction(),
            energy_factor: 1.0,
            hard_to_test: true,
        },
        TechniqueConfig {
            name: "faulty bits 4-sigma (all blocks, hypothetical)",
            cfg: fb_hyp.sim_config(core, timing, vcc, 1),
            area_fraction: FaultyBitsOverhead::silverthorne().area_fraction(),
            energy_factor: 1.0,
            hard_to_test: true,
        },
        TechniqueConfig {
            name: "extra bypass (RF only, realistic)",
            cfg: eb_real.sim_config(core, timing, vcc),
            area_fraction: ExtraBypassOverhead::silverthorne().area_fraction(),
            energy_factor: ExtraBypassOverhead::silverthorne().dynamic_energy_factor(),
            hard_to_test: false,
        },
        TechniqueConfig {
            name: "extra bypass (all blocks, hypothetical)",
            cfg: eb_hyp.sim_config(core, timing, vcc),
            area_fraction: ExtraBypassOverhead::silverthorne().area_fraction(),
            energy_factor: ExtraBypassOverhead::silverthorne().dynamic_energy_factor(),
            hard_to_test: false,
        },
        TechniqueConfig {
            name: "IRAW avoidance (this paper)",
            cfg: SimConfig::at_vcc(core, timing, vcc, Mechanism::Iraw),
            area_fraction: IrawOverhead::silverthorne().area_fraction(),
            energy_factor: IrawOverhead::silverthorne().dynamic_energy_factor(),
            hard_to_test: false,
        },
    ]
}

/// Assembles the quantitative rows from suite results paired one-to-one
/// with [`technique_configs`] output (`suites[0]` must be the baseline).
///
/// # Panics
///
/// Panics if `configs` is empty or the two slices differ in length.
#[must_use]
pub fn rows_from_results(configs: &[TechniqueConfig], suites: &[SuiteResult]) -> Vec<QuantRow> {
    assert_eq!(
        configs.len(),
        suites.len(),
        "one suite result per technique"
    );
    let base_cfg = &configs.first().expect("baseline row present").cfg;
    let base_time = suites[0].total_seconds();
    let base_ipc = suites[0].aggregate_ipc();
    configs
        .iter()
        .zip(suites)
        .map(|(tc, suite)| QuantRow {
            technique: tc.name.to_string(),
            frequency_gain: base_cfg.cycle_time / tc.cfg.cycle_time,
            speedup: base_time / suite.total_seconds(),
            relative_ipc: suite.aggregate_ipc() / base_ipc,
            area_fraction: tc.area_fraction,
            energy_factor: tc.energy_factor,
            hard_to_test: tc.hard_to_test,
        })
        .collect()
}

/// Measures every technique at `vcc` over `traces`.
///
/// Rows: write-limited baseline (reference), realistic Faulty Bits
/// (caches only), hypothetical all-block Faulty Bits at 4σ, realistic
/// Extra Bypass (RF only), hypothetical all-block Extra Bypass, and IRAW
/// avoidance.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn quantitative_table(
    core: CoreConfig,
    timing: &CycleTimeModel,
    vcc: Millivolts,
    traces: &[Trace],
) -> Result<Vec<QuantRow>, SimError> {
    quantitative_table_with(core, timing, vcc, traces, Parallelism::sequential())
}

/// [`quantitative_table`], with each technique's suite fanned out across
/// `par` worker threads. Output is identical for any `par`.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn quantitative_table_with(
    core: CoreConfig,
    timing: &CycleTimeModel,
    vcc: Millivolts,
    traces: &[Trace],
    par: Parallelism,
) -> Result<Vec<QuantRow>, SimError> {
    let configs = technique_configs(core, timing, vcc);
    let mut suites = Vec::with_capacity(configs.len());
    for tc in &configs {
        suites.push(run_suite_with(&tc.cfg, traces, par)?);
    }
    Ok(rows_from_results(&configs, &suites))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowvcc_sram::voltage::mv;
    use lowvcc_trace::{TraceSpec, WorkloadFamily};

    #[test]
    fn qualitative_rows_match_the_paper() {
        let t = qualitative_table();
        assert_eq!(t.len(), 3);
        let fb = &t[0];
        assert!(!fb.works_for_all_blocks && fb.hard_to_test);
        let eb = &t[1];
        assert!(!eb.works_for_all_blocks && !eb.adapts_to_multiple_vcc && !eb.hard_to_test);
        let iraw = &t[2];
        assert!(iraw.works_for_all_blocks && iraw.adapts_to_multiple_vcc && !iraw.hard_to_test);
    }

    #[test]
    fn quantitative_table_tells_the_papers_story() {
        let timing = CycleTimeModel::silverthorne_45nm();
        let traces: Vec<Trace> = vec![
            TraceSpec::new(WorkloadFamily::SpecInt, 0, 12_000)
                .build()
                .unwrap(),
            TraceSpec::new(WorkloadFamily::Multimedia, 1, 12_000)
                .build()
                .unwrap(),
        ];
        let rows =
            quantitative_table(CoreConfig::silverthorne(), &timing, mv(475), &traces).unwrap();
        assert_eq!(rows.len(), 6);
        let by_name = |s: &str| {
            rows.iter()
                .find(|r| r.technique.contains(s))
                .unwrap_or_else(|| panic!("row {s}"))
        };
        // Realistic alternatives cannot speed the core up…
        assert!((by_name("caches only").speedup - 1.0).abs() < 0.02);
        assert!(by_name("RF only").speedup <= 1.02);
        // …IRAW can, and decisively.
        let iraw = by_name("IRAW");
        assert!(iraw.speedup > 1.3, "IRAW speedup {:.3}", iraw.speedup);
        // The hypothetical variants gain frequency but pay IPC.
        let eb = by_name("extra bypass (all blocks");
        assert!(eb.frequency_gain > 1.2);
        assert!(eb.relative_ipc < 1.0, "write-port contention costs IPC");
        // Overheads ordered as the paper argues: IRAW ≪ fault maps.
        assert!(iraw.area_fraction < by_name("faulty bits").area_fraction);
    }
}
