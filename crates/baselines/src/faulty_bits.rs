//! The **Faulty Bits** baseline (paper §2.2, Table 1).
//!
//! Instead of margining every SRAM cell at 6σ, clock the array faster
//! (e.g., at the 4σ write delay) and disable the cache lines containing
//! cells beyond the margin. The paper's Table 1 charges this technique
//! with four costs, all modelled here:
//!
//! * **Not applicable to all blocks** — the register file of an in-order
//!   core needs *every* entry, so with [`FaultyBitsScope::CachesOnly`] the
//!   core clock stays limited by the RF's full 6σ write delay and the
//!   technique gains nothing at the core level. The
//!   [`FaultyBitsScope::AllBlocksHypothetical`] scope quantifies the
//!   what-if where faults were tolerable everywhere.
//! * **Fault maps** — one disable bit per line per supported Vcc level
//!   (~50× the IRAW hardware; see `lowvcc_energy::FaultyBitsOverhead`).
//! * **IPC impact** — disabled lines shrink cache capacity; measured by
//!   simulation via `SimConfig::disabled_lines`.
//! * **Testing indeterminism** — disabled hardware makes lock-step
//!   multi-core test comparison ambiguous (a flag here; nothing to
//!   simulate).

use lowvcc_core::{CoreConfig, Mechanism, SimConfig};
use lowvcc_sram::variation::{cell_fail_probability, line_fail_probability};
use lowvcc_sram::{Bitcell8T, CycleTimeModel, Millivolts, Picoseconds};

/// Which blocks the fault maps may cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultyBitsScope {
    /// Realistic: caches only. The RF still needs 6σ margin, so the core
    /// clock cannot be raised — the paper's "does not work for all SRAM
    /// blocks" row.
    CachesOnly,
    /// What-if: every block tolerates faults, so the clock runs at the
    /// reduced-σ write delay and the caches lose the disabled lines.
    AllBlocksHypothetical,
}

/// A Faulty Bits design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultyBitsDesign {
    /// Write-margin in σ (the paper's example alternative to 6σ: 4σ).
    pub sigma: f64,
    /// Block coverage.
    pub scope: FaultyBitsScope,
}

impl FaultyBitsDesign {
    /// The canonical 4σ design discussed by the paper.
    #[must_use]
    pub fn four_sigma(scope: FaultyBitsScope) -> Self {
        Self { sigma: 4.0, scope }
    }

    /// Cycle time at `vcc` under this design.
    #[must_use]
    pub fn cycle_time(&self, timing: &CycleTimeModel, vcc: Millivolts) -> Picoseconds {
        match self.scope {
            FaultyBitsScope::CachesOnly => timing.baseline_cycle(vcc),
            FaultyBitsScope::AllBlocksHypothetical => {
                timing.write_limited_cycle_at_sigma(vcc, self.sigma)
            }
        }
    }

    /// Clock-frequency gain over the 6σ write-limited baseline.
    #[must_use]
    pub fn frequency_gain(&self, timing: &CycleTimeModel, vcc: Millivolts) -> f64 {
        timing.baseline_cycle(vcc) / self.cycle_time(timing, vcc)
    }

    /// Per-cell write-fail probability at this design's clock.
    #[must_use]
    pub fn cell_fail_probability(&self, timing: &CycleTimeModel, vcc: Millivolts) -> f64 {
        let budget = self.write_budget(timing, vcc);
        cell_fail_probability(timing.bitcell(), vcc, budget)
    }

    /// Bitcell write-time budget: half the cycle minus wordline activation.
    fn write_budget(&self, timing: &CycleTimeModel, vcc: Millivolts) -> Picoseconds {
        let phase = self.cycle_time(timing, vcc) * 0.5;
        let wl = timing.wordline_delay(vcc);
        Picoseconds::new((phase - wl).picos().max(1.0))
    }

    /// Expected number of disabled lines in `(IL0, DL0, UL1)` at `vcc`
    /// (64-byte lines ⇒ 538 bits of data+tag per line).
    #[must_use]
    pub fn expected_disabled_lines(
        &self,
        timing: &CycleTimeModel,
        vcc: Millivolts,
        core: &CoreConfig,
    ) -> (usize, usize, usize) {
        let budget = self.write_budget(timing, vcc);
        let bits_per_line = 512 + 26;
        let p = line_fail_probability(timing.bitcell(), vcc, budget, bits_per_line);
        let lines = |cache: &lowvcc_uarch::cache::CacheConfig| {
            let n = cache.size_bytes / cache.line_bytes;
            // Expected value, rounded to the nearest whole line.
            (p * n as f64).round() as usize
        };
        (lines(&core.il0), lines(&core.dl0), lines(&core.ul1))
    }

    /// Builds the simulation configuration for this design at `vcc`.
    #[must_use]
    pub fn sim_config(
        &self,
        core: CoreConfig,
        timing: &CycleTimeModel,
        vcc: Millivolts,
        fault_seed: u64,
    ) -> SimConfig {
        let mut cfg = SimConfig::at_vcc(core, timing, vcc, Mechanism::Baseline);
        cfg.cycle_time = self.cycle_time(timing, vcc);
        cfg.disabled_lines = self.expected_disabled_lines(timing, vcc, &core);
        cfg.fault_seed = fault_seed;
        cfg
    }

    /// Whether this design introduces post-silicon testing indeterminism
    /// (Table 1's "hard to test" row): disabled hardware differs per die.
    #[must_use]
    pub fn testing_indeterminism(&self) -> bool {
        true
    }
}

/// Convenience re-export: the bitcell the σ math runs on.
#[must_use]
pub fn bitcell() -> Bitcell8T {
    Bitcell8T::silverthorne_45nm()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowvcc_sram::voltage::mv;

    fn timing() -> CycleTimeModel {
        CycleTimeModel::silverthorne_45nm()
    }

    #[test]
    fn caches_only_scope_gains_nothing() {
        // The paper's core argument: the RF pins the clock, so realistic
        // Faulty Bits cannot raise core frequency at all.
        let d = FaultyBitsDesign::four_sigma(FaultyBitsScope::CachesOnly);
        for v in [575, 500, 450, 400] {
            assert!((d.frequency_gain(&timing(), mv(v)) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn hypothetical_scope_buys_frequency_with_faults() {
        let d = FaultyBitsDesign::four_sigma(FaultyBitsScope::AllBlocksHypothetical);
        let t = timing();
        let v = mv(450);
        let gain = d.frequency_gain(&t, v);
        assert!(gain > 1.1, "4σ margin must clock faster, got {gain:.3}");
        // And the price: a real fail probability per cell near Φ̄(4).
        let p = d.cell_fail_probability(&t, v);
        assert!(p > 1e-6 && p < 1e-3, "p_cell {p:e}");
        let (il0, dl0, ul1) = d.expected_disabled_lines(&t, v, &CoreConfig::silverthorne());
        assert!(ul1 > il0, "the big UL1 loses the most lines");
        assert!(il0 + dl0 + ul1 > 0, "some lines must be mapped out");
    }

    #[test]
    fn six_sigma_design_disables_nothing() {
        let d = FaultyBitsDesign {
            sigma: 6.0,
            scope: FaultyBitsScope::AllBlocksHypothetical,
        };
        let t = timing();
        let (il0, dl0, ul1) = d.expected_disabled_lines(&t, mv(500), &CoreConfig::silverthorne());
        assert_eq!((il0, dl0, ul1), (0, 0, 0));
        assert!((d.frequency_gain(&t, mv(500)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sim_config_carries_faults_and_clock() {
        let d = FaultyBitsDesign::four_sigma(FaultyBitsScope::AllBlocksHypothetical);
        let t = timing();
        let cfg = d.sim_config(CoreConfig::silverthorne(), &t, mv(425), 7);
        assert!(cfg.cycle_time < t.baseline_cycle(mv(425)));
        assert!(!cfg.iraw_active(), "Faulty Bits needs no IRAW stalls");
        assert_eq!(cfg.fault_seed, 7);
        cfg.validate().unwrap();
        assert!(d.testing_indeterminism());
    }

    #[test]
    fn lower_sigma_means_more_faults_and_more_speed() {
        let t = timing();
        let v = mv(450);
        let d3 = FaultyBitsDesign {
            sigma: 3.0,
            scope: FaultyBitsScope::AllBlocksHypothetical,
        };
        let d5 = FaultyBitsDesign {
            sigma: 5.0,
            scope: FaultyBitsScope::AllBlocksHypothetical,
        };
        assert!(d3.frequency_gain(&t, v) > d5.frequency_gain(&t, v));
        assert!(d3.cell_fail_probability(&t, v) > d5.cell_fail_probability(&t, v));
    }
}
