//! The **Extra Bypass** baseline (paper §2.2, Table 1).
//!
//! Clock above the write delay and pipeline each SRAM write across two
//! cycles, adding a bypass level so consumers can still obtain in-flight
//! values. The paper's Table 1 charges it with:
//!
//! * **Not applicable to all blocks** — bypassing requires knowing *who*
//!   will consume the written data; cache-like structures learn addresses
//!   too late. With [`ExtraBypassScope::RegisterFileOnly`] the caches pin
//!   the clock at the full write delay and the core gains nothing.
//! * **No Vcc adaptability** — the extra latches/wires are in place (and
//!   burning energy, and deepening the bypass mux) at *every* Vcc level.
//! * **High hardware overhead** — up to 128/256-bit latches per write
//!   port (see `lowvcc_energy::ExtraBypassOverhead`: most of a datapath's
//!   worth of latches).
//! * **IPC impact** — each write occupies its port for two cycles; the
//!   resulting contention is simulated via
//!   `SimConfig::extra_write_port_cycles`.

use lowvcc_core::{CoreConfig, Mechanism, SimConfig};
use lowvcc_energy::ExtraBypassOverhead;
use lowvcc_sram::fo4::PHASE_FO4;
use lowvcc_sram::{CycleTimeModel, Millivolts, Picoseconds};

/// Which blocks can pipeline their writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtraBypassScope {
    /// Realistic: only the register file (consumers known at issue).
    /// Cache fills still need single-cycle writes, pinning the clock.
    RegisterFileOnly,
    /// What-if: every SRAM write pipelines across two cycles.
    AllBlocksHypothetical,
}

/// An Extra Bypass design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtraBypassDesign {
    /// Extra bypass network levels added (1 in the paper's discussion).
    pub extra_levels: u32,
    /// Cycles a write occupies its port (2 = pipelined over two cycles).
    pub write_pipeline_cycles: u32,
    /// Block coverage.
    pub scope: ExtraBypassScope,
}

impl ExtraBypassDesign {
    /// The canonical two-cycle-write, one-extra-level design.
    #[must_use]
    pub fn two_cycle(scope: ExtraBypassScope) -> Self {
        Self {
            extra_levels: 1,
            write_pipeline_cycles: 2,
            scope,
        }
    }

    /// Cycle time at `vcc`: the deeper bypass mux adds FO4 stages to the
    /// logic path, and a write pipelined over `k` cycles has `2k − 1`
    /// phases to finish (it starts in the second phase of its first
    /// cycle).
    #[must_use]
    pub fn cycle_time(&self, timing: &CycleTimeModel, vcc: Millivolts) -> Picoseconds {
        let mux_factor = f64::from(PHASE_FO4 + self.extra_levels) / f64::from(PHASE_FO4);
        let logic_phase = timing.phase(vcc).picos() * mux_factor;
        let read_phase = timing.read_phase(vcc).picos();
        let phase = match self.scope {
            ExtraBypassScope::RegisterFileOnly => {
                // Cache-like blocks cannot pipeline writes: the full write
                // path still limits the phase.
                logic_phase
                    .max(read_phase)
                    .max(timing.write_phase(vcc).picos())
            }
            ExtraBypassScope::AllBlocksHypothetical => {
                let phases_available = f64::from(2 * self.write_pipeline_cycles - 1);
                logic_phase
                    .max(read_phase)
                    .max(timing.write_phase(vcc).picos() / phases_available)
            }
        };
        Picoseconds::new(phase * 2.0)
    }

    /// Clock-frequency gain over the write-limited baseline.
    #[must_use]
    pub fn frequency_gain(&self, timing: &CycleTimeModel, vcc: Millivolts) -> f64 {
        timing.baseline_cycle(vcc) / self.cycle_time(timing, vcc)
    }

    /// The hardware inventory of this design.
    #[must_use]
    pub fn overhead(&self) -> ExtraBypassOverhead {
        ExtraBypassOverhead {
            extra_levels: u64::from(self.extra_levels),
            ..ExtraBypassOverhead::silverthorne()
        }
    }

    /// Builds the simulation configuration at `vcc`: faster clock, an
    /// extra bypass level in the scoreboard patterns, and two-cycle write
    /// ports.
    #[must_use]
    pub fn sim_config(
        &self,
        core: CoreConfig,
        timing: &CycleTimeModel,
        vcc: Millivolts,
    ) -> SimConfig {
        let mut core = core;
        core.bypass_levels += self.extra_levels;
        let mut cfg = SimConfig::at_vcc(core, timing, vcc, Mechanism::Baseline);
        cfg.cycle_time = self.cycle_time(timing, vcc);
        cfg.extra_write_port_cycles = self.write_pipeline_cycles - 1;
        cfg
    }

    /// Extra Bypass keeps testing deterministic (Table 1's one advantage).
    #[must_use]
    pub fn testing_indeterminism(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowvcc_sram::voltage::mv;

    fn timing() -> CycleTimeModel {
        CycleTimeModel::silverthorne_45nm()
    }

    #[test]
    fn rf_only_scope_gains_nothing() {
        let d = ExtraBypassDesign::two_cycle(ExtraBypassScope::RegisterFileOnly);
        let t = timing();
        for v in [575, 500, 450, 400] {
            let gain = d.frequency_gain(&t, mv(v));
            assert!(
                gain <= 1.0 + 1e-12,
                "caches pin the clock; got gain {gain:.3} at {v} mV"
            );
        }
    }

    #[test]
    fn hypothetical_scope_gains_but_pays_mux_delay() {
        let d = ExtraBypassDesign::two_cycle(ExtraBypassScope::AllBlocksHypothetical);
        let t = timing();
        let gain_500 = d.frequency_gain(&t, mv(500));
        assert!(
            gain_500 > 1.3,
            "two-cycle writes unlock the clock: {gain_500:.3}"
        );
        // At high Vcc (logic-limited) the deeper mux makes it *slower*
        // than the baseline — the "costs paid at any Vcc level" row.
        let gain_700 = d.frequency_gain(&t, mv(700));
        assert!(gain_700 < 1.0, "mux penalty at 700 mV: {gain_700:.3}");
    }

    #[test]
    fn sim_config_wires_contention_and_bypass() {
        let d = ExtraBypassDesign::two_cycle(ExtraBypassScope::AllBlocksHypothetical);
        let t = timing();
        let cfg = d.sim_config(CoreConfig::silverthorne(), &t, mv(500));
        assert_eq!(cfg.extra_write_port_cycles, 1);
        assert_eq!(cfg.core.bypass_levels, 2);
        assert!(!cfg.iraw_active());
        cfg.validate().unwrap();
        assert!(!d.testing_indeterminism());
    }

    #[test]
    fn overhead_is_datapath_scale() {
        let d = ExtraBypassDesign::two_cycle(ExtraBypassScope::AllBlocksHypothetical);
        assert!(d.overhead().datapath_area_fraction() > 0.5);
    }

    #[test]
    fn deeper_write_pipelines_relax_the_write_constraint() {
        let t = timing();
        let v = mv(400);
        let two = ExtraBypassDesign::two_cycle(ExtraBypassScope::AllBlocksHypothetical);
        let three = ExtraBypassDesign {
            write_pipeline_cycles: 3,
            ..two
        };
        assert!(three.cycle_time(&t, v) <= two.cycle_time(&t, v));
    }
}
