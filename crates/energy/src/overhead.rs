//! Extra-hardware inventories: area and energy overhead of each mechanism.
//!
//! The paper estimates its IRAW hardware at latch-sized bits (citing latch
//! designs \[16, 23\]) and applies a *pessimistic 20× activity factor* for
//! power, concluding **<0.1% area (0.03%) and <1% energy** overhead. This
//! module reproduces that accounting from an explicit bit inventory, and
//! provides the analogous inventories for the two Table 1 comparators
//! (Faulty Bits fault maps, Extra Bypass latches/wires).

use lowvcc_sram::array::total_core_sram_bits;

/// Area of a latch bit relative to an 8-T SRAM bitcell.
pub const LATCH_AREA_FACTOR: f64 = 4.0;

/// The paper's pessimistic switching-activity factor for the extra
/// hardware, relative to an average core SRAM bit.
pub const ACTIVITY_FACTOR: f64 = 20.0;

/// Bit inventory of the IRAW avoidance hardware (paper §4).
///
/// ```
/// use lowvcc_energy::IrawOverhead;
///
/// let ovh = IrawOverhead::silverthorne();
/// // Paper §5.3: ~0.03% extra area, <1% extra energy.
/// assert!(ovh.area_fraction() < 0.001);
/// assert!(ovh.dynamic_energy_factor() < 1.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrawOverhead {
    /// Scoreboard shift-register extension: 2 extra bits (1 bypass level +
    /// 1 bubble cycle) per logical register.
    pub scoreboard_bits: u64,
    /// IQ occupancy threshold logic of Figure 9 (adders, comparator, `N`
    /// register, `stall issue?` flag), in latch-bit equivalents.
    pub iq_logic_bits: u64,
    /// Store Table: `stores/cycle × N_max` entries of valid + address +
    /// widest store data (paper §4.4), built from latch cells.
    pub stable_bits: u64,
    /// Post-fill stall counters for the infrequently written blocks.
    pub stall_counter_bits: u64,
    /// Per-Vcc configuration registers (`N`, enables).
    pub config_bits: u64,
}

impl IrawOverhead {
    /// The Silverthorne inventory used by the paper's implementation:
    /// 64 logical registers, 32-entry IQ, 1 store/cycle with `N_max = 2`,
    /// six stall-guarded blocks.
    #[must_use]
    pub fn silverthorne() -> Self {
        Self {
            scoreboard_bits: 64 * 2,
            iq_logic_bits: 24,
            stable_bits: 2 * (1 + 32 + 64),
            stall_counter_bits: 6 * 2,
            config_bits: 8,
        }
    }

    /// Total extra latch bits.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.scoreboard_bits
            + self.iq_logic_bits
            + self.stable_bits
            + self.stall_counter_bits
            + self.config_bits
    }

    /// Extra area as a fraction of total core SRAM area
    /// (latch bits weighted by [`LATCH_AREA_FACTOR`]).
    #[must_use]
    pub fn area_fraction(&self) -> f64 {
        self.total_bits() as f64 * LATCH_AREA_FACTOR / total_core_sram_bits() as f64
    }

    /// Multiplier on core dynamic energy from the extra hardware, using the
    /// paper's pessimistic 20× activity factor.
    #[must_use]
    pub fn dynamic_energy_factor(&self) -> f64 {
        1.0 + self.total_bits() as f64 * LATCH_AREA_FACTOR * ACTIVITY_FACTOR
            / total_core_sram_bits() as f64
    }
}

impl Default for IrawOverhead {
    fn default() -> Self {
        Self::silverthorne()
    }
}

/// Fault-map storage for the Faulty Bits baseline (paper §2.2, Table 1).
///
/// Faulty Bits needs one disable bit per cache line *per supported Vcc
/// level* (or a re-test at every level change). The paper flags this cost
/// as "may not be negligible" — it is ~50× the IRAW hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultyBitsOverhead {
    /// Cache lines covered by the fault maps (IL0 + DL0 + UL1).
    pub lines: u64,
    /// Number of Vcc levels with a stored map.
    pub vcc_levels: u32,
}

impl FaultyBitsOverhead {
    /// Silverthorne caches (512 + 384 + 8192 lines) with one map per
    /// low-Vcc level of the paper sweep (575..400 mV, 8 levels).
    #[must_use]
    pub fn silverthorne() -> Self {
        Self {
            lines: 512 + 384 + 8192,
            vcc_levels: 8,
        }
    }

    /// Total fault-map SRAM bits.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.lines * u64::from(self.vcc_levels)
    }

    /// Extra area as a fraction of total core SRAM (maps live in SRAM, so
    /// no latch factor applies).
    #[must_use]
    pub fn area_fraction(&self) -> f64 {
        self.total_bits() as f64 / total_core_sram_bits() as f64
    }
}

impl Default for FaultyBitsOverhead {
    fn default() -> Self {
        Self::silverthorne()
    }
}

/// Extra Bypass hardware (paper §2.2, Table 1): pipelining writes across
/// two cycles requires an additional bypass level — wide latches and muxes
/// in the execution datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtraBypassOverhead {
    /// Datapath width latched per write port (the paper: "up to 128 or
    /// 256-bit latches for SIMD data").
    pub datapath_width_bits: u64,
    /// Write ports whose in-flight value must be latched.
    pub write_ports: u64,
    /// Extra bypass levels added.
    pub extra_levels: u64,
    /// Mux/compare logic per consumer source, in latch-bit equivalents.
    pub mux_bits: u64,
    /// Bits of the existing execution datapath (denominator for the
    /// "prohibitive relative to the bypass network" claim).
    pub datapath_bits: u64,
}

impl ExtraBypassOverhead {
    /// Silverthorne datapath: 128-bit SIMD, 2 write ports, 1 extra level,
    /// 2 issue slots × 2 sources of 128-bit 3-way muxing.
    #[must_use]
    pub fn silverthorne() -> Self {
        Self {
            datapath_width_bits: 128,
            write_ports: 2,
            extra_levels: 1,
            mux_bits: 2 * 2 * 128,
            datapath_bits: 4096,
        }
    }

    /// Total extra latch-equivalent bits.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.datapath_width_bits * self.write_ports * self.extra_levels + self.mux_bits
    }

    /// Extra area relative to total core SRAM — deceptively small because
    /// caches dominate the denominator.
    #[must_use]
    pub fn area_fraction(&self) -> f64 {
        self.total_bits() as f64 * LATCH_AREA_FACTOR / total_core_sram_bits() as f64
    }

    /// Extra area relative to the execution datapath itself — the paper's
    /// "prohibitive" framing (\[3, 4, 20\]): most of a datapath's worth of
    /// extra latches and wiring.
    #[must_use]
    pub fn datapath_area_fraction(&self) -> f64 {
        self.total_bits() as f64 * LATCH_AREA_FACTOR / self.datapath_bits as f64
    }

    /// Always-on dynamic energy multiplier (bypass latches clock at every
    /// Vcc level — the cost is paid even when not needed, which is the
    /// Table 1 "does not adapt to multiple Vcc" row).
    #[must_use]
    pub fn dynamic_energy_factor(&self) -> f64 {
        1.0 + self.total_bits() as f64 * LATCH_AREA_FACTOR * ACTIVITY_FACTOR
            / total_core_sram_bits() as f64
    }

    /// Extra FO4 stages the deeper bypass mux adds to the 24-FO4 cycle.
    #[must_use]
    pub fn extra_fo4_stages(&self) -> u32 {
        u32::try_from(self.extra_levels).unwrap_or(u32::MAX)
    }
}

impl Default for ExtraBypassOverhead {
    fn default() -> Self {
        Self::silverthorne()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iraw_inventory_matches_paper_magnitudes() {
        let ovh = IrawOverhead::silverthorne();
        // A few hundred latch bits in total.
        assert!(ovh.total_bits() > 200 && ovh.total_bits() < 600);
        // Paper: ~0.03% area.
        let area = ovh.area_fraction();
        assert!(
            (0.0001..0.001).contains(&area),
            "area fraction {area:.5} (paper ≈0.0003)"
        );
        // Paper: <1% energy even with the pessimistic 20× activity.
        let energy = ovh.dynamic_energy_factor();
        assert!(energy > 1.0 && energy < 1.01, "energy factor {energy}");
    }

    #[test]
    fn fault_maps_cost_far_more_than_iraw() {
        let fb = FaultyBitsOverhead::silverthorne();
        let iraw = IrawOverhead::silverthorne();
        assert!(fb.total_bits() > 50 * iraw.total_bits());
        assert!(fb.area_fraction() > 0.01, "fault maps ≈1.5% of SRAM");
    }

    #[test]
    fn fault_map_bits_scale_with_levels() {
        let mut fb = FaultyBitsOverhead::silverthorne();
        let one = FaultyBitsOverhead {
            vcc_levels: 1,
            ..fb
        };
        fb.vcc_levels = 4;
        assert_eq!(fb.total_bits(), 4 * one.total_bits());
    }

    #[test]
    fn extra_bypass_prohibitive_relative_to_datapath() {
        let eb = ExtraBypassOverhead::silverthorne();
        // Tiny against the caches…
        assert!(eb.area_fraction() < 0.002);
        // …but most of a datapath's worth of new latches/muxes.
        assert!(eb.datapath_area_fraction() > 0.5);
        assert_eq!(eb.extra_fo4_stages(), 1);
        assert!(eb.dynamic_energy_factor() > 1.0);
    }

    #[test]
    fn iraw_bit_groups_sum() {
        let ovh = IrawOverhead::silverthorne();
        assert_eq!(
            ovh.total_bits(),
            ovh.scoreboard_bits
                + ovh.iq_logic_bits
                + ovh.stable_bits
                + ovh.stall_counter_bits
                + ovh.config_bits
        );
        assert_eq!(ovh.scoreboard_bits, 128);
        assert_eq!(ovh.stable_bits, 194);
    }
}
