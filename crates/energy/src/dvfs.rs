//! Per-Vcc operating-point selection (paper §4.1.3, "Multiple Vcc
//! Operation").
//!
//! The paper's mechanism is reconfigured whenever the DVFS controller
//! changes Vcc: at 600 mV or higher IRAW avoidance is deactivated (the ≈1%
//! frequency gain would be "largely offset by the stalls"), below 600 mV it
//! is enabled with the appropriate stabilization-cycle count `N`. This
//! module packages that decision rule, for both a pure-performance and a
//! minimum-EDP objective.

use lowvcc_sram::{CycleTimeModel, Megahertz, Millivolts, TimingLimiter, VccRange};

use crate::model::EnergyModel;

/// Optimization objective for operating-point selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Maximize performance (minimize execution time).
    Performance,
    /// Minimize energy-delay product.
    MinEdp,
}

/// A chosen operating point at one supply voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Supply voltage.
    pub vcc: Millivolts,
    /// Whether IRAW avoidance is enabled.
    pub iraw_active: bool,
    /// Stabilization cycles `N` programmed into the mechanisms
    /// (0 when IRAW is off).
    pub stabilization_cycles: u32,
    /// Resulting clock frequency.
    pub frequency: Megahertz,
    /// Predicted speedup over the write-limited baseline at this Vcc.
    pub predicted_speedup: f64,
}

/// Decides, per Vcc, whether IRAW avoidance pays off.
///
/// The controller predicts IRAW performance as
/// `frequency gain / (1 + stall overhead)`; the stall overhead defaults to
/// the paper's measured 8–10% band (9%).
///
/// ```
/// use lowvcc_energy::{DvfsController, Objective};
/// use lowvcc_sram::Millivolts;
///
/// let ctl = DvfsController::silverthorne_45nm();
/// // Paper §4.1.3: IRAW off at 600 mV and above, on at 575 mV and below.
/// assert!(!ctl.select(Millivolts::new(600)?, Objective::Performance).iraw_active);
/// assert!(ctl.select(Millivolts::new(575)?, Objective::Performance).iraw_active);
/// # Ok::<(), lowvcc_sram::VoltageError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsController {
    timing: CycleTimeModel,
    energy: EnergyModel,
    stall_overhead: f64,
}

impl DvfsController {
    /// Stall overhead assumed by the predictor (paper: 8–10%).
    pub const DEFAULT_STALL_OVERHEAD: f64 = 0.09;

    /// Controller with the calibrated 45 nm models.
    #[must_use]
    pub fn silverthorne_45nm() -> Self {
        Self {
            timing: CycleTimeModel::silverthorne_45nm(),
            energy: EnergyModel::silverthorne_45nm(),
            stall_overhead: Self::DEFAULT_STALL_OVERHEAD,
        }
    }

    /// Controller with custom models and stall-overhead estimate.
    ///
    /// # Panics
    ///
    /// Panics if `stall_overhead` is negative.
    #[must_use]
    pub fn new(timing: CycleTimeModel, energy: EnergyModel, stall_overhead: f64) -> Self {
        assert!(stall_overhead >= 0.0, "stall overhead cannot be negative");
        Self {
            timing,
            energy,
            stall_overhead,
        }
    }

    /// The timing model in use.
    #[must_use]
    pub fn timing(&self) -> &CycleTimeModel {
        &self.timing
    }

    /// Predicted IRAW speedup over the baseline at `v`
    /// (frequency gain discounted by stall overhead).
    #[must_use]
    pub fn predicted_speedup(&self, v: Millivolts) -> f64 {
        self.timing.frequency_gain(v) / (1.0 + self.stall_overhead)
    }

    /// Predicted IRAW/baseline EDP ratio at `v`, using the energy model's
    /// leakage split (same dynamic energy, leakage ∝ time).
    #[must_use]
    pub fn predicted_edp_ratio(&self, v: Millivolts) -> f64 {
        let speedup = self.predicted_speedup(v);
        let delay_ratio = 1.0 / speedup;
        // Baseline leakage fraction for the reference workload.
        let instructions = 1_000_000u64;
        let t_base = instructions as f64
            * EnergyModel::REFERENCE_CPI
            * self.timing.baseline_cycle(v).seconds();
        let lambda = self
            .energy
            .breakdown(v, instructions, t_base, 1.0)
            .leakage_fraction();
        let energy_ratio = (1.0 - lambda) + lambda * delay_ratio;
        energy_ratio * delay_ratio
    }

    /// Selects the operating point at `v` under `objective`.
    #[must_use]
    pub fn select(&self, v: Millivolts, objective: Objective) -> OperatingPoint {
        let n = self.timing.stabilization_cycles(v);
        let beneficial = match objective {
            Objective::Performance => self.predicted_speedup(v) > 1.0,
            Objective::MinEdp => self.predicted_edp_ratio(v) < 1.0,
        };
        let iraw_active = n > 0 && beneficial;
        let limiter = if iraw_active {
            TimingLimiter::Iraw
        } else {
            TimingLimiter::WriteLimited
        };
        OperatingPoint {
            vcc: v,
            iraw_active,
            stabilization_cycles: if iraw_active { n } else { 0 },
            frequency: self.timing.frequency(v, limiter),
            predicted_speedup: if iraw_active {
                self.predicted_speedup(v)
            } else {
                1.0
            },
        }
    }

    /// Operating points across a DVFS sweep.
    #[must_use]
    pub fn schedule(&self, sweep: VccRange, objective: Objective) -> Vec<OperatingPoint> {
        sweep.iter().map(|v| self.select(v, objective)).collect()
    }
}

impl Default for DvfsController {
    fn default() -> Self {
        Self::silverthorne_45nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowvcc_sram::voltage::mv;
    use lowvcc_sram::PAPER_SWEEP;

    fn ctl() -> DvfsController {
        DvfsController::silverthorne_45nm()
    }

    #[test]
    fn iraw_off_at_and_above_600mv() {
        let c = ctl();
        for v in [600, 625, 650, 675, 700] {
            for obj in [Objective::Performance, Objective::MinEdp] {
                let op = c.select(mv(v), obj);
                assert!(!op.iraw_active, "{v} mV {obj:?}");
                assert_eq!(op.stabilization_cycles, 0);
                assert_eq!(op.predicted_speedup, 1.0);
            }
        }
    }

    #[test]
    fn iraw_on_below_600mv() {
        let c = ctl();
        for v in [575, 550, 500, 450, 400] {
            for obj in [Objective::Performance, Objective::MinEdp] {
                let op = c.select(mv(v), obj);
                assert!(op.iraw_active, "{v} mV {obj:?}");
                assert_eq!(op.stabilization_cycles, 1);
                assert!(op.predicted_speedup > 1.0);
            }
        }
    }

    #[test]
    fn predicted_speedups_match_paper_band() {
        let c = ctl();
        // Paper: +48% performance at 500 mV, +90% at 400 mV.
        let s500 = c.predicted_speedup(mv(500));
        let s400 = c.predicted_speedup(mv(400));
        assert!((s500 - 1.48).abs() < 0.05, "500 mV speedup {s500:.3}");
        assert!((s400 - 1.90).abs() < 0.12, "400 mV speedup {s400:.3}");
    }

    #[test]
    fn predicted_edp_matches_paper_band() {
        let c = ctl();
        // Paper Figure 12: relative EDP ≈0.61 @500 mV, ≈0.41 @450, ≈0.33 @400.
        let cases = [(500, 0.61, 0.07), (450, 0.41, 0.07), (400, 0.33, 0.07)];
        for (v, want, tol) in cases {
            let got = c.predicted_edp_ratio(mv(v));
            assert!(
                (got - want).abs() < tol,
                "EDP ratio at {v} mV: {got:.3}, paper {want}"
            );
        }
    }

    #[test]
    fn schedule_covers_sweep_and_frequency_decreases() {
        let c = ctl();
        let sched = c.schedule(PAPER_SWEEP, Objective::Performance);
        assert_eq!(sched.len(), 13);
        for pair in sched.windows(2) {
            assert!(
                pair[0].frequency.megahertz() >= pair[1].frequency.megahertz(),
                "frequency must fall with Vcc"
            );
        }
    }

    #[test]
    #[should_panic(expected = "stall overhead")]
    fn negative_stall_overhead_rejected() {
        let _ = DvfsController::new(
            CycleTimeModel::silverthorne_45nm(),
            EnergyModel::silverthorne_45nm(),
            -0.1,
        );
    }
}
