//! Monotone cubic (PCHIP / Fritsch–Carlson) interpolation.
//!
//! The leakage-power curve is anchored at a handful of voltages derived
//! from the paper's published energy fractions; in between we need a smooth
//! interpolant that cannot overshoot (leakage must stay monotone in Vcc).
//! Fritsch–Carlson shape-preserving cubic Hermite interpolation is the
//! standard tool; implemented from scratch to keep the dependency list to
//! the sanctioned crates.

use std::fmt;

/// Error constructing a [`MonotoneCubic`] interpolant.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    /// Fewer than two knots supplied.
    TooFewKnots,
    /// Knot x-coordinates are not strictly increasing.
    NonIncreasingX {
        /// Index of the offending knot.
        index: usize,
    },
    /// A knot coordinate is NaN or infinite.
    NonFinite,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooFewKnots => write!(f, "interpolation needs at least two knots"),
            Self::NonIncreasingX { index } => {
                write!(
                    f,
                    "knot x-coordinates must strictly increase (index {index})"
                )
            }
            Self::NonFinite => write!(f, "knot coordinates must be finite"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Shape-preserving piecewise-cubic interpolant.
///
/// Evaluation outside the knot range clamps to the end values (flat
/// extrapolation), which is the conservative choice for physical curves.
///
/// ```
/// use lowvcc_energy::MonotoneCubic;
///
/// let f = MonotoneCubic::new(&[(0.0, 0.0), (1.0, 1.0), (2.0, 4.0)])?;
/// assert_eq!(f.eval(0.0), 0.0);
/// assert_eq!(f.eval(2.0), 4.0);
/// let mid = f.eval(1.5);
/// assert!(mid > 1.0 && mid < 4.0);
/// # Ok::<(), lowvcc_energy::interp::InterpError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MonotoneCubic {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Hermite tangents at each knot.
    ms: Vec<f64>,
}

impl MonotoneCubic {
    /// Builds the interpolant from `(x, y)` knots with strictly
    /// increasing `x`.
    ///
    /// # Errors
    ///
    /// See [`InterpError`].
    pub fn new(knots: &[(f64, f64)]) -> Result<Self, InterpError> {
        if knots.len() < 2 {
            return Err(InterpError::TooFewKnots);
        }
        if knots.iter().any(|(x, y)| !x.is_finite() || !y.is_finite()) {
            return Err(InterpError::NonFinite);
        }
        for (i, pair) in knots.windows(2).enumerate() {
            if pair[1].0 <= pair[0].0 {
                return Err(InterpError::NonIncreasingX { index: i + 1 });
            }
        }
        let xs: Vec<f64> = knots.iter().map(|&(x, _)| x).collect();
        let ys: Vec<f64> = knots.iter().map(|&(_, y)| y).collect();
        let n = xs.len();

        // Secant slopes.
        let deltas: Vec<f64> = (0..n - 1)
            .map(|i| (ys[i + 1] - ys[i]) / (xs[i + 1] - xs[i]))
            .collect();

        // Initial tangents: three-point average at interior knots.
        let mut ms = vec![0.0; n];
        ms[0] = deltas[0];
        ms[n - 1] = deltas[n - 2];
        for i in 1..n - 1 {
            ms[i] = if deltas[i - 1] * deltas[i] <= 0.0 {
                0.0
            } else {
                0.5 * (deltas[i - 1] + deltas[i])
            };
        }

        // Fritsch–Carlson monotonicity filter.
        for i in 0..n - 1 {
            if deltas[i] == 0.0 {
                ms[i] = 0.0;
                ms[i + 1] = 0.0;
                continue;
            }
            let a = ms[i] / deltas[i];
            let b = ms[i + 1] / deltas[i];
            let s = a * a + b * b;
            if s > 9.0 {
                let tau = 3.0 / s.sqrt();
                ms[i] = tau * a * deltas[i];
                ms[i + 1] = tau * b * deltas[i];
            }
        }

        Ok(Self { xs, ys, ms })
    }

    /// Evaluates the interpolant, clamping outside the knot range.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        // Find the bracketing segment.
        let i = match self
            .xs
            .binary_search_by(|probe| probe.partial_cmp(&x).expect("finite"))
        {
            Ok(exact) => return self.ys[exact],
            Err(upper) => upper - 1,
        };
        let h = self.xs[i + 1] - self.xs[i];
        let t = (x - self.xs[i]) / h;
        let t2 = t * t;
        let t3 = t2 * t;
        let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        let h10 = t3 - 2.0 * t2 + t;
        let h01 = -2.0 * t3 + 3.0 * t2;
        let h11 = t3 - t2;
        h00 * self.ys[i] + h10 * h * self.ms[i] + h01 * self.ys[i + 1] + h11 * h * self.ms[i + 1]
    }

    /// The knot x-coordinates.
    #[must_use]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The knot y-coordinates.
    #[must_use]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_through_knots() {
        let knots = [(0.0, 1.0), (1.0, 3.0), (2.5, 3.5), (4.0, 10.0)];
        let f = MonotoneCubic::new(&knots).unwrap();
        for (x, y) in knots {
            assert!((f.eval(x) - y).abs() < 1e-12, "knot ({x}, {y})");
        }
    }

    #[test]
    fn clamps_outside_range() {
        let f = MonotoneCubic::new(&[(1.0, 2.0), (2.0, 5.0)]).unwrap();
        assert_eq!(f.eval(0.0), 2.0);
        assert_eq!(f.eval(99.0), 5.0);
    }

    #[test]
    fn preserves_monotonicity_on_increasing_data() {
        // Data chosen to make naive cubic splines overshoot.
        let knots = [(0.0, 0.0), (1.0, 0.1), (2.0, 0.2), (3.0, 9.0), (4.0, 10.0)];
        let f = MonotoneCubic::new(&knots).unwrap();
        let mut last = f64::NEG_INFINITY;
        let mut x = 0.0;
        while x <= 4.0 {
            let y = f.eval(x);
            assert!(y >= last - 1e-9, "non-monotone at x={x}");
            assert!((0.0..=10.0 + 1e-9).contains(&y), "overshoot at x={x}: {y}");
            last = y;
            x += 0.01;
        }
    }

    #[test]
    fn preserves_monotonicity_on_decreasing_data() {
        let knots = [(0.0, 10.0), (1.0, 2.0), (2.0, 1.9), (3.0, 0.0)];
        let f = MonotoneCubic::new(&knots).unwrap();
        let mut last = f64::INFINITY;
        let mut x = 0.0;
        while x <= 3.0 {
            let y = f.eval(x);
            assert!(y <= last + 1e-9, "non-monotone at x={x}");
            last = y;
            x += 0.01;
        }
    }

    #[test]
    fn flat_segments_stay_flat() {
        let f = MonotoneCubic::new(&[(0.0, 1.0), (1.0, 1.0), (2.0, 2.0)]).unwrap();
        assert!((f.eval(0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_data_reproduced_exactly() {
        let f = MonotoneCubic::new(&[(0.0, 0.0), (1.0, 2.0), (2.0, 4.0), (3.0, 6.0)]).unwrap();
        for i in 0..=30 {
            let x = f64::from(i) * 0.1;
            assert!((f.eval(x) - 2.0 * x).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(
            MonotoneCubic::new(&[(0.0, 1.0)]).unwrap_err(),
            InterpError::TooFewKnots
        );
        assert_eq!(
            MonotoneCubic::new(&[(0.0, 1.0), (0.0, 2.0)]).unwrap_err(),
            InterpError::NonIncreasingX { index: 1 }
        );
        assert_eq!(
            MonotoneCubic::new(&[(0.0, f64::NAN), (1.0, 2.0)]).unwrap_err(),
            InterpError::NonFinite
        );
    }

    #[test]
    fn exact_knot_lookup_via_binary_search() {
        let f = MonotoneCubic::new(&[(0.0, 0.0), (1.0, 5.0), (2.0, 6.0)]).unwrap();
        assert_eq!(f.eval(1.0), 5.0);
        assert_eq!(f.xs().len(), 3);
        assert_eq!(f.ys()[1], 5.0);
    }
}
