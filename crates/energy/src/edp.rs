//! Energy and power newtypes, energy breakdowns, and EDP metrics.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, Div, Mul, Sub};

/// An energy amount in joules.
///
/// ```
/// use lowvcc_energy::Joules;
///
/// let e = Joules::new(2.0) + Joules::new(3.0);
/// assert_eq!(e.joules(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Joules(f64);

impl Joules {
    /// Creates an energy value.
    #[must_use]
    pub fn new(j: f64) -> Self {
        Self(j)
    }

    /// Returns the value in joules.
    #[must_use]
    pub fn joules(self) -> f64 {
        self.0
    }

    /// Returns the value in nanojoules.
    #[must_use]
    pub fn nanojoules(self) -> f64 {
        self.0 * 1e9
    }
}

impl Add for Joules {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl Sub for Joules {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl Mul<f64> for Joules {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Div<Joules> for Joules {
    type Output = f64;
    fn div(self, rhs: Joules) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Joules {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|j| j.0).sum())
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} J", self.0)
    }
}

/// A power in watts.
///
/// ```
/// use lowvcc_energy::Watts;
///
/// let leak = Watts::new(0.010);
/// assert_eq!(leak.over_seconds(2.0).joules(), 0.020);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Watts(f64);

impl Watts {
    /// Creates a power value.
    #[must_use]
    pub fn new(w: f64) -> Self {
        Self(w)
    }

    /// Returns the value in watts.
    #[must_use]
    pub fn watts(self) -> f64 {
        self.0
    }

    /// Returns the value in milliwatts.
    #[must_use]
    pub fn milliwatts(self) -> f64 {
        self.0 * 1e3
    }

    /// Energy dissipated over a duration in seconds.
    #[must_use]
    pub fn over_seconds(self, seconds: f64) -> Joules {
        Joules(self.0 * seconds)
    }
}

impl Mul<f64> for Watts {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} mW", self.0 * 1e3)
    }
}

/// Energy split into dynamic (switching) and leakage components.
///
/// The paper's central energy argument lives in this split: the IRAW core
/// and the baseline burn the same dynamic energy for the same work, but
/// the slower baseline accumulates far more leakage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Switching energy.
    pub dynamic: Joules,
    /// Static (leakage) energy accumulated over the run time.
    pub leakage: Joules,
}

impl EnergyBreakdown {
    /// Creates a breakdown from the two components.
    #[must_use]
    pub fn new(dynamic: Joules, leakage: Joules) -> Self {
        Self { dynamic, leakage }
    }

    /// Total energy.
    #[must_use]
    pub fn total(&self) -> Joules {
        self.dynamic + self.leakage
    }

    /// Leakage share of total energy (0..1).
    #[must_use]
    pub fn leakage_fraction(&self) -> f64 {
        let total = self.total().joules();
        if total == 0.0 {
            0.0
        } else {
            self.leakage.joules() / total
        }
    }
}

impl Add for EnergyBreakdown {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            dynamic: self.dynamic + rhs.dynamic,
            leakage: self.leakage + rhs.leakage,
        }
    }
}

/// A (delay, energy) sample and its derived energy-delay product.
///
/// ```
/// use lowvcc_energy::{EdpPoint, EnergyBreakdown, Joules};
///
/// let a = EdpPoint::new(2.0, EnergyBreakdown::new(Joules::new(4.0), Joules::new(1.0)));
/// let b = EdpPoint::new(1.0, EnergyBreakdown::new(Joules::new(4.0), Joules::new(0.5)));
/// // b finishes 2× faster with 10% less energy: EDP ratio well below 1.
/// let rel = b.relative_to(&a);
/// assert!(rel.edp < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdpPoint {
    delay_seconds: f64,
    energy: EnergyBreakdown,
}

impl EdpPoint {
    /// Creates a point from execution time and energy.
    ///
    /// # Panics
    ///
    /// Panics if `delay_seconds` is not strictly positive.
    #[must_use]
    pub fn new(delay_seconds: f64, energy: EnergyBreakdown) -> Self {
        assert!(delay_seconds > 0.0, "delay must be positive");
        Self {
            delay_seconds,
            energy,
        }
    }

    /// Execution time in seconds.
    #[must_use]
    pub fn delay_seconds(&self) -> f64 {
        self.delay_seconds
    }

    /// Energy breakdown.
    #[must_use]
    pub fn energy(&self) -> EnergyBreakdown {
        self.energy
    }

    /// Energy-delay product in joule-seconds.
    #[must_use]
    pub fn edp(&self) -> f64 {
        self.energy.total().joules() * self.delay_seconds
    }

    /// Delay, energy and EDP ratios of `self` relative to `baseline`
    /// (the paper's Figure 12 y-axis).
    #[must_use]
    pub fn relative_to(&self, baseline: &EdpPoint) -> RelativeEdp {
        RelativeEdp {
            delay: self.delay_seconds / baseline.delay_seconds,
            energy: self.energy.total() / baseline.energy.total(),
            edp: self.edp() / baseline.edp(),
        }
    }
}

/// Delay/energy/EDP of one configuration relative to a baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelativeEdp {
    /// Execution-time ratio (lower is faster).
    pub delay: f64,
    /// Total-energy ratio (lower is leaner).
    pub energy: f64,
    /// EDP ratio (lower is better).
    pub edp: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joules_arithmetic() {
        let a = Joules::new(1.5);
        let b = Joules::new(0.5);
        assert_eq!((a + b).joules(), 2.0);
        assert_eq!((a - b).joules(), 1.0);
        assert_eq!((a * 2.0).joules(), 3.0);
        assert_eq!(a / b, 3.0);
        assert_eq!(Joules::new(1e-9).nanojoules(), 1.0);
        let sum: Joules = [a, b].into_iter().sum();
        assert_eq!(sum.joules(), 2.0);
    }

    #[test]
    fn watts_times_time_is_energy() {
        assert_eq!(Watts::new(2.0).over_seconds(3.0).joules(), 6.0);
        assert_eq!(Watts::new(0.5).milliwatts(), 500.0);
        assert_eq!((Watts::new(2.0) * 0.5).watts(), 1.0);
    }

    #[test]
    fn breakdown_totals_and_fractions() {
        let e = EnergyBreakdown::new(Joules::new(9.0), Joules::new(1.0));
        assert_eq!(e.total().joules(), 10.0);
        assert!((e.leakage_fraction() - 0.1).abs() < 1e-12);
        let zero = EnergyBreakdown::default();
        assert_eq!(zero.leakage_fraction(), 0.0);
        let sum = e + e;
        assert_eq!(sum.total().joules(), 20.0);
    }

    #[test]
    fn paper_450mv_worked_example_ratios() {
        // Paper §5.3: baseline 8.50 J (4.74 leak), IRAW 6.40 J (2.64 leak);
        // the published speedup implies delay ratio ≈ 4.74/2.64 via leakage
        // proportionality. EDP ratio then lands near the published 0.41.
        let baseline = EdpPoint::new(
            4.74,
            EnergyBreakdown::new(Joules::new(8.50 - 4.74), Joules::new(4.74)),
        );
        let iraw = EdpPoint::new(
            2.64,
            EnergyBreakdown::new(Joules::new(6.40 - 2.64), Joules::new(2.64)),
        );
        let rel = iraw.relative_to(&baseline);
        assert!((rel.energy - 6.40 / 8.50).abs() < 1e-12);
        assert!((rel.edp - 0.42).abs() < 0.02, "edp {:.3}", rel.edp);
    }

    #[test]
    fn edp_is_energy_times_delay() {
        let p = EdpPoint::new(
            2.0,
            EnergyBreakdown::new(Joules::new(3.0), Joules::new(1.0)),
        );
        assert_eq!(p.edp(), 8.0);
        assert_eq!(p.delay_seconds(), 2.0);
        assert_eq!(p.energy().total().joules(), 4.0);
    }

    #[test]
    #[should_panic(expected = "delay must be positive")]
    fn zero_delay_rejected() {
        let _ = EdpPoint::new(0.0, EnergyBreakdown::default());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Joules::new(1.5).to_string(), "1.5000 J");
        assert_eq!(Watts::new(0.0105).to_string(), "10.5 mW");
    }
}
