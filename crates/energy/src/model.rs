//! The calibrated energy model (dynamic ∝ V², anchored leakage).
//!
//! The paper publishes just enough of its power model to rebuild it:
//!
//! * "Leakage for the whole processor has been set to 10% of the total
//!   energy consumption at 600 mV" (§5.1),
//! * "dynamic energy depends quadratically on Vcc" (§5.3),
//! * a worked example at 450 mV (§5.3): for the same task, the ideal
//!   (logic-limited) core burns 5 J of which 1.24 J leakage; the
//!   write-limited baseline 8.50 J / 4.74 J; IRAW 6.40 J / 2.64 J.
//!
//! Dynamic energy per instruction scales as `(V/600 mV)²`. Leakage *power*
//! is `P₀ · g(V)` where `g` is a monotone-cubic curve anchored so the
//! **baseline** core's leakage fraction reproduces the paper's published
//! fractions at 600/500/450/400 mV (derivation in DESIGN.md §5); `P₀` is
//! fixed by the 10%-at-600 mV rule for a reference CPI of 1.4.

use lowvcc_sram::{CycleTimeModel, Millivolts};

use crate::edp::{EdpPoint, EnergyBreakdown, Joules, Watts};
use crate::interp::MonotoneCubic;

/// Calibrated whole-core energy model.
///
/// ```
/// use lowvcc_energy::EnergyModel;
/// use lowvcc_sram::Millivolts;
///
/// let m = EnergyModel::silverthorne_45nm();
/// let v500 = Millivolts::new(500)?;
/// let v700 = Millivolts::new(700)?;
/// // Quadratic dynamic scaling: (500/700)² ≈ 0.51.
/// let ratio = m.dynamic_energy_per_instruction(v500).joules()
///     / m.dynamic_energy_per_instruction(v700).joules();
/// assert!((ratio - (500.0f64 / 700.0).powi(2)).abs() < 1e-12);
/// # Ok::<(), lowvcc_sram::VoltageError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    epi_at_600mv: Joules,
    leak_at_600mv: Watts,
    leak_shape: MonotoneCubic,
}

impl EnergyModel {
    /// Dynamic energy per instruction at 600 mV (Atom-class core, 45 nm).
    pub const EPI_AT_600MV_PJ: f64 = 110.0;

    /// Reference CPI used to convert the paper's "10% of total energy at
    /// 600 mV" leakage rule into an absolute leakage power.
    pub const REFERENCE_CPI: f64 = 1.4;

    /// Leakage-power shape anchors `(mV, g)` with `g(600 mV) = 1`.
    ///
    /// Derived in DESIGN.md §5 from the paper's baseline leakage fractions
    /// λ(600)=0.10, λ(500)≈0.30, λ(450)≈0.56, λ(400)≈0.79 (the last three
    /// back-solved from the published speedups and relative EDPs).
    pub const LEAK_SHAPE_ANCHORS: [(f64, f64); 5] = [
        (400.0, 0.4324),
        (450.0, 0.7745),
        (500.0, 0.8991),
        (600.0, 1.0),
        (700.0, 1.06),
    ];

    /// The calibrated model used throughout the reproduction.
    #[must_use]
    pub fn silverthorne_45nm() -> Self {
        Self::calibrated(
            Joules::new(Self::EPI_AT_600MV_PJ * 1e-12),
            Self::REFERENCE_CPI,
            &CycleTimeModel::silverthorne_45nm(),
        )
    }

    /// Builds a model calibrated to the paper's 10%-leakage-at-600 mV rule.
    ///
    /// `epi_at_600mv` is the dynamic energy per instruction at 600 mV;
    /// `reference_cpi` the CPI at which the 10% rule is anchored;
    /// `timing` provides the baseline cycle time at 600 mV.
    ///
    /// # Panics
    ///
    /// Panics if `epi_at_600mv` or `reference_cpi` is not positive.
    #[must_use]
    pub fn calibrated(epi_at_600mv: Joules, reference_cpi: f64, timing: &CycleTimeModel) -> Self {
        assert!(
            epi_at_600mv.joules() > 0.0,
            "energy per instruction must be positive"
        );
        assert!(reference_cpi > 0.0, "reference CPI must be positive");
        const V600: Millivolts = Millivolts::literal(600);
        let v600 = V600;
        let time_per_instr = reference_cpi * timing.baseline_cycle(v600).seconds();
        // 10% of total ⇒ leakage = dynamic / 9 per instruction.
        let leak_at_600mv = Watts::new(epi_at_600mv.joules() / 9.0 / time_per_instr);
        let leak_shape =
            MonotoneCubic::new(&Self::LEAK_SHAPE_ANCHORS).expect("anchors are valid knots");
        Self {
            epi_at_600mv,
            leak_at_600mv,
            leak_shape,
        }
    }

    /// Dynamic (switching) energy per committed instruction at `v`.
    #[must_use]
    pub fn dynamic_energy_per_instruction(&self, v: Millivolts) -> Joules {
        let scale = (v.volts() / 0.6).powi(2);
        self.epi_at_600mv * scale
    }

    /// Whole-core leakage power at `v`.
    #[must_use]
    pub fn leakage_power(&self, v: Millivolts) -> Watts {
        self.leak_at_600mv * self.leak_shape.eval(f64::from(v.millivolts()))
    }

    /// Energy breakdown for a run of `instructions` taking `seconds`,
    /// with `dynamic_overhead` multiplying switching energy (1.0 = none;
    /// the IRAW hardware adds ≈0.6%, see [`crate::overhead`]).
    #[must_use]
    pub fn breakdown(
        &self,
        v: Millivolts,
        instructions: u64,
        seconds: f64,
        dynamic_overhead: f64,
    ) -> EnergyBreakdown {
        let dynamic =
            self.dynamic_energy_per_instruction(v) * (instructions as f64) * dynamic_overhead;
        let leakage = self.leakage_power(v).over_seconds(seconds);
        EnergyBreakdown::new(dynamic, leakage)
    }

    /// Convenience: breakdown plus delay as an [`EdpPoint`].
    #[must_use]
    pub fn edp_point(
        &self,
        v: Millivolts,
        instructions: u64,
        seconds: f64,
        dynamic_overhead: f64,
    ) -> EdpPoint {
        EdpPoint::new(
            seconds,
            self.breakdown(v, instructions, seconds, dynamic_overhead),
        )
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::silverthorne_45nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowvcc_sram::voltage::mv;
    use lowvcc_sram::TimingLimiter;

    fn model() -> EnergyModel {
        EnergyModel::silverthorne_45nm()
    }

    /// Baseline leakage fraction at `v` for the reference-CPI workload.
    fn baseline_leak_fraction(m: &EnergyModel, v: Millivolts) -> f64 {
        let timing = CycleTimeModel::silverthorne_45nm();
        let instructions = 1_000_000u64;
        let seconds =
            instructions as f64 * EnergyModel::REFERENCE_CPI * timing.baseline_cycle(v).seconds();
        m.breakdown(v, instructions, seconds, 1.0)
            .leakage_fraction()
    }

    #[test]
    fn leakage_is_ten_percent_at_600mv() {
        let frac = baseline_leak_fraction(&model(), mv(600));
        assert!((frac - 0.10).abs() < 1e-6, "got {frac}");
    }

    #[test]
    fn leakage_fraction_anchors_from_paper() {
        // λ(500)≈0.30, λ(450)≈0.56, λ(400)≈0.79 (back-solved from the
        // paper's published speedups and EDP ratios; DESIGN.md §5).
        let m = model();
        let cases = [(500, 0.303), (450, 0.558), (400, 0.787)];
        for (v, want) in cases {
            let got = baseline_leak_fraction(&m, mv(v));
            assert!(
                (got - want).abs() < 0.02,
                "λ({v} mV) = {got:.3}, want ≈{want}"
            );
        }
    }

    #[test]
    fn dynamic_energy_quadratic_in_vcc() {
        let m = model();
        let e400 = m.dynamic_energy_per_instruction(mv(400)).joules();
        let e600 = m.dynamic_energy_per_instruction(mv(600)).joules();
        let e700 = m.dynamic_energy_per_instruction(mv(700)).joules();
        assert!((e400 / e600 - (4.0f64 / 6.0).powi(2)).abs() < 1e-12);
        assert!((e700 / e600 - (7.0f64 / 6.0).powi(2)).abs() < 1e-12);
        assert!((e600 - EnergyModel::EPI_AT_600MV_PJ * 1e-12).abs() < 1e-20);
    }

    #[test]
    fn leakage_power_monotone_in_vcc() {
        let m = model();
        let mut last = 0.0;
        for v in (400..=700).step_by(25) {
            let p = m.leakage_power(mv(v)).watts();
            assert!(p >= last, "leakage power must not decrease with Vcc");
            assert!(p > 0.0);
            last = p;
        }
    }

    #[test]
    fn leakage_power_magnitude_plausible() {
        // ~10 mW class leakage for an Atom-class core at 600 mV.
        let p = model().leakage_power(mv(600)).milliwatts();
        assert!((3.0..30.0).contains(&p), "leakage {p} mW");
    }

    #[test]
    fn iraw_saves_energy_via_shorter_runtime() {
        // Same work at 450 mV: baseline at write-limited clock vs IRAW at
        // its faster clock (with ~9% stall overhead and 0.6% dynamic
        // overhead). Energy ratio must land near the paper's 6.40/8.50.
        let m = model();
        let timing = CycleTimeModel::silverthorne_45nm();
        let v = mv(450);
        let instructions = 10_000_000u64;
        let cpi = EnergyModel::REFERENCE_CPI;
        let t_base = instructions as f64 * cpi * timing.baseline_cycle(v).seconds();
        let t_iraw = instructions as f64
            * (cpi * 1.09)
            * timing.cycle_time(v, TimingLimiter::Iraw).seconds();
        let e_base = m.edp_point(v, instructions, t_base, 1.0);
        let e_iraw = m.edp_point(v, instructions, t_iraw, 1.006);
        let rel = e_iraw.relative_to(&e_base);
        assert!(
            (rel.energy - 0.753).abs() < 0.05,
            "energy ratio {:.3} (paper 6.40/8.50 = 0.753)",
            rel.energy
        );
        // Our flat 9% stall estimate yields a 1.66× speedup at 450 mV where
        // the paper's worked example implies 1.79×, so the EDP ratio lands
        // at ≈0.47 against the published 0.41 — same shape, recorded in
        // EXPERIMENTS.md.
        assert!(
            (rel.edp - 0.41).abs() < 0.08,
            "EDP ratio {:.3} (paper 0.41)",
            rel.edp
        );
    }

    #[test]
    #[should_panic(expected = "energy per instruction")]
    fn rejects_nonpositive_epi() {
        let _ =
            EnergyModel::calibrated(Joules::new(0.0), 1.4, &CycleTimeModel::silverthorne_45nm());
    }
}
