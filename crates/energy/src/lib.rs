//! Energy, leakage, EDP and hardware-overhead models for the low-Vcc
//! in-order core reproduction (HPCA 2010).
//!
//! The paper's Figure 12 compares energy, delay and energy-delay product
//! (EDP) of the IRAW-avoidance core against the write-limited baseline at
//! each Vcc. Its energy model is simple and stated in Section 5:
//!
//! * dynamic energy depends **quadratically** on Vcc,
//! * leakage is **10% of total energy at 600 mV** for the baseline,
//! * leakage's share grows rapidly as Vcc falls (the paper's worked 450 mV
//!   example: 8.50 J total / 4.74 J leakage for the baseline vs 6.40 J /
//!   2.64 J for IRAW), so the faster IRAW core saves energy by finishing
//!   earlier and burning less leakage.
//!
//! This crate implements that model with the leakage-power curve anchored
//! to the paper's published fractions (see [`model::EnergyModel`]), plus the
//! extra-hardware overhead accounting that reproduces the paper's "<1%
//! energy, ~0.03% area" claims ([`overhead`]), and the per-Vcc operating
//! point selection of Section 4.1.3 ([`dvfs`]).
//!
//! ```
//! use lowvcc_energy::{EnergyModel, Joules};
//! use lowvcc_sram::Millivolts;
//!
//! let model = EnergyModel::silverthorne_45nm();
//! let v = Millivolts::new(500)?;
//! // A 1-second run of 1e9 instructions at 500 mV:
//! let e = model.breakdown(v, 1_000_000_000, 1.0, 1.0);
//! assert!(e.total() > Joules::new(0.0));
//! # Ok::<(), lowvcc_sram::VoltageError>(())
//! ```

pub mod dvfs;
pub mod edp;
pub mod interp;
pub mod model;
pub mod overhead;

pub use dvfs::{DvfsController, Objective, OperatingPoint};
pub use edp::{EdpPoint, EnergyBreakdown, Joules, Watts};
pub use interp::MonotoneCubic;
pub use model::EnergyModel;
pub use overhead::{ExtraBypassOverhead, FaultyBitsOverhead, IrawOverhead};
