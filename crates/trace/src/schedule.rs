//! IRAW-aware instruction scheduling — the paper's future-work item.
//!
//! §5.2 of the paper: "the compiler could help removing some of the
//! register file induced stalls by scheduling instructions properly.
//! However, such compiler optimizations are out of the scope of this
//! paper." This module implements that scheduler as a trace-to-trace
//! transformation: a windowed list scheduler that widens producer→consumer
//! register distances past the IRAW stabilization hole, while preserving
//! program semantics:
//!
//! * data dependences (RAW), anti- and output-dependences (WAR, WAW);
//! * memory order (loads and stores never cross a store; stores never
//!   cross a load);
//! * control order (branches, calls and returns are scheduling barriers).
//!
//! When no reordering can widen a distance, the original order is kept —
//! the transformation never hurts correctness, only (sometimes) helps
//! issue timing.

use std::collections::VecDeque;

use crate::uop::{Trace, Uop, UopKind};

/// Configuration of the IRAW-aware scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleConfig {
    /// Preferred minimum producer→consumer distance in uops. For a
    /// 2-wide core with one bypass level and `N` stabilization cycles, a
    /// consumer at distance `< 2·(1 + bypass + N)` may land in the hole;
    /// the Silverthorne case (`N = 1`) wants ≥ 6.
    pub min_distance: usize,
    /// Lookahead window (candidates considered for reordering).
    pub window: usize,
}

impl ScheduleConfig {
    /// The Silverthorne/IRAW default: distance 6, window 12.
    #[must_use]
    pub fn silverthorne_iraw() -> Self {
        Self {
            min_distance: 6,
            window: 12,
        }
    }
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        Self::silverthorne_iraw()
    }
}

fn is_barrier(kind: UopKind) -> bool {
    kind.is_control()
}

/// Whether `later` may be hoisted above `earlier` without changing
/// semantics.
fn may_swap(earlier: &Uop, later: &Uop) -> bool {
    // Control uops never move, and nothing moves across them.
    if is_barrier(earlier.kind) || is_barrier(later.kind) {
        return false;
    }
    // Memory ordering: conservative — nothing crosses a store, and
    // stores cross nothing memory-related.
    let mem_conflict = (earlier.kind == UopKind::Store && later.kind.is_mem())
        || (later.kind == UopKind::Store && earlier.kind.is_mem());
    if mem_conflict {
        return false;
    }
    // RAW: later reads what earlier writes.
    if let Some(d) = earlier.dst {
        if later.sources().any(|s| s == d) {
            return false;
        }
    }
    // WAR: later writes what earlier reads.
    if let Some(d) = later.dst {
        if earlier.sources().any(|s| s == d) {
            return false;
        }
        // WAW: both write the same register.
        if earlier.dst == Some(d) {
            return false;
        }
    }
    true
}

/// Statistics of one scheduling pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScheduleStats {
    /// Uops hoisted ahead of program order.
    pub hoisted: u64,
    /// Emission slots where no safe hoist existed and the original order
    /// was kept despite a short distance.
    pub forced_short: u64,
}

/// Schedules a trace to widen producer→consumer distances.
///
/// Returns the reordered trace and pass statistics. The output always
/// satisfies [`verify_reorder`] against the input.
#[must_use]
pub fn schedule_trace(trace: &Trace, cfg: ScheduleConfig) -> (Trace, ScheduleStats) {
    let mut out: Vec<Uop> = Vec::with_capacity(trace.len());
    let mut stats = ScheduleStats::default();
    // Emission index of the last writer of each register.
    let mut last_write = vec![usize::MAX; usize::from(crate::uop::NUM_REGS)];
    let mut pending: VecDeque<Uop> = VecDeque::with_capacity(cfg.window + 1);
    let mut it = trace.uops.iter().copied();

    // Distance check for a candidate if emitted at slot `out.len()`.
    let distance_ok =
        |u: &Uop, out_len: usize, last_write: &[usize], min_distance: usize| -> bool {
            u.sources().all(|s| {
                let w = last_write[usize::from(s.index())];
                w == usize::MAX || out_len - w >= min_distance
            })
        };

    loop {
        // Refill the lookahead window.
        while pending.len() < cfg.window {
            match it.next() {
                Some(u) => pending.push_back(u),
                None => break,
            }
        }
        let Some(front) = pending.front().copied() else {
            break;
        };

        // Pick the first candidate that (a) may be hoisted over everything
        // before it in the window, and (b) has all source distances clear.
        let mut chosen = 0usize;
        if !distance_ok(&front, out.len(), &last_write, cfg.min_distance) && !is_barrier(front.kind)
        {
            'candidates: for (i, cand) in pending.iter().enumerate().skip(1) {
                if !distance_ok(cand, out.len(), &last_write, cfg.min_distance) {
                    continue;
                }
                for earlier in pending.iter().take(i) {
                    if !may_swap(earlier, cand) {
                        continue 'candidates;
                    }
                }
                chosen = i;
                break;
            }
            if chosen == 0 {
                stats.forced_short += 1;
            } else {
                stats.hoisted += 1;
            }
        }

        let u = pending.remove(chosen).expect("index in range");
        if let Some(d) = u.dst {
            last_write[usize::from(d.index())] = out.len();
        }
        out.push(u);
    }

    (Trace::new(format!("{}-sched", trace.name), out), stats)
}

/// Error from [`verify_reorder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReorderError {
    /// The output is not a permutation of the input.
    NotAPermutation,
    /// A register dependence order was broken (producer after consumer,
    /// or write-after-read/write inversion), at the given output index.
    DependenceViolated(usize),
    /// Memory or control order was broken at the given output index.
    OrderViolated(usize),
}

impl std::fmt::Display for ReorderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotAPermutation => write!(f, "scheduled trace is not a permutation"),
            Self::DependenceViolated(i) => write!(f, "register dependence violated at uop {i}"),
            Self::OrderViolated(i) => write!(f, "memory/control order violated at uop {i}"),
        }
    }
}

impl std::error::Error for ReorderError {}

/// Verifies that `scheduled` is a semantics-preserving reorder of
/// `original`: same multiset of uops, and no pair of conflicting uops
/// (register dependence, memory order, control barrier) swapped.
///
/// # Errors
///
/// Returns the first violated property.
pub fn verify_reorder(original: &Trace, scheduled: &Trace) -> Result<(), ReorderError> {
    if original.len() != scheduled.len() {
        return Err(ReorderError::NotAPermutation);
    }
    // Multiset equality via sorted debug keys (uops are plain data).
    let key = |u: &Uop| {
        (
            u.pc,
            u.kind as u8 as u64,
            u.addr.unwrap_or(0),
            u.dst.map_or(255, |r| r.index()),
        )
    };
    let mut a: Vec<_> = original.uops.iter().map(key).collect();
    let mut b: Vec<_> = scheduled.uops.iter().map(key).collect();
    a.sort_unstable();
    b.sort_unstable();
    if a != b {
        return Err(ReorderError::NotAPermutation);
    }
    // Pairwise conflict order: map each original uop occurrence to its
    // position in the schedule (greedy matching by key for duplicates).
    let mut positions: std::collections::HashMap<(u64, u64, u64, u8), VecDeque<usize>> =
        std::collections::HashMap::new();
    for (i, u) in scheduled.uops.iter().enumerate() {
        let k = key(u);
        positions
            .entry((k.0, k.1, k.2, k.3))
            .or_default()
            .push_back(i);
    }
    let mut mapped = Vec::with_capacity(original.len());
    for u in &original.uops {
        let k = key(u);
        let pos = positions
            .get_mut(&(k.0, k.1, k.2, k.3))
            .and_then(VecDeque::pop_front)
            .ok_or(ReorderError::NotAPermutation)?;
        mapped.push(pos);
    }
    // For every conflicting original pair (i < j), order must be kept.
    for i in 0..original.len() {
        for j in (i + 1)..original.len().min(i + 32) {
            let (a, b) = (&original.uops[i], &original.uops[j]);
            if !may_swap(a, b) && mapped[i] > mapped[j] {
                let err_idx = mapped[j];
                return if a.kind.is_mem()
                    || b.kind.is_mem()
                    || is_barrier(a.kind)
                    || is_barrier(b.kind)
                {
                    Err(ReorderError::OrderViolated(err_idx))
                } else {
                    Err(ReorderError::DependenceViolated(err_idx))
                };
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{TraceSpec, WorkloadFamily};
    use crate::uop::Reg;

    fn r(i: u8) -> Reg {
        Reg::new(i).unwrap()
    }

    #[test]
    fn widens_a_short_dependence_when_independents_exist() {
        // P writes r16; C consumes it immediately; u1..u4 independent.
        let uops = vec![
            Uop::alu(0x00, Some(r(16)), Some(r(0)), None),
            Uop::alu(0x04, Some(r(17)), Some(r(16)), None), // distance 1!
            Uop::alu(0x08, Some(r(18)), Some(r(1)), None),
            Uop::alu(0x0c, Some(r(19)), Some(r(2)), None),
            Uop::alu(0x10, Some(r(20)), Some(r(3)), None),
            Uop::alu(0x14, Some(r(21)), Some(r(4)), None),
        ];
        let t = Trace::new("short", uops);
        let (s, stats) = schedule_trace(
            &t,
            ScheduleConfig {
                min_distance: 3,
                window: 6,
            },
        );
        verify_reorder(&t, &s).unwrap();
        assert!(stats.hoisted > 0, "independents should be hoisted");
        // The consumer of r16 now sits at distance ≥ 3.
        let prod = s.uops.iter().position(|u| u.dst == Some(r(16))).unwrap();
        let cons = s.uops.iter().position(|u| u.src1 == Some(r(16))).unwrap();
        assert!(cons - prod >= 3, "distance {} too short", cons - prod);
    }

    #[test]
    fn never_breaks_dependences_or_memory_order() {
        for family in WorkloadFamily::all() {
            let t = TraceSpec::new(family, 9, 4_000).build().unwrap();
            let (s, _) = schedule_trace(&t, ScheduleConfig::silverthorne_iraw());
            verify_reorder(&t, &s).unwrap_or_else(|e| panic!("{family}: {e}"));
            s.validate().unwrap();
        }
    }

    #[test]
    fn control_uops_are_barriers() {
        let uops = vec![
            Uop::alu(0x00, Some(r(16)), Some(r(0)), None),
            Uop::branch(0x04, Some(r(16)), true, 0x00),
            Uop::alu(0x08, Some(r(17)), Some(r(16)), None),
        ];
        let t = Trace::new("ctl", uops.clone());
        let (s, _) = schedule_trace(
            &t,
            ScheduleConfig {
                min_distance: 8,
                window: 4,
            },
        );
        // Nothing can move: order unchanged.
        assert_eq!(s.uops, uops);
    }

    #[test]
    fn stores_block_load_motion() {
        let uops = vec![
            Uop::alu(0x00, Some(r(16)), Some(r(0)), None),
            Uop::alu(0x04, Some(r(20)), Some(r(16)), None), // short dep
            Uop::store(0x08, Some(r(1)), None, 0x1000, 8),
            Uop::load(0x0c, r(21), None, 0x1000, 8),
        ];
        let t = Trace::new("mem", uops);
        let (s, _) = schedule_trace(
            &t,
            ScheduleConfig {
                min_distance: 4,
                window: 4,
            },
        );
        verify_reorder(&t, &s).unwrap();
        // The load must still follow the store.
        let st = s
            .uops
            .iter()
            .position(|u| u.kind == UopKind::Store)
            .unwrap();
        let ld = s.uops.iter().position(|u| u.kind == UopKind::Load).unwrap();
        assert!(st < ld);
    }

    #[test]
    fn scheduling_is_deterministic_and_idempotent_on_schedulable_code() {
        let t = TraceSpec::new(WorkloadFamily::SpecInt, 21, 3_000)
            .build()
            .unwrap();
        let cfg = ScheduleConfig::silverthorne_iraw();
        let (a, _) = schedule_trace(&t, cfg);
        let (b, _) = schedule_trace(&t, cfg);
        assert_eq!(a.uops, b.uops);
    }

    #[test]
    fn verifier_catches_violations() {
        let uops = vec![
            Uop::alu(0x00, Some(r(16)), Some(r(0)), None),
            Uop::alu(0x04, Some(r(17)), Some(r(16)), None),
        ];
        let t = Trace::new("orig", uops.clone());
        let swapped = Trace::new("bad", vec![uops[1], uops[0]]);
        assert!(matches!(
            verify_reorder(&t, &swapped),
            Err(ReorderError::DependenceViolated(_))
        ));
        let truncated = Trace::new("short", vec![uops[0]]);
        assert_eq!(
            verify_reorder(&t, &truncated),
            Err(ReorderError::NotAPermutation)
        );
    }
}
