//! The seven workload families and trace-suite builders.
//!
//! The paper's workload is "531 traces of 10 million consecutive
//! instructions each … from a wide variety of programs (Spec2006, Spec2000,
//! kernels, multimedia, office, server, workstation)". Each family here is
//! a [`SynthParams`] preset whose knobs (dependency distances, instruction
//! mix, code footprint, memory locality, branch predictability) are set to
//! the behaviour class the paper's suite names imply.

use crate::error::TraceError;
use crate::synth::{Generator, MemMix, MixWeights, SynthParams};
use crate::uop::Trace;

/// A workload family of the paper's evaluation suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadFamily {
    /// SPEC integer: pointer-chasing, branchy, short dependency chains.
    SpecInt,
    /// SPEC floating-point: long regular loops, streaming arrays.
    SpecFp,
    /// Multimedia kernels: small hot loops over streams.
    Multimedia,
    /// OS/library kernels (memcpy-style): tiny code, heavy streaming.
    Kernel,
    /// Office productivity: large branchy code footprint.
    Office,
    /// Server: huge code and data footprints, Zipf-popular objects.
    Server,
    /// Workstation: a mix of integer, FP and memory behaviour.
    Workstation,
}

impl WorkloadFamily {
    /// All seven families, in suite order.
    #[must_use]
    pub fn all() -> [WorkloadFamily; 7] {
        [
            Self::SpecInt,
            Self::SpecFp,
            Self::Multimedia,
            Self::Kernel,
            Self::Office,
            Self::Server,
            Self::Workstation,
        ]
    }

    /// Short lowercase name used in trace names and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::SpecInt => "specint",
            Self::SpecFp => "specfp",
            Self::Multimedia => "media",
            Self::Kernel => "kernel",
            Self::Office => "office",
            Self::Server => "server",
            Self::Workstation => "workstation",
        }
    }

    /// The calibrated synthesis parameters of this family.
    #[must_use]
    pub fn params(self) -> SynthParams {
        match self {
            Self::SpecInt => SynthParams {
                mix: MixWeights {
                    alu: 0.50,
                    mul: 0.03,
                    div: 0.005,
                    fp_add: 0.0,
                    fp_mul: 0.0,
                    fp_div: 0.0,
                    load: 0.27,
                    store: 0.13,
                    nop: 0.015,
                },
                mem_mix: MemMix {
                    stack: 0.35,
                    stream: 0.15,
                    chase: 0.45,
                    zipf: 0.05,
                },
                dep_p: 0.48,
                two_source_fraction: 0.40,
                functions: 100,
                blocks_per_function: (4, 8),
                block_len: (4, 8),
                loop_fraction: 0.25,
                mean_loop_trips: 12.0,
                call_fraction: 0.15,
                branch_biases: vec![(0.92, 4.0), (0.08, 3.0), (0.65, 2.0), (0.5, 1.0)],
                stream_length: 32 * 1024,
                stream_stride: 16,
                chase_working_set: 32 * 1024,
                zipf_objects: 2048,
                zipf_object_size: 64,
                zipf_s: 0.9,
                stack_slots: 8,
            },
            Self::SpecFp => SynthParams {
                mix: MixWeights {
                    alu: 0.28,
                    mul: 0.02,
                    div: 0.0,
                    fp_add: 0.22,
                    fp_mul: 0.18,
                    fp_div: 0.01,
                    load: 0.20,
                    store: 0.08,
                    nop: 0.01,
                },
                mem_mix: MemMix {
                    stack: 0.15,
                    stream: 0.70,
                    chase: 0.10,
                    zipf: 0.05,
                },
                dep_p: 0.34,
                two_source_fraction: 0.55,
                functions: 70,
                blocks_per_function: (3, 6),
                block_len: (8, 14),
                loop_fraction: 0.45,
                mean_loop_trips: 48.0,
                call_fraction: 0.08,
                branch_biases: vec![(0.96, 6.0), (0.04, 3.0), (0.5, 0.5)],
                stream_length: 96 * 1024,
                stream_stride: 8,
                chase_working_set: 32 * 1024,
                zipf_objects: 2048,
                zipf_object_size: 64,
                zipf_s: 0.8,
                stack_slots: 12,
            },
            Self::Multimedia => SynthParams {
                mix: MixWeights {
                    alu: 0.30,
                    mul: 0.02,
                    div: 0.0,
                    fp_add: 0.18,
                    fp_mul: 0.18,
                    fp_div: 0.0,
                    load: 0.20,
                    store: 0.12,
                    nop: 0.02,
                },
                mem_mix: MemMix {
                    stack: 0.20,
                    stream: 0.65,
                    chase: 0.10,
                    zipf: 0.05,
                },
                dep_p: 0.44,
                two_source_fraction: 0.50,
                functions: 30,
                blocks_per_function: (3, 6),
                block_len: (6, 12),
                loop_fraction: 0.50,
                mean_loop_trips: 24.0,
                call_fraction: 0.10,
                branch_biases: vec![(0.94, 5.0), (0.06, 3.0), (0.5, 0.5)],
                stream_length: 48 * 1024,
                stream_stride: 8,
                chase_working_set: 16 * 1024,
                zipf_objects: 1024,
                zipf_object_size: 64,
                zipf_s: 0.8,
                stack_slots: 8,
            },
            Self::Kernel => SynthParams {
                mix: MixWeights {
                    alu: 0.30,
                    mul: 0.01,
                    div: 0.0,
                    fp_add: 0.0,
                    fp_mul: 0.0,
                    fp_div: 0.0,
                    load: 0.32,
                    store: 0.26,
                    nop: 0.01,
                },
                mem_mix: MemMix {
                    stack: 0.05,
                    stream: 0.85,
                    chase: 0.05,
                    zipf: 0.05,
                },
                dep_p: 0.55,
                two_source_fraction: 0.35,
                functions: 6,
                blocks_per_function: (2, 4),
                block_len: (6, 10),
                loop_fraction: 0.60,
                mean_loop_trips: 64.0,
                call_fraction: 0.05,
                branch_biases: vec![(0.97, 8.0), (0.03, 2.0)],
                stream_length: 128 * 1024,
                stream_stride: 8,
                chase_working_set: 8 * 1024,
                zipf_objects: 512,
                zipf_object_size: 64,
                zipf_s: 0.7,
                stack_slots: 4,
            },
            Self::Office => SynthParams {
                mix: MixWeights {
                    alu: 0.42,
                    mul: 0.02,
                    div: 0.002,
                    fp_add: 0.0,
                    fp_mul: 0.0,
                    fp_div: 0.0,
                    load: 0.26,
                    store: 0.11,
                    nop: 0.02,
                },
                mem_mix: MemMix {
                    stack: 0.40,
                    stream: 0.05,
                    chase: 0.30,
                    zipf: 0.25,
                },
                dep_p: 0.45,
                two_source_fraction: 0.40,
                functions: 400,
                blocks_per_function: (4, 8),
                block_len: (4, 7),
                loop_fraction: 0.15,
                mean_loop_trips: 6.0,
                call_fraction: 0.25,
                branch_biases: vec![(0.85, 4.0), (0.15, 3.0), (0.55, 2.0)],
                stream_length: 32 * 1024,
                stream_stride: 16,
                chase_working_set: 32 * 1024,
                zipf_objects: 4096,
                zipf_object_size: 64,
                zipf_s: 1.0,
                stack_slots: 8,
            },
            Self::Server => SynthParams {
                mix: MixWeights {
                    alu: 0.38,
                    mul: 0.02,
                    div: 0.002,
                    fp_add: 0.0,
                    fp_mul: 0.0,
                    fp_div: 0.0,
                    load: 0.28,
                    store: 0.12,
                    nop: 0.01,
                },
                mem_mix: MemMix {
                    stack: 0.30,
                    stream: 0.05,
                    chase: 0.20,
                    zipf: 0.45,
                },
                dep_p: 0.42,
                two_source_fraction: 0.40,
                functions: 600,
                blocks_per_function: (4, 8),
                block_len: (4, 8),
                loop_fraction: 0.12,
                mean_loop_trips: 5.0,
                call_fraction: 0.30,
                branch_biases: vec![(0.85, 4.0), (0.15, 3.0), (0.55, 2.0)],
                stream_length: 32 * 1024,
                stream_stride: 16,
                chase_working_set: 64 * 1024,
                zipf_objects: 8192,
                zipf_object_size: 64,
                zipf_s: 1.0,
                stack_slots: 8,
            },
            Self::Workstation => SynthParams {
                mix: MixWeights {
                    alu: 0.35,
                    mul: 0.03,
                    div: 0.005,
                    fp_add: 0.08,
                    fp_mul: 0.07,
                    fp_div: 0.005,
                    load: 0.24,
                    store: 0.11,
                    nop: 0.01,
                },
                mem_mix: MemMix {
                    stack: 0.30,
                    stream: 0.30,
                    chase: 0.25,
                    zipf: 0.15,
                },
                dep_p: 0.40,
                two_source_fraction: 0.45,
                functions: 150,
                blocks_per_function: (4, 8),
                block_len: (5, 9),
                loop_fraction: 0.25,
                mean_loop_trips: 16.0,
                call_fraction: 0.18,
                branch_biases: vec![(0.92, 4.0), (0.08, 2.0), (0.65, 2.0), (0.5, 0.5)],
                stream_length: 64 * 1024,
                stream_stride: 16,
                chase_working_set: 48 * 1024,
                zipf_objects: 2048,
                zipf_object_size: 64,
                zipf_s: 0.9,
                stack_slots: 8,
            },
        }
    }
}

impl std::fmt::Display for WorkloadFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A buildable trace specification (family + seed + length).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceSpec {
    /// Workload family.
    pub family: WorkloadFamily,
    /// Generator seed.
    pub seed: u64,
    /// Dynamic uop count.
    pub len: usize,
}

impl TraceSpec {
    /// Creates a spec.
    #[must_use]
    pub fn new(family: WorkloadFamily, seed: u64, len: usize) -> Self {
        Self { family, seed, len }
    }

    /// The trace's canonical name, e.g. `specint-007`.
    #[must_use]
    pub fn name(&self) -> String {
        format!("{}-{:03}", self.family.name(), self.seed)
    }

    /// Builds the trace.
    ///
    /// # Errors
    ///
    /// Propagates parameter-validation errors (family presets never fail).
    pub fn build(&self) -> Result<Trace, TraceError> {
        let mut generator = Generator::new(&self.family.params(), self.seed)?;
        Ok(generator.generate(self.name(), self.len))
    }
}

/// Builds a suite of `per_family` traces per family, each `len` uops.
#[must_use]
pub fn suite(per_family: u32, len: usize) -> Vec<TraceSpec> {
    let mut specs = Vec::new();
    for family in WorkloadFamily::all() {
        for seed in 0..u64::from(per_family) {
            specs.push(TraceSpec::new(family, seed, len));
        }
    }
    specs
}

/// The default evaluation suite: 49 traces (7 per family) of 200k uops —
/// small enough to sweep 13 voltages × several mechanisms in seconds.
#[must_use]
pub fn default_suite() -> Vec<TraceSpec> {
    suite(7, 200_000)
}

/// A paper-scale suite: 531 traces cycling through the families, 10 M uops
/// each (the paper's exact workload volume; hours of simulation).
#[must_use]
pub fn paper_scale_suite() -> Vec<TraceSpec> {
    let families = WorkloadFamily::all();
    (0..531u64)
        .map(|i| TraceSpec::new(families[(i % 7) as usize], i / 7, 10_000_000))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_has_valid_params() {
        for family in WorkloadFamily::all() {
            family
                .params()
                .validate()
                .unwrap_or_else(|e| panic!("{family}: {e}"));
        }
    }

    #[test]
    fn family_names_unique() {
        let names: std::collections::HashSet<_> =
            WorkloadFamily::all().iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn default_suite_shape() {
        let s = default_suite();
        assert_eq!(s.len(), 49);
        assert!(s.iter().all(|t| t.len == 200_000));
        // 7 of each family.
        for family in WorkloadFamily::all() {
            assert_eq!(s.iter().filter(|t| t.family == family).count(), 7);
        }
    }

    #[test]
    fn paper_scale_suite_is_531_by_10m() {
        let s = paper_scale_suite();
        assert_eq!(s.len(), 531);
        assert!(s.iter().all(|t| t.len == 10_000_000));
    }

    #[test]
    fn spec_names_are_stable() {
        let spec = TraceSpec::new(WorkloadFamily::Office, 7, 100);
        assert_eq!(spec.name(), "office-007");
    }

    #[test]
    fn specs_build_named_traces() {
        let spec = TraceSpec::new(WorkloadFamily::Kernel, 2, 500);
        let t = spec.build().unwrap();
        assert_eq!(t.name, "kernel-002");
        assert_eq!(t.len(), 500);
    }
}
