//! Data-address stream models.
//!
//! Each workload family mixes four canonical access patterns; together they
//! control DL0/UL1/DTLB miss rates and the frequency of store→load
//! same-address and same-set collisions — precisely the events the paper's
//! Store Table mechanism (its Figure 10) must handle.

use crate::dist::Zipf;
use crate::rng::SimRng;

/// Base of the synthetic heap region.
pub const HEAP_BASE: u64 = 0x0000_1000_0000;
/// Base of the synthetic stack region (grows down).
pub const STACK_BASE: u64 = 0x0000_7FFF_0000;

/// A generator of effective addresses for one memory region class.
#[derive(Debug, Clone, PartialEq)]
pub enum AddressModel {
    /// Sequential streaming through a buffer with a fixed stride —
    /// kernels, media, and FP loops. High spatial locality, periodic
    /// compulsory misses.
    Strided {
        /// Region base address.
        base: u64,
        /// Stride in bytes between consecutive accesses.
        stride: u64,
        /// Buffer length in bytes (wraps around).
        length: u64,
        /// Current offset.
        cursor: u64,
    },
    /// Random walk over cache lines of a working set — pointer-chasing
    /// integer code. Miss rate set by working-set size vs cache size.
    PointerChase {
        /// Region base address.
        base: u64,
        /// Working-set size in bytes.
        working_set: u64,
    },
    /// Zipf-popular objects — server workloads; a hot head plus a long
    /// tail that stresses UL1 and the DTLB.
    ZipfObjects {
        /// Region base address.
        base: u64,
        /// Object size in bytes.
        object_size: u64,
        /// Popularity distribution over objects.
        zipf: Zipf,
    },
    /// Stack-frame slots — very high temporal locality and the main source
    /// of immediate store→load pairs (spills/fills) that exercise the
    /// Store Table's full-address match path.
    StackFrame {
        /// Current frame base (set by the walker on call/return).
        frame: u64,
        /// Number of 8-byte slots per frame.
        slots: u64,
    },
}

impl AddressModel {
    /// A streaming model over `length` bytes with the given stride.
    ///
    /// # Panics
    ///
    /// Panics if `stride` or `length` is zero.
    #[must_use]
    pub fn strided(base: u64, stride: u64, length: u64) -> Self {
        assert!(stride > 0 && length > 0);
        Self::Strided {
            base,
            stride,
            length,
            cursor: 0,
        }
    }

    /// A pointer-chase model over a working set.
    ///
    /// # Panics
    ///
    /// Panics if `working_set` is smaller than one cache line.
    #[must_use]
    pub fn pointer_chase(base: u64, working_set: u64) -> Self {
        assert!(working_set >= 64);
        Self::PointerChase { base, working_set }
    }

    /// A Zipf object-popularity model.
    ///
    /// # Panics
    ///
    /// Panics if `objects` is zero or `object_size` is zero.
    #[must_use]
    pub fn zipf_objects(base: u64, objects: usize, object_size: u64, s: f64) -> Self {
        assert!(object_size > 0);
        Self::ZipfObjects {
            base,
            object_size,
            zipf: Zipf::new(objects, s).expect("objects > 0"),
        }
    }

    /// A stack-frame model with `slots` 8-byte slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    #[must_use]
    pub fn stack_frame(slots: u64) -> Self {
        assert!(slots > 0);
        Self::StackFrame {
            frame: STACK_BASE,
            slots,
        }
    }

    /// Draws the next effective address (8-byte aligned).
    pub fn next_addr(&mut self, rng: &mut SimRng) -> u64 {
        match self {
            Self::Strided {
                base,
                stride,
                length,
                cursor,
            } => {
                let addr = *base + *cursor;
                *cursor = (*cursor + *stride) % *length;
                addr & !7
            }
            Self::PointerChase { base, working_set } => {
                let lines = (*working_set / 64).max(1);
                let line = rng.below(lines);
                let offset = rng.below(8) * 8;
                (*base + line * 64 + offset) & !7
            }
            Self::ZipfObjects {
                base,
                object_size,
                zipf,
            } => {
                let rank = zipf.sample(rng) as u64;
                let within = rng.below((*object_size / 8).max(1)) * 8;
                (*base + rank * *object_size + within) & !7
            }
            Self::StackFrame { frame, slots } => {
                let slot = rng.below(*slots);
                (*frame - slot * 8) & !7
            }
        }
    }

    /// Informs the model of a call (new stack frame) — only meaningful for
    /// [`AddressModel::StackFrame`].
    pub fn push_frame(&mut self) {
        if let Self::StackFrame { frame, slots } = self {
            *frame = frame.saturating_sub(*slots * 8 + 16);
        }
    }

    /// Informs the model of a return (pop stack frame).
    pub fn pop_frame(&mut self) {
        if let Self::StackFrame { frame, slots } = self {
            *frame = (*frame + *slots * 8 + 16).min(STACK_BASE);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_wraps_and_aligns() {
        let mut m = AddressModel::strided(0x1000, 64, 256);
        let mut rng = SimRng::seed_from(0);
        let seq: Vec<u64> = (0..6).map(|_| m.next_addr(&mut rng)).collect();
        assert_eq!(seq, vec![0x1000, 0x1040, 0x1080, 0x10C0, 0x1000, 0x1040]);
    }

    #[test]
    fn pointer_chase_stays_in_working_set() {
        let ws = 4096;
        let mut m = AddressModel::pointer_chase(HEAP_BASE, ws);
        let mut rng = SimRng::seed_from(1);
        for _ in 0..1000 {
            let a = m.next_addr(&mut rng);
            assert!(a >= HEAP_BASE && a < HEAP_BASE + ws);
            assert_eq!(a % 8, 0);
        }
    }

    #[test]
    fn pointer_chase_covers_many_lines() {
        let mut m = AddressModel::pointer_chase(0, 64 * 64);
        let mut rng = SimRng::seed_from(2);
        let mut lines = std::collections::HashSet::new();
        for _ in 0..2000 {
            lines.insert(m.next_addr(&mut rng) >> 6);
        }
        assert!(lines.len() > 48, "covered {} of 64 lines", lines.len());
    }

    #[test]
    fn zipf_objects_prefer_the_head() {
        let mut m = AddressModel::zipf_objects(0, 1024, 64, 1.1);
        let mut rng = SimRng::seed_from(3);
        let mut head = 0;
        for _ in 0..10_000 {
            if m.next_addr(&mut rng) < 64 * 16 {
                head += 1;
            }
        }
        // Top-16 objects absorb a large share under Zipf(1.1).
        assert!(head > 3_000, "head hits {head}");
    }

    #[test]
    fn stack_frames_nest_and_restore() {
        let mut m = AddressModel::stack_frame(8);
        let mut rng = SimRng::seed_from(4);
        let top = m.next_addr(&mut rng);
        assert!(top <= STACK_BASE);
        m.push_frame();
        let inner = m.next_addr(&mut rng);
        assert!(inner < top, "inner frame below outer");
        m.pop_frame();
        let restored = m.next_addr(&mut rng);
        assert!(restored > inner);
        // Pop beyond the base clamps.
        m.pop_frame();
        m.pop_frame();
        assert!(m.next_addr(&mut rng) <= STACK_BASE);
    }

    #[test]
    fn stack_reuses_few_addresses() {
        // The whole point of the stack model: a handful of hot slots, so
        // store→load same-address pairs are frequent.
        let mut m = AddressModel::stack_frame(4);
        let mut rng = SimRng::seed_from(5);
        let mut unique = std::collections::HashSet::new();
        for _ in 0..1000 {
            unique.insert(m.next_addr(&mut rng));
        }
        assert!(unique.len() <= 4);
    }
}
