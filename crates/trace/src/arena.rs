//! Structure-of-arrays trace layout for decode-once/simulate-many sweeps.
//!
//! A voltage sweep re-runs the *same* trace at every (Vcc, mechanism)
//! point. [`TraceArena`] is the [`Trace`] decoded once into parallel
//! column vectors and then shared immutably across every sweep point: the
//! engine indexes exactly the fields a pipeline stage needs (the fetch
//! stage touches `pc`/`kind`/`taken`/`target`, issue touches the operand
//! columns), so the hot loops walk dense homogeneous arrays instead of
//! striding over 48-byte [`Uop`] records.

use crate::uop::{Reg, Trace, Uop, UopKind};

/// A [`Trace`] decoded into structure-of-arrays columns.
///
/// Construction is the only copy; afterwards the arena is read-only and
/// freely shareable across threads (`&TraceArena` is `Sync`).
///
/// ```
/// use lowvcc_trace::{Trace, TraceArena, Uop};
///
/// let trace = Trace::new("t", vec![Uop::nop(0x0), Uop::nop(0x4)]);
/// let arena = TraceArena::from_trace(&trace);
/// assert_eq!(arena.len(), 2);
/// assert_eq!(arena.pc(1), 0x4);
/// assert_eq!(arena.name(), "t");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceArena {
    name: String,
    pc: Vec<u64>,
    kind: Vec<UopKind>,
    dst: Vec<Option<Reg>>,
    src1: Vec<Option<Reg>>,
    src2: Vec<Option<Reg>>,
    addr: Vec<Option<u64>>,
    size: Vec<u8>,
    taken: Vec<bool>,
    target: Vec<u64>,
}

impl TraceArena {
    /// Decodes `trace` into columns. O(len); done once per sweep batch.
    #[must_use]
    pub fn from_trace(trace: &Trace) -> Self {
        let n = trace.uops.len();
        let mut arena = Self {
            name: trace.name.clone(),
            pc: Vec::with_capacity(n),
            kind: Vec::with_capacity(n),
            dst: Vec::with_capacity(n),
            src1: Vec::with_capacity(n),
            src2: Vec::with_capacity(n),
            addr: Vec::with_capacity(n),
            size: Vec::with_capacity(n),
            taken: Vec::with_capacity(n),
            target: Vec::with_capacity(n),
        };
        for u in &trace.uops {
            arena.pc.push(u.pc);
            arena.kind.push(u.kind);
            arena.dst.push(u.dst);
            arena.src1.push(u.src1);
            arena.src2.push(u.src2);
            arena.addr.push(u.addr);
            arena.size.push(u.size);
            arena.taken.push(u.taken);
            arena.target.push(u.target);
        }
        arena
    }

    /// Trace name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of uops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pc.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pc.is_empty()
    }

    /// Program counter of uop `i`.
    #[must_use]
    pub fn pc(&self, i: usize) -> u64 {
        self.pc[i]
    }

    /// Kind of uop `i`.
    #[must_use]
    pub fn kind(&self, i: usize) -> UopKind {
        self.kind[i]
    }

    /// Destination register of uop `i`.
    #[must_use]
    pub fn dst(&self, i: usize) -> Option<Reg> {
        self.dst[i]
    }

    /// First source register of uop `i`.
    #[must_use]
    pub fn src1(&self, i: usize) -> Option<Reg> {
        self.src1[i]
    }

    /// Second source register of uop `i`.
    #[must_use]
    pub fn src2(&self, i: usize) -> Option<Reg> {
        self.src2[i]
    }

    /// Memory address of uop `i` (memory uops only).
    #[must_use]
    pub fn addr(&self, i: usize) -> Option<u64> {
        self.addr[i]
    }

    /// Access size in bytes of uop `i`.
    #[must_use]
    pub fn size(&self, i: usize) -> u8 {
        self.size[i]
    }

    /// Resolved direction of uop `i` (control uops only).
    #[must_use]
    pub fn taken(&self, i: usize) -> bool {
        self.taken[i]
    }

    /// Resolved target of uop `i` (control uops only).
    #[must_use]
    pub fn target(&self, i: usize) -> u64 {
        self.target[i]
    }

    /// Reassembles uop `i` (diagnostics and equivalence tests; the hot
    /// paths use the column accessors directly).
    #[must_use]
    pub fn uop(&self, i: usize) -> Uop {
        Uop {
            pc: self.pc[i],
            kind: self.kind[i],
            dst: self.dst[i],
            src1: self.src1[i],
            src2: self.src2[i],
            addr: self.addr[i],
            size: self.size[i],
            taken: self.taken[i],
            target: self.target[i],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{TraceSpec, WorkloadFamily};

    #[test]
    fn round_trips_every_uop() {
        let trace = TraceSpec::new(WorkloadFamily::SpecInt, 7, 5_000)
            .build()
            .unwrap();
        let arena = TraceArena::from_trace(&trace);
        assert_eq!(arena.len(), trace.uops.len());
        assert_eq!(arena.name(), trace.name);
        for (i, u) in trace.uops.iter().enumerate() {
            assert_eq!(arena.uop(i), *u, "uop {i} must round-trip");
        }
    }

    #[test]
    fn empty_trace() {
        let trace = Trace::new("empty", vec![]);
        let arena = TraceArena::from_trace(&trace);
        assert!(arena.is_empty());
        assert_eq!(arena.len(), 0);
    }

    #[test]
    fn column_accessors_match_fields() {
        let u = Uop::load(0x40, Reg::new(1).unwrap(), None, 0x1000, 8);
        let trace = Trace::new("one", vec![u]);
        let arena = TraceArena::from_trace(&trace);
        assert_eq!(arena.pc(0), u.pc);
        assert_eq!(arena.kind(0), u.kind);
        assert_eq!(arena.dst(0), u.dst);
        assert_eq!(arena.src1(0), u.src1);
        assert_eq!(arena.src2(0), u.src2);
        assert_eq!(arena.addr(0), u.addr);
        assert_eq!(arena.size(0), u.size);
        assert_eq!(arena.taken(0), u.taken);
        assert_eq!(arena.target(0), u.target);
    }
}
