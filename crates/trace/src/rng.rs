//! Deterministic PRNG for trace generation (SplitMix64 + xoshiro256\*\*).
//!
//! Recorded experiment outputs must not drift when the `rand` crate
//! updates its algorithms, so the generators use an in-tree
//! xoshiro256\*\* (Blackman & Vigna) seeded through SplitMix64. Both are
//! validated against reference sequences.

/// SplitMix64 — used to expand a 64-bit seed into xoshiro state.
///
/// ```
/// use lowvcc_trace::rng::SplitMix64;
///
/// let mut sm = SplitMix64::new(0);
/// assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF); // published vector
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* — the workhorse generator for all synthetic workloads.
///
/// ```
/// use lowvcc_trace::rng::SimRng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seeds the generator by expanding `seed` through SplitMix64.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // 128-bit multiply-shift (Lemire); bias is negligible for the
        // simulation's purposes and the method is branch-free.

        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Bernoulli trial with probability `p` (clamped to \[0, 1\]).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Uniform choice of a slice element.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_sequence() {
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
        let mut sm42 = SplitMix64::new(42);
        assert_eq!(sm42.next_u64(), 0xBDD7_3226_2FEB_6E95);
    }

    #[test]
    fn xoshiro_reference_sequence() {
        // xoshiro256** state seeded via SplitMix64(0).
        let mut rng = SimRng::seed_from(0);
        assert_eq!(rng.next_u64(), 0x99EC_5F36_CB75_F2B4);
        assert_eq!(rng.next_u64(), 0xBF6E_1F78_4956_452A);
        assert_eq!(rng.next_u64(), 0x1A5F_849D_4933_E6E0);
        assert_eq!(rng.next_u64(), 0x6AA5_94F1_262D_2D2C);
        let mut rng2 = SimRng::seed_from(12345);
        assert_eq!(rng2.next_u64(), 0xBE6A_3637_4160_D49B);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::seed_from(99);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of uniform[0,1) over 10k samples: within 2% of 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = SimRng::seed_from(7);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.below(10) as usize] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(
                (9_000..11_000).contains(c),
                "bucket {i} count {c} far from uniform"
            );
        }
    }

    #[test]
    fn chance_matches_probability() {
        let mut rng = SimRng::seed_from(3);
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        assert!((24_000..26_000).contains(&hits), "hits {hits}");
        // Clamped extremes.
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn pick_covers_all_elements() {
        let mut rng = SimRng::seed_from(11);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[*rng.pick(&items) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        let mut rng = SimRng::seed_from(0);
        let _ = rng.below(0);
    }
}
