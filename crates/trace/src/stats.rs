//! Trace-analysis statistics.
//!
//! Used to verify that synthesized families actually exhibit the behaviour
//! their paper counterparts imply (mix, dependency distances, footprints),
//! and quoted in EXPERIMENTS.md alongside the simulation results.

use std::collections::{HashMap, HashSet};

use crate::uop::{Reg, Trace, UopKind};

/// Histogram cap for dependency distances (distances beyond are lumped).
pub const DEP_HISTOGRAM_MAX: usize = 16;

/// Summary statistics of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total dynamic uops.
    pub total: usize,
    /// Dynamic count per uop kind.
    pub kind_counts: HashMap<UopKind, usize>,
    /// Taken branches among conditional branches.
    pub taken_branches: usize,
    /// Histogram of producer→consumer distances (index 0 = distance 1);
    /// the last bucket collects everything ≥ [`DEP_HISTOGRAM_MAX`].
    pub dep_histogram: Vec<usize>,
    /// Unique 64-byte code lines touched.
    pub code_lines: usize,
    /// Unique 64-byte data lines touched.
    pub data_lines: usize,
    /// Loads whose address was stored at most 4 uops earlier
    /// (the Store Table's full-match events).
    pub immediate_store_load_pairs: usize,
}

impl TraceStats {
    /// Analyzes a trace.
    #[must_use]
    pub fn analyze(trace: &Trace) -> Self {
        let mut kind_counts: HashMap<UopKind, usize> = HashMap::new();
        let mut taken_branches = 0usize;
        let mut dep_histogram = vec![0usize; DEP_HISTOGRAM_MAX];
        let mut code_lines = HashSet::new();
        let mut data_lines = HashSet::new();
        let mut last_writer: HashMap<Reg, usize> = HashMap::new();
        let mut recent_stores: Vec<(usize, u64)> = Vec::new();
        let mut immediate_store_load_pairs = 0usize;

        for (i, u) in trace.uops.iter().enumerate() {
            *kind_counts.entry(u.kind).or_insert(0) += 1;
            if u.kind == UopKind::Branch && u.taken {
                taken_branches += 1;
            }
            code_lines.insert(u.pc >> 6);
            if let Some(line) = u.line_addr() {
                data_lines.insert(line);
            }
            for s in u.sources() {
                if let Some(&w) = last_writer.get(&s) {
                    let d = (i - w).min(DEP_HISTOGRAM_MAX);
                    dep_histogram[d - 1] += 1;
                }
            }
            if u.kind == UopKind::Load {
                if let Some(addr) = u.addr {
                    if recent_stores
                        .iter()
                        .any(|&(si, sa)| sa == addr && i - si <= 4)
                    {
                        immediate_store_load_pairs += 1;
                    }
                }
            }
            if u.kind == UopKind::Store {
                if let Some(addr) = u.addr {
                    recent_stores.push((i, addr));
                    if recent_stores.len() > 8 {
                        recent_stores.remove(0);
                    }
                }
            }
            if let Some(d) = u.dst {
                last_writer.insert(d, i);
            }
        }

        Self {
            total: trace.len(),
            kind_counts,
            taken_branches,
            dep_histogram,
            code_lines: code_lines.len(),
            data_lines: data_lines.len(),
            immediate_store_load_pairs,
        }
    }

    /// Fraction of uops of the given kind.
    #[must_use]
    pub fn fraction(&self, kind: UopKind) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.kind_counts.get(&kind).unwrap_or(&0) as f64 / self.total as f64
    }

    /// Fraction of uops that redirect control flow.
    #[must_use]
    pub fn control_fraction(&self) -> f64 {
        self.fraction(UopKind::Branch) + self.fraction(UopKind::Call) + self.fraction(UopKind::Ret)
    }

    /// Fraction of source operands whose producer is at distance ≤ `d`.
    #[must_use]
    pub fn short_dep_fraction(&self, d: usize) -> f64 {
        let total: usize = self.dep_histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let short: usize = self.dep_histogram.iter().take(d).sum();
        short as f64 / total as f64
    }

    /// Mean producer→consumer distance (capped at the histogram limit).
    #[must_use]
    pub fn mean_dep_distance(&self) -> f64 {
        let total: usize = self.dep_histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: usize = self
            .dep_histogram
            .iter()
            .enumerate()
            .map(|(i, &c)| (i + 1) * c)
            .sum();
        weighted as f64 / total as f64
    }

    /// Approximate static code footprint in bytes (64 B per line).
    #[must_use]
    pub fn code_footprint_bytes(&self) -> u64 {
        self.code_lines as u64 * 64
    }

    /// Approximate data working set in bytes (64 B per line).
    #[must_use]
    pub fn data_footprint_bytes(&self) -> u64 {
        self.data_lines as u64 * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{TraceSpec, WorkloadFamily};

    fn stats_for(family: WorkloadFamily, len: usize) -> TraceStats {
        let t = TraceSpec::new(family, 0, len).build().unwrap();
        TraceStats::analyze(&t)
    }

    #[test]
    fn mixes_roughly_match_presets() {
        let s = stats_for(WorkloadFamily::SpecInt, 60_000);
        // Loads ≈ 27% of body instructions; bodies are ≈85% of the stream.
        let loads = s.fraction(UopKind::Load);
        assert!((0.15..0.32).contains(&loads), "load fraction {loads:.3}");
        let stores = s.fraction(UopKind::Store);
        assert!((0.06..0.18).contains(&stores), "store fraction {stores:.3}");
        // No FP in integer code.
        assert_eq!(s.fraction(UopKind::FpAdd), 0.0);
    }

    #[test]
    fn control_fraction_reasonable() {
        for family in WorkloadFamily::all() {
            let s = stats_for(family, 40_000);
            let cf = s.control_fraction();
            assert!(
                (0.04..0.30).contains(&cf),
                "{family}: control fraction {cf:.3}"
            );
        }
    }

    #[test]
    fn dependency_distances_short_and_family_ordered() {
        // Kernel (dep_p=.55) has shorter dependencies than SpecFp (.30).
        let kernel = stats_for(WorkloadFamily::Kernel, 40_000);
        let fp = stats_for(WorkloadFamily::SpecFp, 40_000);
        assert!(kernel.mean_dep_distance() < fp.mean_dep_distance());
        assert!(kernel.short_dep_fraction(2) > 0.3);
    }

    #[test]
    fn code_footprints_ordered_as_designed() {
        let kernel = stats_for(WorkloadFamily::Kernel, 100_000);
        let office = stats_for(WorkloadFamily::Office, 100_000);
        assert!(
            kernel.code_footprint_bytes() < 8 * 1024,
            "kernel footprint {}",
            kernel.code_footprint_bytes()
        );
        assert!(
            office.code_footprint_bytes() > 24 * 1024,
            "office footprint {}",
            office.code_footprint_bytes()
        );
        assert!(kernel.code_footprint_bytes() < office.code_footprint_bytes());
    }

    #[test]
    fn streaming_families_touch_more_data_lines() {
        let kernel = stats_for(WorkloadFamily::Kernel, 60_000);
        let media = stats_for(WorkloadFamily::Multimedia, 60_000);
        assert!(kernel.data_lines > 100);
        assert!(media.data_lines > 50);
    }

    #[test]
    fn stack_reuse_creates_store_load_pairs() {
        // These events feed the Store Table's full-match path.
        let s = stats_for(WorkloadFamily::Office, 60_000);
        assert!(
            s.immediate_store_load_pairs > 10,
            "immediate store→load pairs {}",
            s.immediate_store_load_pairs
        );
    }

    #[test]
    fn empty_trace_yields_zeroes() {
        let s = TraceStats::analyze(&Trace::new("empty", vec![]));
        assert_eq!(s.total, 0);
        assert_eq!(s.fraction(UopKind::IntAlu), 0.0);
        assert_eq!(s.short_dep_fraction(4), 0.0);
        assert_eq!(s.mean_dep_distance(), 0.0);
    }
}
