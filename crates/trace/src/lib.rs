//! Micro-op trace model and synthetic workload generators for the
//! reproduction of *"High-Performance Low-Vcc In-Order Core"* (HPCA 2010).
//!
//! The paper evaluates on 531 proprietary Intel traces of 10 M instructions
//! spanning Spec2006/2000, kernels, multimedia, office, server and
//! workstation programs. This crate substitutes seeded synthetic programs —
//! structured control flow walked into dynamic uop streams — one
//! parameterized family per workload class (see [`families`]).
//!
//! ```
//! use lowvcc_trace::families::{TraceSpec, WorkloadFamily};
//! use lowvcc_trace::stats::TraceStats;
//!
//! let trace = TraceSpec::new(WorkloadFamily::SpecInt, 0, 10_000).build()?;
//! let stats = TraceStats::analyze(&trace);
//! assert!(stats.control_fraction() > 0.05); // branchy integer code
//! # Ok::<(), lowvcc_trace::TraceError>(())
//! ```

pub mod addr;
pub mod arena;
pub mod dist;
pub mod error;
pub mod families;
pub mod rng;
pub mod schedule;
pub mod stats;
pub mod synth;
pub mod uop;

pub use arena::TraceArena;
pub use error::{TraceError, UopError};
pub use families::{default_suite, paper_scale_suite, suite, TraceSpec, WorkloadFamily};
pub use rng::SimRng;
pub use schedule::{schedule_trace, verify_reorder, ScheduleConfig, ScheduleStats};
pub use stats::TraceStats;
pub use synth::{Generator, SynthParams};
pub use uop::{Reg, RegError, Trace, Uop, UopKind, NUM_REGS};
