//! Micro-operation (uop) model consumed by the cycle-level simulator.
//!
//! The paper's evaluation is trace-driven ("trace-driven Intel production
//! simulators", §5.1): the simulator replays a correct-path instruction
//! stream and models timing. A [`Uop`] therefore carries everything timing
//! needs — operand registers (for the scoreboard), memory address (for the
//! cache hierarchy), and branch outcome/target (for the predictors) — but
//! no data values.

use std::fmt;

use crate::error::{TraceError, UopError};

/// Number of architectural registers tracked by the scoreboard
/// (integer + floating-point/SIMD logical registers of the in-order core).
pub const NUM_REGS: u8 = 64;

/// A logical register identifier in `0..NUM_REGS`.
///
/// ```
/// use lowvcc_trace::Reg;
///
/// let r = Reg::new(5)?;
/// assert_eq!(r.index(), 5);
/// assert!(Reg::new(200).is_err());
/// # Ok::<(), lowvcc_trace::RegError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

/// Error constructing a [`Reg`] out of range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegError {
    /// The rejected register index.
    pub index: u8,
}

impl fmt::Display for RegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "register index {} out of range 0..{NUM_REGS}",
            self.index
        )
    }
}

impl std::error::Error for RegError {}

impl Reg {
    /// Creates a register identifier.
    ///
    /// # Errors
    ///
    /// Returns [`RegError`] if `index >= NUM_REGS`.
    pub fn new(index: u8) -> Result<Self, RegError> {
        if index < NUM_REGS {
            Ok(Self(index))
        } else {
            Err(RegError { index })
        }
    }

    /// The register index.
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Iterator over all architectural registers.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_REGS).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Operation classes, mirroring the execution units of the in-order core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UopKind {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Pipelined integer multiply.
    IntMul,
    /// Unpipelined integer divide.
    IntDiv,
    /// Floating-point add/sub (SIMD lane).
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Unpipelined floating-point divide.
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
    /// Function call (pushes the return address on the RSB).
    Call,
    /// Function return (predicted via the RSB).
    Ret,
    /// No-operation (also injected to drain the IQ, paper §4.2).
    Nop,
}

impl UopKind {
    /// Whether this uop accesses data memory.
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self, Self::Load | Self::Store)
    }

    /// Whether this uop redirects control flow.
    #[must_use]
    pub fn is_control(self) -> bool {
        matches!(self, Self::Branch | Self::Call | Self::Ret)
    }

    /// Whether this uop's execution latency is long and variable enough
    /// that the scoreboard tracks it via a completion event rather than a
    /// shift-register pattern (paper §4.1.1 "long-latency instructions").
    #[must_use]
    pub fn is_long_latency(self) -> bool {
        matches!(self, Self::IntDiv | Self::FpDiv)
    }

    /// All uop kinds (for exhaustive table construction).
    #[must_use]
    pub fn all() -> [UopKind; 12] {
        [
            Self::IntAlu,
            Self::IntMul,
            Self::IntDiv,
            Self::FpAdd,
            Self::FpMul,
            Self::FpDiv,
            Self::Load,
            Self::Store,
            Self::Branch,
            Self::Call,
            Self::Ret,
            Self::Nop,
        ]
    }
}

impl fmt::Display for UopKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::IntAlu => "alu",
            Self::IntMul => "mul",
            Self::IntDiv => "div",
            Self::FpAdd => "fadd",
            Self::FpMul => "fmul",
            Self::FpDiv => "fdiv",
            Self::Load => "load",
            Self::Store => "store",
            Self::Branch => "br",
            Self::Call => "call",
            Self::Ret => "ret",
            Self::Nop => "nop",
        };
        f.write_str(s)
    }
}

/// One dynamic micro-operation of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Uop {
    /// Program counter of this uop.
    pub pc: u64,
    /// Operation class.
    pub kind: UopKind,
    /// Destination register, if the uop produces a value.
    pub dst: Option<Reg>,
    /// First source register.
    pub src1: Option<Reg>,
    /// Second source register.
    pub src2: Option<Reg>,
    /// Effective data address for loads/stores.
    pub addr: Option<u64>,
    /// Access size in bytes for loads/stores (4 or 8).
    pub size: u8,
    /// Actual branch outcome for control uops.
    pub taken: bool,
    /// Actual next-pc for control uops (branch target, callee entry, or
    /// return address).
    pub target: u64,
}

impl Uop {
    /// A plain single-cycle ALU uop.
    #[must_use]
    pub fn alu(pc: u64, dst: Option<Reg>, src1: Option<Reg>, src2: Option<Reg>) -> Self {
        Self {
            pc,
            kind: UopKind::IntAlu,
            dst,
            src1,
            src2,
            addr: None,
            size: 0,
            taken: false,
            target: 0,
        }
    }

    /// A load uop reading `addr` into `dst`.
    #[must_use]
    pub fn load(pc: u64, dst: Reg, base: Option<Reg>, addr: u64, size: u8) -> Self {
        Self {
            pc,
            kind: UopKind::Load,
            dst: Some(dst),
            src1: base,
            src2: None,
            addr: Some(addr),
            size,
            taken: false,
            target: 0,
        }
    }

    /// A store uop writing `src` to `addr`.
    #[must_use]
    pub fn store(pc: u64, data: Option<Reg>, base: Option<Reg>, addr: u64, size: u8) -> Self {
        Self {
            pc,
            kind: UopKind::Store,
            dst: None,
            src1: data,
            src2: base,
            addr: Some(addr),
            size,
            taken: false,
            target: 0,
        }
    }

    /// A conditional branch with its resolved outcome and target.
    #[must_use]
    pub fn branch(pc: u64, src: Option<Reg>, taken: bool, target: u64) -> Self {
        Self {
            pc,
            kind: UopKind::Branch,
            dst: None,
            src1: src,
            src2: None,
            addr: None,
            size: 0,
            taken,
            target,
        }
    }

    /// A nop (used for IQ drain injection).
    #[must_use]
    pub fn nop(pc: u64) -> Self {
        Self {
            pc,
            kind: UopKind::Nop,
            dst: None,
            src1: None,
            src2: None,
            addr: None,
            size: 0,
            taken: false,
            target: 0,
        }
    }

    /// Source registers as an iterator (0, 1 or 2 items).
    pub fn sources(&self) -> impl Iterator<Item = Reg> + '_ {
        self.src1.into_iter().chain(self.src2)
    }

    /// Cache-line address (64-byte lines) of the memory access, if any.
    #[must_use]
    pub fn line_addr(&self) -> Option<u64> {
        self.addr.map(|a| a >> 6)
    }

    /// Validates kind/payload consistency.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found (memory uop without an
    /// address, control uop without a target, or a non-memory uop carrying
    /// an address).
    pub fn validate(&self) -> Result<(), UopError> {
        if self.kind.is_mem() && self.addr.is_none() {
            return Err(UopError::MissingAddress {
                kind: self.kind,
                pc: self.pc,
            });
        }
        if !self.kind.is_mem() && self.addr.is_some() {
            return Err(UopError::UnexpectedAddress {
                kind: self.kind,
                pc: self.pc,
            });
        }
        if self.kind.is_control() && self.taken && self.target == 0 {
            return Err(UopError::MissingTarget {
                kind: self.kind,
                pc: self.pc,
            });
        }
        if self.kind == UopKind::Load && self.dst.is_none() {
            return Err(UopError::MissingDestination { pc: self.pc });
        }
        Ok(())
    }
}

/// A named instruction trace: the unit of workload the simulator replays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Human-readable name (family + seed).
    pub name: String,
    /// The dynamic uop stream.
    pub uops: Vec<Uop>,
}

impl Trace {
    /// Creates a trace from a uop stream.
    #[must_use]
    pub fn new(name: impl Into<String>, uops: Vec<Uop>) -> Self {
        Self {
            name: name.into(),
            uops,
        }
    }

    /// Number of dynamic uops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// Validates every uop.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Uop`] carrying the first invalid uop's index
    /// and defect.
    pub fn validate(&self) -> Result<(), TraceError> {
        for (i, u) in self.uops.iter().enumerate() {
            u.validate()
                .map_err(|source| TraceError::Uop { index: i, source })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i).unwrap()
    }

    #[test]
    fn reg_bounds() {
        assert!(Reg::new(0).is_ok());
        assert!(Reg::new(NUM_REGS - 1).is_ok());
        assert!(Reg::new(NUM_REGS).is_err());
        assert_eq!(Reg::all().count(), usize::from(NUM_REGS));
        assert_eq!(r(7).to_string(), "r7");
    }

    #[test]
    fn kind_classification() {
        assert!(UopKind::Load.is_mem());
        assert!(UopKind::Store.is_mem());
        assert!(!UopKind::IntAlu.is_mem());
        assert!(UopKind::Branch.is_control());
        assert!(UopKind::Call.is_control());
        assert!(UopKind::Ret.is_control());
        assert!(UopKind::IntDiv.is_long_latency());
        assert!(UopKind::FpDiv.is_long_latency());
        assert!(!UopKind::Load.is_long_latency());
        assert_eq!(UopKind::all().len(), 12);
    }

    #[test]
    fn constructors_produce_valid_uops() {
        let uops = [
            Uop::alu(0x1000, Some(r(1)), Some(r(2)), Some(r(3))),
            Uop::load(0x1004, r(4), Some(r(1)), 0xbeef00, 8),
            Uop::store(0x1008, Some(r(4)), Some(r(1)), 0xbeef08, 4),
            Uop::branch(0x100c, Some(r(4)), true, 0x1000),
            Uop::nop(0x1010),
        ];
        for u in &uops {
            u.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut bad_load = Uop::load(0, r(1), None, 0x40, 8);
        bad_load.addr = None;
        assert!(bad_load.validate().is_err());

        let mut alu_with_addr = Uop::alu(0, Some(r(1)), None, None);
        alu_with_addr.addr = Some(0x40);
        assert!(alu_with_addr.validate().is_err());

        let taken_no_target = Uop::branch(4, None, true, 0);
        assert!(taken_no_target.validate().is_err());

        let mut load_no_dst = Uop::load(0, r(1), None, 0x40, 8);
        load_no_dst.dst = None;
        assert!(load_no_dst.validate().is_err());
    }

    #[test]
    fn sources_iterates_present_operands() {
        let u = Uop::alu(0, Some(r(1)), Some(r(2)), None);
        let srcs: Vec<_> = u.sources().collect();
        assert_eq!(srcs, vec![r(2)]);
        let u2 = Uop::alu(0, Some(r(1)), Some(r(2)), Some(r(3)));
        assert_eq!(u2.sources().count(), 2);
    }

    #[test]
    fn line_addr_uses_64_byte_lines() {
        let u = Uop::load(0, r(1), None, 0x1003f, 4);
        assert_eq!(u.line_addr(), Some(0x400));
        assert_eq!(Uop::nop(0).line_addr(), None);
    }

    #[test]
    fn trace_validation_reports_index() {
        let mut bad = Uop::load(4, r(1), None, 0x40, 8);
        bad.addr = None;
        let t = Trace::new("t", vec![Uop::nop(0), bad]);
        let err = t.validate().unwrap_err();
        assert!(
            matches!(
                err,
                TraceError::Uop {
                    index: 1,
                    source: UopError::MissingAddress { .. }
                }
            ),
            "{err}"
        );
        assert!(err.to_string().starts_with("uop 1:"), "{err}");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}
