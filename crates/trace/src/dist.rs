//! Sampling distributions for workload synthesis.
//!
//! Register dependency distances are geometric (most consumers read a value
//! produced a few instructions earlier — this is exactly what determines the
//! paper's "13.2% of instructions delayed" result), memory object popularity
//! is Zipfian (server workloads), and instruction mixes are small discrete
//! distributions.

use crate::rng::SimRng;

/// Geometric distribution on `{1, 2, 3, …}` with success probability `p`.
///
/// ```
/// use lowvcc_trace::dist::Geometric;
/// use lowvcc_trace::rng::SimRng;
///
/// let g = Geometric::new(0.5)?;
/// let mut rng = SimRng::seed_from(1);
/// let x = g.sample(&mut rng);
/// assert!(x >= 1);
/// # Ok::<(), lowvcc_trace::dist::DistError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
}

/// Error constructing a distribution with invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// Probability outside `(0, 1]`.
    BadProbability {
        /// The rejected value.
        p: f64,
    },
    /// Empty or all-zero weight vector.
    BadWeights,
    /// Zipf support size of zero.
    EmptySupport,
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadProbability { p } => write!(f, "probability {p} outside (0, 1]"),
            Self::BadWeights => write!(f, "weights must be non-empty with a positive sum"),
            Self::EmptySupport => write!(f, "support size must be positive"),
        }
    }
}

impl std::error::Error for DistError {}

impl Geometric {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::BadProbability`] unless `0 < p <= 1`.
    pub fn new(p: f64) -> Result<Self, DistError> {
        if p > 0.0 && p <= 1.0 {
            Ok(Self { p })
        } else {
            Err(DistError::BadProbability { p })
        }
    }

    /// Mean of the distribution (`1/p`).
    #[must_use]
    pub fn mean(&self) -> f64 {
        1.0 / self.p
    }

    /// Draws a sample in `{1, 2, …}` by inversion.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        if self.p >= 1.0 {
            return 1;
        }
        let u = rng.next_f64();
        // Inversion: ceil(ln(1-u) / ln(1-p)); 1-u ∈ (0,1] avoids ln(0).
        let x = ((1.0 - u).ln() / (1.0 - self.p).ln()).ceil();
        (x as u64).max(1)
    }
}

/// Discrete distribution over `0..weights.len()` by linear CDF scan
/// (mixes have ≤ a dozen entries; a scan beats alias-table setup).
#[derive(Debug, Clone, PartialEq)]
pub struct Discrete {
    cdf: Vec<f64>,
}

impl Discrete {
    /// Builds from non-negative weights.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::BadWeights`] if `weights` is empty, contains a
    /// negative value, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, DistError> {
        if weights.is_empty() || weights.iter().any(|&w| w < 0.0 || !w.is_finite()) {
            return Err(DistError::BadWeights);
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(DistError::BadWeights);
        }
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Ok(Self { cdf })
    }

    /// Number of categories.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution has no categories (never true for a
    /// successfully constructed value).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a category index.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.next_f64();
        self.cdf
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.cdf.len() - 1)
    }
}

/// Zipf distribution over `0..n` with exponent `s`, via precomputed CDF.
///
/// Used for server-style object popularity (a few hot objects, a long
/// tail). Supports up to ~1 M categories comfortably.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `n` ranks with exponent `s`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::EmptySupport`] if `n == 0`.
    pub fn new(n: usize, s: f64) -> Result<Self, DistError> {
        if n == 0 {
            return Err(DistError::EmptySupport);
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Self { cdf })
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n` (0 is the most popular).
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.next_f64();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_matches_parameter() {
        let g = Geometric::new(0.4).unwrap();
        assert!((g.mean() - 2.5).abs() < 1e-12);
        let mut rng = SimRng::seed_from(5);
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| g.sample(&mut rng)).sum();
        let mean = sum as f64 / f64::from(n);
        assert!((mean - 2.5).abs() < 0.05, "empirical mean {mean}");
    }

    #[test]
    fn geometric_p_one_is_always_one() {
        let g = Geometric::new(1.0).unwrap();
        let mut rng = SimRng::seed_from(0);
        for _ in 0..100 {
            assert_eq!(g.sample(&mut rng), 1);
        }
    }

    #[test]
    fn geometric_rejects_bad_p() {
        assert!(Geometric::new(0.0).is_err());
        assert!(Geometric::new(1.5).is_err());
        assert!(Geometric::new(-0.1).is_err());
    }

    #[test]
    fn discrete_frequencies_match_weights() {
        let d = Discrete::new(&[1.0, 2.0, 1.0]).unwrap();
        assert_eq!(d.len(), 3);
        let mut rng = SimRng::seed_from(17);
        let mut counts = [0u32; 3];
        for _ in 0..100_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        assert!((f64::from(counts[0]) / 1e5 - 0.25).abs() < 0.01);
        assert!((f64::from(counts[1]) / 1e5 - 0.50).abs() < 0.01);
        assert!((f64::from(counts[2]) / 1e5 - 0.25).abs() < 0.01);
    }

    #[test]
    fn discrete_handles_zero_weight_categories() {
        let d = Discrete::new(&[0.0, 1.0, 0.0]).unwrap();
        let mut rng = SimRng::seed_from(1);
        for _ in 0..1000 {
            assert_eq!(d.sample(&mut rng), 1);
        }
    }

    #[test]
    fn discrete_rejects_bad_weights() {
        assert!(Discrete::new(&[]).is_err());
        assert!(Discrete::new(&[0.0, 0.0]).is_err());
        assert!(Discrete::new(&[1.0, -1.0]).is_err());
        assert!(Discrete::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn zipf_head_is_heavier_than_tail() {
        let z = Zipf::new(1000, 1.0).unwrap();
        assert_eq!(z.len(), 1000);
        let mut rng = SimRng::seed_from(23);
        let mut head = 0u32;
        let n = 100_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Top-10 of a Zipf(1.0, 1000) carries ≈39% of the mass.
        let frac = f64::from(head) / f64::from(n);
        assert!((frac - 0.39).abs() < 0.02, "head mass {frac}");
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0).unwrap();
        let mut rng = SimRng::seed_from(2);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c));
        }
    }

    #[test]
    fn zipf_rejects_empty_support() {
        assert!(Zipf::new(0, 1.0).is_err());
    }
}
