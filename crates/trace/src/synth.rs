//! Synthetic program and trace synthesis.
//!
//! The paper evaluates on 531 proprietary traces of 10 M instructions each.
//! As a substitute, this module synthesizes *structured* programs — real
//! control flow (loops, calls, biased branches) over a static code layout —
//! and walks them to produce dynamic uop streams. Structure matters:
//!
//! * recurring static branches give the branch predictor realistic work;
//! * a fixed code footprint drives IL0 behaviour;
//! * call/return pairs exercise the RSB;
//! * geometric register dependency distances determine how many consumers
//!   issue right after their producer — the knob behind the paper's
//!   "13.2% of instructions delayed" result;
//! * stack spill/fill address reuse generates the immediate store→load
//!   pairs the Store Table must catch.

use crate::addr::{AddressModel, HEAP_BASE};
use crate::dist::{Discrete, Geometric};
use crate::error::TraceError;
use crate::rng::SimRng;
use crate::uop::{Reg, Trace, Uop, UopKind};

/// Weights of non-control instruction classes in a block body.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixWeights {
    /// Integer ALU.
    pub alu: f64,
    /// Integer multiply.
    pub mul: f64,
    /// Integer divide.
    pub div: f64,
    /// FP add.
    pub fp_add: f64,
    /// FP multiply.
    pub fp_mul: f64,
    /// FP divide.
    pub fp_div: f64,
    /// Loads.
    pub load: f64,
    /// Stores.
    pub store: f64,
    /// Nops.
    pub nop: f64,
}

impl MixWeights {
    const KINDS: [UopKind; 9] = [
        UopKind::IntAlu,
        UopKind::IntMul,
        UopKind::IntDiv,
        UopKind::FpAdd,
        UopKind::FpMul,
        UopKind::FpDiv,
        UopKind::Load,
        UopKind::Store,
        UopKind::Nop,
    ];

    fn as_discrete(&self) -> Result<Discrete, TraceError> {
        Discrete::new(&[
            self.alu,
            self.mul,
            self.div,
            self.fp_add,
            self.fp_mul,
            self.fp_div,
            self.load,
            self.store,
            self.nop,
        ])
        .map_err(|source| TraceError::Weights {
            which: "instruction mix",
            source,
        })
    }
}

/// Memory region class referenced by a static memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionClass {
    /// Stack spill/fill slots.
    Stack,
    /// Sequential stream.
    Stream,
    /// Pointer-chase working set.
    Chase,
    /// Zipf-popular objects.
    Zipf,
}

/// Weights of the four region classes among memory instructions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemMix {
    /// Stack accesses.
    pub stack: f64,
    /// Streaming accesses.
    pub stream: f64,
    /// Pointer-chase accesses.
    pub chase: f64,
    /// Zipf-object accesses.
    pub zipf: f64,
}

impl MemMix {
    const CLASSES: [RegionClass; 4] = [
        RegionClass::Stack,
        RegionClass::Stream,
        RegionClass::Chase,
        RegionClass::Zipf,
    ];

    fn as_discrete(&self) -> Result<Discrete, TraceError> {
        Discrete::new(&[self.stack, self.stream, self.chase, self.zipf]).map_err(|source| {
            TraceError::Weights {
                which: "memory mix",
                source,
            }
        })
    }
}

/// Full parameter set of a synthetic workload family.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthParams {
    /// Body instruction mix.
    pub mix: MixWeights,
    /// Memory region mix.
    pub mem_mix: MemMix,
    /// Geometric parameter of register dependency distance
    /// (larger ⇒ shorter distances ⇒ more IRAW-prone consumers).
    pub dep_p: f64,
    /// Fraction of ALU/FP uops with two source registers.
    pub two_source_fraction: f64,
    /// Number of functions in the static program.
    pub functions: u32,
    /// Blocks per function (inclusive range).
    pub blocks_per_function: (u32, u32),
    /// Body instructions per block (inclusive range).
    pub block_len: (u32, u32),
    /// Probability that a non-final block is a loop body.
    pub loop_fraction: f64,
    /// Mean loop trip count.
    pub mean_loop_trips: f64,
    /// Probability that a non-final, non-loop block ends in a call.
    pub call_fraction: f64,
    /// Distribution of taken-bias values for conditional forward branches:
    /// `(bias, weight)` pairs. Biases near 0 or 1 are predictable; 0.5 is
    /// noise.
    pub branch_biases: Vec<(f64, f64)>,
    /// Streaming-region length in bytes.
    pub stream_length: u64,
    /// Streaming stride in bytes.
    pub stream_stride: u64,
    /// Pointer-chase working-set size in bytes.
    pub chase_working_set: u64,
    /// Number of Zipf objects.
    pub zipf_objects: usize,
    /// Zipf object size in bytes.
    pub zipf_object_size: u64,
    /// Zipf exponent.
    pub zipf_s: f64,
    /// Stack slots per frame.
    pub stack_slots: u64,
}

impl SynthParams {
    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] describing the first invalid parameter.
    pub fn validate(&self) -> Result<(), TraceError> {
        self.mix.as_discrete()?;
        self.mem_mix.as_discrete()?;
        if !(0.0 < self.dep_p && self.dep_p <= 1.0) {
            return Err(TraceError::OutOfRange {
                name: "dep_p",
                value: self.dep_p,
                expected: "(0, 1]",
            });
        }
        if !(0.0..=1.0).contains(&self.two_source_fraction) {
            return Err(TraceError::OutOfRange {
                name: "two_source_fraction",
                value: self.two_source_fraction,
                expected: "[0, 1]",
            });
        }
        if self.functions == 0 {
            return Err(TraceError::OutOfRange {
                name: "functions",
                value: 0.0,
                expected: "at least 1",
            });
        }
        if self.blocks_per_function.0 == 0
            || self.blocks_per_function.0 > self.blocks_per_function.1
        {
            return Err(TraceError::InvalidRange {
                name: "blocks_per_function",
                lo: self.blocks_per_function.0,
                hi: self.blocks_per_function.1,
            });
        }
        if self.block_len.0 == 0 || self.block_len.0 > self.block_len.1 {
            return Err(TraceError::InvalidRange {
                name: "block_len",
                lo: self.block_len.0,
                hi: self.block_len.1,
            });
        }
        for (name, p) in [
            ("loop_fraction", self.loop_fraction),
            ("call_fraction", self.call_fraction),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(TraceError::OutOfRange {
                    name,
                    value: p,
                    expected: "[0, 1]",
                });
            }
        }
        if self.mean_loop_trips < 1.0 {
            return Err(TraceError::OutOfRange {
                name: "mean_loop_trips",
                value: self.mean_loop_trips,
                expected: "[1, ∞)",
            });
        }
        if self.branch_biases.is_empty() {
            return Err(TraceError::Empty {
                name: "branch_biases",
            });
        }
        Ok(())
    }
}

/// Terminator of a static basic block.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Terminator {
    /// Return to caller (or restart the program from function 0).
    Ret,
    /// Backward conditional branch to the block's own entry.
    Loop { mean_trips: f64 },
    /// Forward conditional branch skipping the next block when taken.
    CondSkip { bias: f64 },
    /// Call into `callee`, continuing at the next block afterwards.
    Call { callee: usize },
}

#[derive(Debug, Clone, Copy)]
struct StaticInst {
    kind: UopKind,
    region: Option<RegionClass>,
}

#[derive(Debug, Clone)]
struct Block {
    entry_pc: u64,
    insts: Vec<StaticInst>,
    term: Terminator,
    term_pc: u64,
}

#[derive(Debug, Clone)]
struct Function {
    first_block: usize,
    num_blocks: usize,
}

#[derive(Debug, Clone)]
struct Program {
    blocks: Vec<Block>,
    functions: Vec<Function>,
}

/// Base address of the synthetic code segment.
pub const CODE_BASE: u64 = 0x0000_0040_0000;

impl Program {
    fn build(params: &SynthParams, rng: &mut SimRng) -> Result<Self, TraceError> {
        let mix = params.mix.as_discrete()?;
        let mem_mix = params.mem_mix.as_discrete()?;
        let bias_dist = Discrete::new(
            &params
                .branch_biases
                .iter()
                .map(|&(_, w)| w)
                .collect::<Vec<_>>(),
        )
        .map_err(|source| TraceError::Weights {
            which: "branch biases",
            source,
        })?;

        let mut blocks = Vec::new();
        let mut functions = Vec::new();
        let mut pc = CODE_BASE;
        let nfuncs = params.functions as usize;

        for f in 0..nfuncs {
            let (lo, hi) = params.blocks_per_function;
            let nblocks = (lo + rng.below(u64::from(hi - lo + 1)) as u32) as usize;
            let first_block = blocks.len();
            for b in 0..nblocks {
                let (bl, bh) = params.block_len;
                let body_len = (bl + rng.below(u64::from(bh - bl + 1)) as u32) as usize;
                let insts: Vec<StaticInst> = (0..body_len)
                    .map(|_| {
                        let kind = MixWeights::KINDS[mix.sample(rng)];
                        let region = kind.is_mem().then(|| MemMix::CLASSES[mem_mix.sample(rng)]);
                        StaticInst { kind, region }
                    })
                    .collect();
                let is_last = b == nblocks - 1;
                let term = if is_last {
                    Terminator::Ret
                } else if rng.chance(params.loop_fraction) {
                    Terminator::Loop {
                        mean_trips: params.mean_loop_trips,
                    }
                } else if f + 1 < nfuncs && rng.chance(params.call_fraction) {
                    // Calls only go "forward" in function index: the static
                    // call graph is a DAG, bounding runtime stack depth.
                    let callee = f + 1 + rng.below((nfuncs - f - 1) as u64) as usize;
                    Terminator::Call { callee }
                } else {
                    Terminator::CondSkip {
                        bias: params.branch_biases[bias_dist.sample(rng)].0,
                    }
                };
                let entry_pc = pc;
                let term_pc = entry_pc + 4 * body_len as u64;
                pc = term_pc + 4;
                blocks.push(Block {
                    entry_pc,
                    insts,
                    term,
                    term_pc,
                });
            }
            functions.push(Function {
                first_block,
                num_blocks: nblocks,
            });
        }
        Ok(Self { blocks, functions })
    }

    fn code_bytes(&self) -> u64 {
        let last = self.blocks.last().expect("programs have blocks");
        last.term_pc + 4 - CODE_BASE
    }
}

/// Seeded generator: builds a static program once, then emits traces.
///
/// ```
/// use lowvcc_trace::{families::WorkloadFamily, synth::Generator};
///
/// let params = WorkloadFamily::SpecInt.params();
/// let mut generator = Generator::new(&params, 42)?;
/// let trace = generator.generate("demo", 10_000);
/// assert_eq!(trace.len(), 10_000);
/// trace.validate().expect("generated traces are well-formed");
/// # Ok::<(), lowvcc_trace::TraceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Generator {
    params: SynthParams,
    program: Program,
    rng: SimRng,
    dep: Geometric,
    // Walk state.
    func: usize,
    block: usize,
    loop_trips_left: Option<u64>,
    call_stack: Vec<(usize, usize)>,
    // Register allocation state.
    recent_dests: std::collections::VecDeque<Reg>,
    next_dst: u8,
    // Region models.
    stack_model: AddressModel,
    stream_model: AddressModel,
    chase_model: AddressModel,
    zipf_model: AddressModel,
}

/// First register used for rotating destination allocation; registers
/// below this index act as stable bases (stack pointer, globals).
const FIRST_ROTATING_REG: u8 = 16;

impl Generator {
    /// Builds the static program for `params` from `seed`.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] describing the first invalid parameter.
    pub fn new(params: &SynthParams, seed: u64) -> Result<Self, TraceError> {
        params.validate()?;
        let mut rng = SimRng::seed_from(seed);
        let program = Program::build(params, &mut rng)?;
        let dep = Geometric::new(params.dep_p).map_err(|_| TraceError::OutOfRange {
            name: "dep_p",
            value: params.dep_p,
            expected: "(0, 1]",
        })?;
        Ok(Self {
            stack_model: AddressModel::stack_frame(params.stack_slots),
            stream_model: AddressModel::strided(
                HEAP_BASE,
                params.stream_stride,
                params.stream_length,
            ),
            chase_model: AddressModel::pointer_chase(
                HEAP_BASE + 0x1000_0000,
                params.chase_working_set,
            ),
            zipf_model: AddressModel::zipf_objects(
                HEAP_BASE + 0x2000_0000,
                params.zipf_objects,
                params.zipf_object_size,
                params.zipf_s,
            ),
            params: params.clone(),
            program,
            rng,
            dep,
            func: 0,
            block: 0,
            loop_trips_left: None,
            call_stack: Vec::new(),
            recent_dests: std::collections::VecDeque::with_capacity(64),
            next_dst: FIRST_ROTATING_REG,
        })
    }

    /// Static code footprint in bytes (drives IL0 behaviour).
    #[must_use]
    pub fn code_footprint_bytes(&self) -> u64 {
        self.program.code_bytes()
    }

    fn alloc_dst(&mut self) -> Reg {
        let r = Reg::new(self.next_dst).expect("rotating register in range");
        self.next_dst += 1;
        if self.next_dst >= crate::uop::NUM_REGS {
            self.next_dst = FIRST_ROTATING_REG;
        }
        if self.recent_dests.len() == 64 {
            self.recent_dests.pop_back();
        }
        self.recent_dests.push_front(r);
        r
    }

    fn pick_src(&mut self) -> Reg {
        let d = self.dep.sample(&mut self.rng) as usize;
        if d <= self.recent_dests.len() {
            self.recent_dests[d - 1]
        } else {
            // Fall back to a stable base register.
            Reg::new(self.rng.below(u64::from(FIRST_ROTATING_REG)) as u8)
                .expect("stable register in range")
        }
    }

    fn base_reg(region: RegionClass) -> Reg {
        let idx = match region {
            RegionClass::Stack => 1,
            RegionClass::Stream => 2,
            RegionClass::Chase => 3,
            RegionClass::Zipf => 4,
        };
        Reg::new(idx).expect("base register in range")
    }

    fn region_addr(&mut self, region: RegionClass) -> u64 {
        // Split borrows: take the model out of self to walk alongside rng.
        let model = match region {
            RegionClass::Stack => &mut self.stack_model,
            RegionClass::Stream => &mut self.stream_model,
            RegionClass::Chase => &mut self.chase_model,
            RegionClass::Zipf => &mut self.zipf_model,
        };
        model.next_addr(&mut self.rng)
    }

    fn emit_body(&mut self, out: &mut Vec<Uop>, inst: StaticInst, pc: u64) {
        match inst.kind {
            UopKind::Load => {
                let region = inst.region.expect("memory inst has region");
                let addr = self.region_addr(region);
                let size = if self.rng.chance(0.7) { 8 } else { 4 };
                let dst = self.alloc_dst();
                out.push(Uop::load(pc, dst, Some(Self::base_reg(region)), addr, size));
            }
            UopKind::Store => {
                let region = inst.region.expect("memory inst has region");
                let addr = self.region_addr(region);
                let size = if self.rng.chance(0.7) { 8 } else { 4 };
                let data = self.pick_src();
                out.push(Uop::store(
                    pc,
                    Some(data),
                    Some(Self::base_reg(region)),
                    addr,
                    size,
                ));
            }
            UopKind::Nop => out.push(Uop::nop(pc)),
            kind => {
                let src1 = Some(self.pick_src());
                let src2 = self
                    .rng
                    .chance(self.params.two_source_fraction)
                    .then(|| self.pick_src());
                let dst = self.alloc_dst();
                let mut u = Uop::alu(pc, Some(dst), src1, src2);
                u.kind = kind;
                out.push(u);
            }
        }
    }

    /// Emits `len` dynamic uops by walking the program.
    #[must_use]
    pub fn generate(&mut self, name: impl Into<String>, len: usize) -> Trace {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            self.step_block(&mut out);
        }
        out.truncate(len);
        Trace::new(name, out)
    }

    /// Executes one basic block (body + terminator), appending uops.
    fn step_block(&mut self, out: &mut Vec<Uop>) {
        let fun = self.program.functions[self.func].clone();
        let block_idx = fun.first_block + self.block;
        let (insts, term, term_pc, entry_pc) = {
            let b = &self.program.blocks[block_idx];
            (b.insts.clone(), b.term, b.term_pc, b.entry_pc)
        };
        for (i, inst) in insts.iter().enumerate() {
            self.emit_body(out, *inst, entry_pc + 4 * i as u64);
        }

        let last_local = fun.num_blocks - 1;
        match term {
            Terminator::Loop { mean_trips } => {
                if self.loop_trips_left.is_none() {
                    let g = Geometric::new(1.0 / mean_trips.max(1.0))
                        .expect("mean_trips ≥ 1 gives valid p");
                    self.loop_trips_left = Some(g.sample(&mut self.rng));
                }
                let left = self.loop_trips_left.expect("just initialized");
                let cond = Some(self.pick_src());
                if left > 1 {
                    self.loop_trips_left = Some(left - 1);
                    out.push(Uop::branch(term_pc, cond, true, entry_pc));
                    // stay on the same block
                } else {
                    self.loop_trips_left = None;
                    out.push(Uop::branch(term_pc, cond, false, term_pc + 4));
                    self.block = (self.block + 1).min(last_local);
                }
            }
            Terminator::CondSkip { bias } => {
                let taken = self.rng.chance(bias);
                let cond = Some(self.pick_src());
                let target_local = (self.block + 2).min(last_local);
                let target_pc = self.program.blocks[fun.first_block + target_local].entry_pc;
                if taken {
                    out.push(Uop::branch(term_pc, cond, true, target_pc));
                    self.block = target_local;
                } else {
                    out.push(Uop::branch(term_pc, cond, false, term_pc + 4));
                    self.block = (self.block + 1).min(last_local);
                }
            }
            Terminator::Call { callee } => {
                let callee_pc =
                    self.program.blocks[self.program.functions[callee].first_block].entry_pc;
                let mut u = Uop::alu(term_pc, None, None, None);
                u.kind = UopKind::Call;
                u.taken = true;
                u.target = callee_pc;
                out.push(u);
                let ret_block = (self.block + 1).min(last_local);
                self.call_stack.push((self.func, ret_block));
                self.stack_model.push_frame();
                self.func = callee;
                self.block = 0;
            }
            Terminator::Ret => {
                if let Some((func, block)) = self.call_stack.pop() {
                    let ret_pc = self.program.blocks
                        [self.program.functions[func].first_block + block]
                        .entry_pc;
                    let mut u = Uop::alu(term_pc, None, None, None);
                    u.kind = UopKind::Ret;
                    u.taken = true;
                    u.target = ret_pc;
                    out.push(u);
                    self.stack_model.pop_frame();
                    self.func = func;
                    self.block = block;
                } else {
                    // Program outer loop: the driver dispatches to a random
                    // phase (function), like an event loop. This is what
                    // spreads dynamic coverage over the whole static
                    // footprint.
                    let next = self.rng.below(self.program.functions.len() as u64) as usize;
                    let entry =
                        self.program.blocks[self.program.functions[next].first_block].entry_pc;
                    out.push(Uop::branch(term_pc, None, true, entry));
                    self.func = next;
                    self.block = 0;
                }
            }
        }
    }
}

/// One-shot convenience: build a generator and emit a trace.
///
/// # Errors
///
/// Propagates parameter-validation errors from [`Generator::new`].
pub fn generate_trace(
    params: &SynthParams,
    seed: u64,
    len: usize,
    name: impl Into<String>,
) -> Result<Trace, TraceError> {
    let mut generator = Generator::new(params, seed)?;
    Ok(generator.generate(name, len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::WorkloadFamily;

    fn params() -> SynthParams {
        WorkloadFamily::SpecInt.params()
    }

    #[test]
    fn generates_requested_length() {
        let t = generate_trace(&params(), 1, 5_000, "t").unwrap();
        assert_eq!(t.len(), 5_000);
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let a = generate_trace(&params(), 7, 2_000, "a").unwrap();
        let b = generate_trace(&params(), 7, 2_000, "b").unwrap();
        assert_eq!(a.uops, b.uops);
        let c = generate_trace(&params(), 8, 2_000, "c").unwrap();
        assert_ne!(a.uops, c.uops);
    }

    #[test]
    fn all_uops_validate() {
        for family in WorkloadFamily::all() {
            let t = generate_trace(&family.params(), 3, 3_000, "v").unwrap();
            t.validate().unwrap_or_else(|e| panic!("{family:?}: {e}"));
        }
    }

    #[test]
    fn control_flow_targets_are_real_pcs() {
        let p = params();
        let mut generator = Generator::new(&p, 11).unwrap();
        let code_end = CODE_BASE + generator.code_footprint_bytes();
        let t = generator.generate("cf", 5_000);
        for u in &t.uops {
            assert!(u.pc >= CODE_BASE && u.pc < code_end, "pc {:#x}", u.pc);
            if u.kind.is_control() && u.taken {
                assert!(
                    u.target >= CODE_BASE && u.target < code_end,
                    "target {:#x}",
                    u.target
                );
            }
        }
    }

    #[test]
    fn calls_and_returns_balance() {
        let t = generate_trace(&params(), 5, 50_000, "cr").unwrap();
        let calls = t.uops.iter().filter(|u| u.kind == UopKind::Call).count();
        let rets = t.uops.iter().filter(|u| u.kind == UopKind::Ret).count();
        assert!(calls > 0, "workload should contain calls");
        let diff = calls.abs_diff(rets);
        // Truncation can strand a few open frames; they must roughly match.
        assert!(diff <= 20, "calls {calls} vs rets {rets}");
    }

    #[test]
    fn branches_repeat_static_pcs() {
        // The predictor needs recurring static branches.
        let t = generate_trace(&params(), 13, 20_000, "bp").unwrap();
        let mut counts = std::collections::HashMap::new();
        for u in t.uops.iter().filter(|u| u.kind == UopKind::Branch) {
            *counts.entry(u.pc).or_insert(0usize) += 1;
        }
        assert!(!counts.is_empty());
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(max > 20, "hottest branch executed {max} times");
    }

    #[test]
    fn dependency_distances_are_short() {
        // Sample the distance from each source to its producing uop; the
        // geometric dep model must concentrate on short distances, since
        // short distances are what create IRAW conflicts.
        let t = generate_trace(&params(), 17, 30_000, "dep").unwrap();
        let mut last_writer: std::collections::HashMap<Reg, usize> =
            std::collections::HashMap::new();
        let mut short = 0usize;
        let mut total = 0usize;
        for (i, u) in t.uops.iter().enumerate() {
            for s in u.sources() {
                if let Some(&w) = last_writer.get(&s) {
                    total += 1;
                    if i - w <= 4 {
                        short += 1;
                    }
                }
            }
            if let Some(d) = u.dst {
                last_writer.insert(d, i);
            }
        }
        assert!(total > 10_000);
        let frac = short as f64 / total as f64;
        assert!(
            frac > 0.35,
            "short-distance dependency fraction {frac:.2} too low"
        );
    }

    #[test]
    fn rejects_invalid_params() {
        let mut p = params();
        p.dep_p = 0.0;
        assert!(Generator::new(&p, 0).is_err());
        let mut p2 = params();
        p2.functions = 0;
        assert!(Generator::new(&p2, 0).is_err());
        let mut p3 = params();
        p3.block_len = (5, 2);
        assert!(Generator::new(&p3, 0).is_err());
        let mut p4 = params();
        p4.branch_biases.clear();
        assert!(Generator::new(&p4, 0).is_err());
    }

    #[test]
    fn code_footprint_tracks_parameters() {
        let small = Generator::new(&WorkloadFamily::Kernel.params(), 1).unwrap();
        let large = Generator::new(&WorkloadFamily::Server.params(), 1).unwrap();
        assert!(small.code_footprint_bytes() < large.code_footprint_bytes());
    }
}
