//! Typed errors for trace validation and synthesis.
//!
//! The crate exposes three error layers: [`DistError`](crate::dist::DistError)
//! for raw distribution parameters, [`UopError`] for a single malformed
//! micro-op, and [`TraceError`] — the crate's boundary type — for anything
//! that can go wrong validating [`SynthParams`](crate::synth::SynthParams)
//! or building/validating a [`Trace`](crate::uop::Trace).

use std::fmt;

use crate::dist::DistError;
use crate::uop::UopKind;

/// A single micro-op failed its kind/payload consistency check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UopError {
    /// A memory uop carries no effective address.
    MissingAddress {
        /// Offending uop kind.
        kind: UopKind,
        /// Program counter of the uop.
        pc: u64,
    },
    /// A non-memory uop carries an address.
    UnexpectedAddress {
        /// Offending uop kind.
        kind: UopKind,
        /// Program counter of the uop.
        pc: u64,
    },
    /// A taken control uop has no target.
    MissingTarget {
        /// Offending uop kind.
        kind: UopKind,
        /// Program counter of the uop.
        pc: u64,
    },
    /// A load has no destination register.
    MissingDestination {
        /// Program counter of the uop.
        pc: u64,
    },
}

impl fmt::Display for UopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::MissingAddress { kind, pc } => {
                write!(f, "{kind} at {pc:#x} lacks an address")
            }
            Self::UnexpectedAddress { kind, pc } => {
                write!(f, "{kind} at {pc:#x} carries an address")
            }
            Self::MissingTarget { kind, pc } => {
                write!(f, "{kind} at {pc:#x} lacks a target")
            }
            Self::MissingDestination { pc } => {
                write!(f, "load at {pc:#x} lacks a destination")
            }
        }
    }
}

impl std::error::Error for UopError {}

/// Error validating synthesis parameters or building/validating a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// A weight set could not form a sampling distribution.
    Weights {
        /// Which weight set (e.g. `"instruction mix"`).
        which: &'static str,
        /// The underlying distribution error.
        source: DistError,
    },
    /// A scalar parameter fell outside its valid interval.
    OutOfRange {
        /// Parameter name.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable description of the valid interval.
        expected: &'static str,
    },
    /// An inclusive `(lo, hi)` range parameter is empty or zero-based.
    InvalidRange {
        /// Parameter name.
        name: &'static str,
        /// Range lower bound.
        lo: u32,
        /// Range upper bound.
        hi: u32,
    },
    /// A parameter that must be non-empty is empty.
    Empty {
        /// Parameter name.
        name: &'static str,
    },
    /// A uop of the trace failed validation.
    Uop {
        /// Index of the offending uop in the dynamic stream.
        index: usize,
        /// The underlying uop error.
        source: UopError,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Weights { which, source } => write!(f, "{which}: {source}"),
            Self::OutOfRange {
                name,
                value,
                expected,
            } => write!(f, "{name} {value} outside {expected}"),
            Self::InvalidRange { name, lo, hi } => {
                write!(f, "invalid {name} range ({lo}, {hi})")
            }
            Self::Empty { name } => write!(f, "{name} must be non-empty"),
            Self::Uop { index, source } => write!(f, "uop {index}: {source}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Weights { source, .. } => Some(source),
            Self::Uop { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn displays_carry_context() {
        let e = TraceError::Weights {
            which: "instruction mix",
            source: DistError::BadWeights,
        };
        assert!(e.to_string().starts_with("instruction mix:"));
        assert!(e.source().is_some());

        let e = TraceError::Uop {
            index: 3,
            source: UopError::MissingDestination { pc: 0x40 },
        };
        assert_eq!(e.to_string(), "uop 3: load at 0x40 lacks a destination");

        let e = TraceError::OutOfRange {
            name: "dep_p",
            value: 0.0,
            expected: "(0, 1]",
        };
        assert_eq!(e.to_string(), "dep_p 0 outside (0, 1]");
    }
}
