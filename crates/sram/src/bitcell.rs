//! 8-T SRAM bitcell delay model (the paper's Figure 2 cell).
//!
//! The Silverthorne SRAM blocks use an 8-T bitcell with a double-bitline
//! write port and a single-bitline read port. Three delays matter:
//!
//! * **Read delay** — the 8-T read stack can be sized generously without
//!   hurting writes, so read delay stays *below* the 12-FO4 phase at every
//!   voltage. Modelled as a constant fraction `ρ` of the phase.
//! * **Full write delay** — time for the worst (6σ) cell's internal nodes to
//!   complete 80% of their swing with bitline assistance. This is the delay
//!   that grows exponentially at low Vcc. Modelled as
//!   `c(V)·phase(V)` with `c(V) = c₀·exp(a·x + b·x·|x|)`,
//!   `x = (600 mV − V)/25 mV`, calibrated to the paper's anchors (see
//!   crate docs).
//! * **Interrupted write (IRAW)** — the wordline is deactivated after a
//!   short pulse `β·write`; past that point the cell has flipped far enough
//!   to regenerate on its own, which takes `γ·(1−β)·write` extra
//!   (stabilization). `γ > 1` because the bitlines no longer help.
//!
//! For the Faulty Bits baseline, which margins at fewer than 6σ, the model
//! also exposes write delay at an arbitrary σ-offset using an EKV-style
//! smooth super/sub-threshold drain-current kernel, rescaled so that the 6σ
//! delay equals the calibrated curve.

use crate::fo4::{AlphaPowerModel, Picoseconds};
use crate::voltage::Millivolts;

/// Delay model of the 8-T bitcell used by every Silverthorne SRAM block.
///
/// ```
/// use lowvcc_sram::{Bitcell8T, Millivolts};
///
/// let cell = Bitcell8T::silverthorne_45nm();
/// let v = Millivolts::new(500)?;
/// // Writes dominate reads at low Vcc (paper Figure 1).
/// assert!(cell.write_delay(v) > cell.read_delay(v));
/// // Interrupting a write early leaves residual stabilization time.
/// assert!(cell.interrupted_pulse(v) < cell.write_delay(v));
/// # Ok::<(), lowvcc_sram::VoltageError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bitcell8T {
    logic: AlphaPowerModel,
    c0: f64,
    a: f64,
    b: f64,
    read_rho: f64,
    beta: f64,
    gamma: f64,
    ekv: EkvSigmaModel,
}

impl Bitcell8T {
    /// Bitcell write fraction of a 12-FO4 phase at 600 mV (`1 − κ`, so that
    /// write+wordline exactly meets the phase at 600 mV).
    pub const C0: f64 = 0.415;

    /// Linear coefficient of the calibrated write-delay exponent
    /// (fits the paper's "77% of logic frequency at 550 mV").
    pub const A_WRITE: f64 = 0.227_19;

    /// Quadratic (signed) coefficient of the calibrated write-delay exponent
    /// (fits the paper's "24% of logic frequency at 450 mV").
    pub const B_WRITE: f64 = 0.021_99;

    /// Read-bitline delay as a fraction of a 12-FO4 phase.
    pub const READ_RHO: f64 = 0.33;

    /// Fraction of the full write delay after which the wordline can be
    /// deactivated with the cell still guaranteed to flip (IRAW pulse).
    /// Fits the paper's +57% @ 500 mV and +99% @ 400 mV frequency gains.
    pub const BETA_PULSE: f64 = 0.48;

    /// Penalty factor for completing the flip without bitline assistance.
    pub const GAMMA_STABILIZE: f64 = 1.8;

    /// The calibrated 45 nm cell used throughout the reproduction.
    #[must_use]
    pub fn silverthorne_45nm() -> Self {
        Self {
            logic: AlphaPowerModel::silverthorne_45nm(),
            c0: Self::C0,
            a: Self::A_WRITE,
            b: Self::B_WRITE,
            read_rho: Self::READ_RHO,
            beta: Self::BETA_PULSE,
            gamma: Self::GAMMA_STABILIZE,
            ekv: EkvSigmaModel::silverthorne_45nm(),
        }
    }

    /// Returns the logic model that provides the phase time-base.
    #[must_use]
    pub fn logic(&self) -> &AlphaPowerModel {
        &self.logic
    }

    /// Wordline pulse fraction `β` (see [`Self::BETA_PULSE`]).
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Unassisted-flip penalty `γ` (see [`Self::GAMMA_STABILIZE`]).
    #[must_use]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Full bitcell write delay as a fraction of the 12-FO4 phase.
    ///
    /// This is the calibrated 6σ curve; it equals [`Self::C0`] at 600 mV and
    /// grows exponentially below.
    #[must_use]
    pub fn write_fraction(&self, v: Millivolts) -> f64 {
        let x = v.steps_below_600();
        self.c0 * (self.a * x + self.b * x * x.abs()).exp()
    }

    /// Full (80%-swing, bitline-assisted) write delay of the worst 6σ cell.
    #[must_use]
    pub fn write_delay(&self, v: Millivolts) -> Picoseconds {
        self.logic.phase_delay(v) * self.write_fraction(v)
    }

    /// Read-bitline delay (single-ended 8-T read port).
    #[must_use]
    pub fn read_delay(&self, v: Millivolts) -> Picoseconds {
        self.logic.phase_delay(v) * self.read_rho
    }

    /// Minimum wordline pulse for an interrupted (IRAW) write.
    ///
    /// After this pulse the cell's internal nodes have crossed the
    /// regeneration point and the write may be interrupted safely.
    #[must_use]
    pub fn interrupted_pulse(&self, v: Millivolts) -> Picoseconds {
        self.write_delay(v) * self.beta
    }

    /// Residual time for an interrupted cell to stabilize (become readable)
    /// after its wordline has been deactivated.
    #[must_use]
    pub fn residual_stabilization(&self, v: Millivolts) -> Picoseconds {
        self.write_delay(v) * ((1.0 - self.beta) * self.gamma)
    }

    /// Total update delay of an interrupted write (pulse + stabilization).
    ///
    /// The paper notes this *exceeds* the uninterrupted write delay — the
    /// cell must finish flipping without bitline help — which is why
    /// stabilization spills into extra cycles rather than extending the
    /// clock.
    #[must_use]
    pub fn interrupted_total(&self, v: Millivolts) -> Picoseconds {
        self.interrupted_pulse(v) + self.residual_stabilization(v)
    }

    /// Write delay of a cell whose threshold voltage sits `sigma` standard
    /// deviations above nominal.
    ///
    /// The calibrated curve [`Self::write_delay`] corresponds to
    /// `sigma = 6.0` (the paper's margin: one failing critical path per
    /// billion). Lower σ cells are faster; the Faulty Bits baseline exploits
    /// this by margining at e.g. 4σ and disabling the cells beyond.
    #[must_use]
    pub fn write_delay_at_sigma(&self, v: Millivolts, sigma: f64) -> Picoseconds {
        let scale = self.ekv.delay(v, sigma) / self.ekv.delay(v, 6.0);
        self.write_delay(v) * scale
    }
}

impl Default for Bitcell8T {
    fn default() -> Self {
        Self::silverthorne_45nm()
    }
}

/// EKV-style smooth drain-current kernel used for σ-sensitivity.
///
/// `I(V, Vth) ∝ ln²(1 + exp((V − Vth) / (2·n·φt)))` interpolates smoothly
/// between strong inversion (`I ∝ (V−Vth)²`) and sub-threshold
/// (`I ∝ exp((V−Vth)/nφt)`), which is what makes low-Vcc write delay blow up
/// for high-Vth (slow-corner) cells.
#[derive(Debug, Clone, Copy, PartialEq)]
struct EkvSigmaModel {
    vth_nominal_mv: f64,
    sigma_mv: f64,
    two_n_phi_t_mv: f64,
}

impl EkvSigmaModel {
    fn silverthorne_45nm() -> Self {
        Self {
            vth_nominal_mv: 350.0,
            sigma_mv: 20.0,
            two_n_phi_t_mv: 72.8, // 2 · n(1.4) · φt(26 mV)
        }
    }

    /// Relative cell-update delay `V / I(V, Vth(σ))`; only ratios of this
    /// quantity are meaningful.
    fn delay(&self, v: Millivolts, sigma: f64) -> f64 {
        let v_mv = f64::from(v.millivolts());
        let vth = self.vth_nominal_mv + sigma * self.sigma_mv;
        let u = (v_mv - vth) / self.two_n_phi_t_mv;
        // Numerically stable softplus.
        let softplus = if u > 30.0 { u } else { u.exp().ln_1p() };
        let current = softplus * softplus;
        v_mv / current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::voltage::mv;

    fn cell() -> Bitcell8T {
        Bitcell8T::silverthorne_45nm()
    }

    #[test]
    fn write_fraction_anchored_at_600mv() {
        assert!((cell().write_fraction(mv(600)) - Bitcell8T::C0).abs() < 1e-12);
    }

    #[test]
    fn write_fraction_paper_anchors() {
        // Derived in DESIGN.md from the paper's 77% @ 550 mV and 24% @
        // 450 mV write-limited frequencies (with κ = 0.585 wordline share):
        // c(550) = 1/0.77 − 0.585, c(450) = 1/0.24 − 0.585.
        let c = cell();
        assert!((c.write_fraction(mv(550)) - (1.0 / 0.77 - 0.585)).abs() < 5e-3);
        assert!((c.write_fraction(mv(450)) - (1.0 / 0.24 - 0.585)).abs() < 3e-2);
        // Bitcell-only write crosses the 12-FO4 phase at ~525 mV (Figure 1).
        assert!((c.write_fraction(mv(525)) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn write_delay_grows_superlinearly_at_low_vcc() {
        let c = cell();
        // Fraction-of-phase doubles roughly every 2 steps at the bottom end.
        let f500 = c.write_fraction(mv(500));
        let f450 = c.write_fraction(mv(450));
        let f400 = c.write_fraction(mv(400));
        assert!(f450 / f500 > 2.0, "write fraction must grow steeply");
        assert!(f400 / f450 > 2.0);
        // But stays *below* a phase at high Vcc (write is not critical there).
        assert!(c.write_fraction(mv(700)) < 0.2);
    }

    #[test]
    fn write_delay_monotone_in_voltage() {
        let c = cell();
        let mut last = f64::INFINITY;
        for v in (400..=700).step_by(25) {
            let d = c.write_delay(mv(v)).picos();
            assert!(d < last);
            last = d;
        }
    }

    #[test]
    fn read_stays_below_phase_everywhere() {
        let c = cell();
        for v in (400..=700).step_by(25) {
            let read = c.read_delay(mv(v));
            let phase = c.logic().phase_delay(mv(v));
            assert!(
                read.picos() < phase.picos(),
                "read must not limit the cycle"
            );
        }
    }

    #[test]
    fn interrupted_write_decomposition() {
        let c = cell();
        let v = mv(475);
        let pulse = c.interrupted_pulse(v);
        let resid = c.residual_stabilization(v);
        let full = c.write_delay(v);
        // Pulse is the β fraction.
        assert!((pulse.picos() - full.picos() * Bitcell8T::BETA_PULSE).abs() < 1e-9);
        // Total interrupted update exceeds the uninterrupted write (paper
        // Figure 4: "total bitcell update delay may increase").
        assert!(c.interrupted_total(v).picos() > full.picos());
        assert!((c.interrupted_total(v).picos() - (pulse + resid).picos()).abs() < 1e-9);
    }

    #[test]
    fn sigma_six_matches_calibrated_curve() {
        let c = cell();
        for v in [400, 500, 600, 700] {
            let a = c.write_delay_at_sigma(mv(v), 6.0).picos();
            let b = c.write_delay(mv(v)).picos();
            assert!((a - b).abs() / b < 1e-12);
        }
    }

    #[test]
    fn lower_sigma_cells_write_faster() {
        let c = cell();
        for v in [400, 450, 500, 550, 600] {
            let d6 = c.write_delay_at_sigma(mv(v), 6.0).picos();
            let d4 = c.write_delay_at_sigma(mv(v), 4.0).picos();
            let d0 = c.write_delay_at_sigma(mv(v), 0.0).picos();
            assert!(d4 < d6, "4σ cell must beat 6σ cell at {v} mV");
            assert!(d0 < d4);
        }
    }

    #[test]
    fn sigma_sensitivity_grows_at_low_vcc() {
        // The 6σ/4σ delay ratio must widen as Vcc drops — this is what makes
        // Faulty Bits progressively more attractive (and faulty) at low Vcc.
        let c = cell();
        let ratio = |v| {
            c.write_delay_at_sigma(mv(v), 6.0).picos() / c.write_delay_at_sigma(mv(v), 4.0).picos()
        };
        assert!(ratio(400) > ratio(600));
        assert!(ratio(600) > 1.0);
    }
}
