//! Descriptors for every SRAM block of the Silverthorne in-order core.
//!
//! Section 3.1 of the paper classifies the core's SRAM structures
//! (its Figure 3) into five categories, each with its own IRAW-avoidance
//! strategy. [`ArrayKind`] encodes that classification and
//! [`silverthorne_blocks`] provides the full inventory with realistic
//! sizes; the overhead model (in `lowvcc-energy`) uses the bit counts to
//! reproduce the paper's "<0.1% extra area" result.

use crate::wordline::ArrayGeometry;

/// The paper's five-way classification of in-order-core SRAM blocks,
/// which determines the IRAW avoidance mechanism each block uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayKind {
    /// Register file — scoreboard-based issue delay (paper §4.1).
    RegisterFile,
    /// Instruction queue — occupancy-threshold issue gate (paper §4.2).
    InstructionQueue,
    /// Infrequently written cache-like block (IL0, UL1, ITLB, DTLB,
    /// WCB/EB, FB) — stall accesses after each fill (paper §4.3).
    InfrequentlyWrittenCache,
    /// Frequently written cache-like block (DL0) — Store Table (paper §4.4).
    FrequentlyWrittenCache,
    /// Prediction-only block (BP, RSB) — IRAW ignored (paper §4.5).
    PredictionOnly,
}

impl ArrayKind {
    /// Whether IRAW violations in this block can corrupt architectural
    /// state (prediction-only blocks can only mispredict).
    #[must_use]
    pub fn affects_correctness(self) -> bool {
        !matches!(self, Self::PredictionOnly)
    }
}

/// Read/write port counts of an SRAM block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SramPorts {
    /// Number of read ports.
    pub read: u32,
    /// Number of write ports.
    pub write: u32,
}

/// A named SRAM block of the core, with geometry and classification.
///
/// ```
/// use lowvcc_sram::array::{silverthorne_blocks, ArrayKind};
///
/// let blocks = silverthorne_blocks();
/// assert_eq!(blocks.len(), 11); // Figure 3 of the paper
/// let dl0 = blocks.iter().find(|b| b.name() == "DL0").unwrap();
/// assert_eq!(dl0.kind(), ArrayKind::FrequentlyWrittenCache);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SramArray {
    name: &'static str,
    kind: ArrayKind,
    geometry: ArrayGeometry,
    ports: SramPorts,
}

impl SramArray {
    /// Creates an array descriptor.
    #[must_use]
    pub fn new(
        name: &'static str,
        kind: ArrayKind,
        geometry: ArrayGeometry,
        ports: SramPorts,
    ) -> Self {
        Self {
            name,
            kind,
            geometry,
            ports,
        }
    }

    /// Block name as it appears in the paper's Figure 3.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// IRAW classification (paper §3.1).
    #[must_use]
    pub fn kind(&self) -> ArrayKind {
        self.kind
    }

    /// Physical geometry.
    #[must_use]
    pub fn geometry(&self) -> ArrayGeometry {
        self.geometry
    }

    /// Port configuration.
    #[must_use]
    pub fn ports(&self) -> SramPorts {
        self.ports
    }

    /// Total storage bits (data + tags folded into the entry width).
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.geometry.total_bits()
    }
}

/// The full SRAM inventory of the Silverthorne core (paper Figure 3).
///
/// Sizes follow the published Silverthorne organization: 32 KB IL0,
/// 24 KB 6-way DL0, 512 KB 8-way UL1, 64 B lines (entry width = 512 data
/// bits + ~26 tag/state bits), 16-entry TLBs, a 32-entry instruction
/// queue, 4K-entry bimodal predictor, 8-entry return stack, and 8-entry
/// fill and write-combining/eviction buffers.
#[must_use]
pub fn silverthorne_blocks() -> Vec<SramArray> {
    use ArrayKind::{
        FrequentlyWrittenCache, InfrequentlyWrittenCache, InstructionQueue, PredictionOnly,
        RegisterFile,
    };
    let line_bits = 512 + 26; // 64-byte line + tag/state
    vec![
        SramArray::new(
            "IL0",
            InfrequentlyWrittenCache,
            ArrayGeometry::new(512, line_bits, 8),
            SramPorts { read: 1, write: 1 },
        ),
        SramArray::new(
            "DL0",
            FrequentlyWrittenCache,
            ArrayGeometry::new(384, line_bits, 8),
            SramPorts { read: 1, write: 1 },
        ),
        SramArray::new(
            "UL1",
            InfrequentlyWrittenCache,
            ArrayGeometry::new(8192, line_bits, 8),
            SramPorts { read: 1, write: 1 },
        ),
        SramArray::new(
            "ITLB",
            InfrequentlyWrittenCache,
            ArrayGeometry::new(16, 64, 8),
            SramPorts { read: 1, write: 1 },
        ),
        SramArray::new(
            "DTLB",
            InfrequentlyWrittenCache,
            ArrayGeometry::new(16, 64, 8),
            SramPorts { read: 1, write: 1 },
        ),
        SramArray::new(
            "WCB/EB",
            InfrequentlyWrittenCache,
            ArrayGeometry::new(8, line_bits, 8),
            SramPorts { read: 1, write: 1 },
        ),
        SramArray::new(
            "FB",
            InfrequentlyWrittenCache,
            ArrayGeometry::new(8, line_bits, 8),
            SramPorts { read: 1, write: 1 },
        ),
        SramArray::new(
            "IQ",
            InstructionQueue,
            ArrayGeometry::new(32, 80, 8),
            SramPorts { read: 2, write: 2 },
        ),
        SramArray::new(
            "RF",
            RegisterFile,
            ArrayGeometry::new(64, 64, 8),
            SramPorts { read: 4, write: 2 },
        ),
        SramArray::new(
            "BP",
            PredictionOnly,
            ArrayGeometry::new(4096, 2, 2),
            SramPorts { read: 1, write: 1 },
        ),
        SramArray::new(
            "RSB",
            PredictionOnly,
            ArrayGeometry::new(8, 32, 8),
            SramPorts { read: 1, write: 1 },
        ),
    ]
}

/// Total SRAM bits across the whole core (denominator of the paper's
/// area-overhead percentages).
#[must_use]
pub fn total_core_sram_bits() -> u64 {
    silverthorne_blocks()
        .iter()
        .map(SramArray::total_bits)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_covers_figure3() {
        let names: Vec<_> = silverthorne_blocks().iter().map(|b| b.name()).collect();
        for expected in [
            "IL0", "DL0", "UL1", "ITLB", "DTLB", "WCB/EB", "FB", "IQ", "RF", "BP", "RSB",
        ] {
            assert!(names.contains(&expected), "missing block {expected}");
        }
    }

    #[test]
    fn classification_matches_paper_section_3_1() {
        let blocks = silverthorne_blocks();
        let kind_of = |name: &str| {
            blocks
                .iter()
                .find(|b| b.name() == name)
                .unwrap_or_else(|| panic!("block {name}"))
                .kind()
        };
        assert_eq!(kind_of("RF"), ArrayKind::RegisterFile);
        assert_eq!(kind_of("IQ"), ArrayKind::InstructionQueue);
        assert_eq!(kind_of("DL0"), ArrayKind::FrequentlyWrittenCache);
        for name in ["IL0", "UL1", "ITLB", "DTLB", "WCB/EB", "FB"] {
            assert_eq!(kind_of(name), ArrayKind::InfrequentlyWrittenCache);
        }
        for name in ["BP", "RSB"] {
            assert_eq!(kind_of(name), ArrayKind::PredictionOnly);
            assert!(!kind_of(name).affects_correctness());
        }
        assert!(kind_of("RF").affects_correctness());
    }

    #[test]
    fn cache_capacities_match_silverthorne() {
        let blocks = silverthorne_blocks();
        let data_bits = |name: &str| {
            let b = blocks.iter().find(|b| b.name() == name).unwrap();
            u64::from(b.geometry().entries()) * 512 // data payload only
        };
        assert_eq!(data_bits("IL0"), 32 * 1024 * 8);
        assert_eq!(data_bits("DL0"), 24 * 1024 * 8);
        assert_eq!(data_bits("UL1"), 512 * 1024 * 8);
    }

    #[test]
    fn caches_dominate_total_bits() {
        // The UL1 alone is >80% of core SRAM; this ratio is what makes the
        // IRAW hardware overhead (a few hundred latch bits) ≈0.03%.
        let total = total_core_sram_bits();
        let ul1 = silverthorne_blocks()
            .iter()
            .find(|b| b.name() == "UL1")
            .unwrap()
            .total_bits();
        assert!(total > 4_000_000, "total core SRAM ~4.7 Mbit, got {total}");
        assert!(ul1 as f64 / total as f64 > 0.8);
    }
}
