//! The five delay-versus-Vcc series of the paper's Figure 1.
//!
//! Figure 1 plots, normalized to the 12-FO4 phase delay at 700 mV:
//! the 12-FO4 clock phase, bitcell write delay, bitcell read delay, and
//! both SRAM delays with wordline activation added. Its two take-aways —
//! write+WL crossing the phase at 600 mV, bitcell-only write crossing at
//! 525 mV — anchor the whole calibration (see DESIGN.md).

use crate::cycle::CycleTimeModel;
use crate::voltage::{Millivolts, VccRange, PAPER_SWEEP};

/// One voltage point of Figure 1. All delays are normalized to the 12-FO4
/// phase at 700 mV (the paper's "a.u." axis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Figure1Row {
    /// Supply voltage of this row.
    pub vcc: Millivolts,
    /// 12-FO4 clock-phase delay.
    pub phase_12fo4: f64,
    /// Bitcell write delay (no wordline activation).
    pub bitcell_write: f64,
    /// Bitcell read delay (no wordline activation).
    pub bitcell_read: f64,
    /// Bitcell write delay + wordline activation.
    pub write_plus_wl: f64,
    /// Bitcell read delay + wordline activation.
    pub read_plus_wl: f64,
}

/// The full Figure 1 dataset over a voltage sweep.
///
/// ```
/// use lowvcc_sram::{CycleTimeModel, Figure1Series};
///
/// let series = Figure1Series::generate(&CycleTimeModel::silverthorne_45nm());
/// // Crossovers reported by the paper:
/// assert_eq!(series.write_wl_crossover().unwrap().millivolts(), 600);
/// assert_eq!(series.write_only_crossover().unwrap().millivolts(), 525);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Figure1Series {
    rows: Vec<Figure1Row>,
}

impl Figure1Series {
    /// Generates the series over the paper's 700→400 mV sweep.
    #[must_use]
    pub fn generate(model: &CycleTimeModel) -> Self {
        Self::generate_over(model, PAPER_SWEEP)
    }

    /// Generates the series over a custom sweep.
    #[must_use]
    pub fn generate_over(model: &CycleTimeModel, sweep: VccRange) -> Self {
        const ANCHOR: Millivolts = Millivolts::literal(700);
        let anchor = ANCHOR;
        let unit = model.phase(anchor).picos();
        let rows = sweep
            .iter()
            .map(|v| Figure1Row {
                vcc: v,
                phase_12fo4: model.phase(v).picos() / unit,
                bitcell_write: model.bitcell().write_delay(v).picos() / unit,
                bitcell_read: model.bitcell().read_delay(v).picos() / unit,
                write_plus_wl: model.write_phase(v).picos() / unit,
                read_plus_wl: model.read_phase(v).picos() / unit,
            })
            .collect();
        Self { rows }
    }

    /// The rows, ordered from high to low Vcc.
    #[must_use]
    pub fn rows(&self) -> &[Figure1Row] {
        &self.rows
    }

    /// Highest grid voltage at which `write + wordline` meets or exceeds
    /// the 12-FO4 phase (the paper: 600 mV).
    #[must_use]
    pub fn write_wl_crossover(&self) -> Option<Millivolts> {
        self.rows
            .iter()
            .find(|r| r.write_plus_wl >= r.phase_12fo4 - 1e-9)
            .map(|r| r.vcc)
    }

    /// Highest grid voltage at which the bitcell-only write delay meets or
    /// exceeds the 12-FO4 phase (the paper: 525 mV).
    #[must_use]
    pub fn write_only_crossover(&self) -> Option<Millivolts> {
        self.rows
            .iter()
            .find(|r| r.bitcell_write >= r.phase_12fo4 - 1e-9)
            .map(|r| r.vcc)
    }

    /// Whether the read path (with wordline) stays below the phase at every
    /// point, as the paper observes for properly sized 8-T read ports.
    #[must_use]
    pub fn read_never_limits(&self) -> bool {
        self.rows.iter().all(|r| r.read_plus_wl < r.phase_12fo4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Figure1Series {
        Figure1Series::generate(&CycleTimeModel::silverthorne_45nm())
    }

    #[test]
    fn normalization_anchor_is_one() {
        let s = series();
        let first = &s.rows()[0];
        assert_eq!(first.vcc.millivolts(), 700);
        assert!((first.phase_12fo4 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn crossovers_match_paper() {
        let s = series();
        assert_eq!(s.write_wl_crossover().unwrap().millivolts(), 600);
        assert_eq!(s.write_only_crossover().unwrap().millivolts(), 525);
    }

    #[test]
    fn read_never_limits_the_cycle() {
        assert!(series().read_never_limits());
    }

    #[test]
    fn write_grows_exponentially_but_phase_nearly_linearly() {
        let s = series();
        let at = |mv: u32| s.rows().iter().find(|r| r.vcc.millivolts() == mv).unwrap();
        // Phase grows gently (≈4.4× over the whole range)…
        assert!(at(400).phase_12fo4 / at(700).phase_12fo4 < 5.0);
        // …while write+WL grows by nearly two orders of magnitude.
        assert!(at(400).write_plus_wl / at(700).write_plus_wl > 50.0);
    }

    #[test]
    fn rows_ordered_descending() {
        let s = series();
        assert_eq!(s.rows().len(), 13);
        for pair in s.rows().windows(2) {
            assert!(pair[0].vcc > pair[1].vcc);
        }
    }

    #[test]
    fn custom_sweep_supported() {
        let sweep = VccRange::new(600, 500, 50).unwrap();
        let s = Figure1Series::generate_over(&CycleTimeModel::silverthorne_45nm(), sweep);
        assert_eq!(s.rows().len(), 3);
    }
}
