//! SRAM, bitcell and logic timing models versus supply voltage (Vcc).
//!
//! This crate is the circuit-level substrate for the reproduction of the
//! HPCA 2010 paper *"High-Performance Low-Vcc In-Order Core"* (Abella,
//! Chaparro, Vera, Carretero, González). The paper's evaluation rests on a
//! single circuit-level observation (its Figure 1): as Vcc scales down,
//! combinational logic delay (modelled as a chain of fanout-of-4 inverters)
//! grows roughly linearly, while **SRAM bitcell write delay grows
//! exponentially** and becomes the cycle-time limiter below ~600 mV.
//!
//! The paper gathered that data from a proprietary Intel circuit simulator at
//! 45 nm with 6σ process-variation margins. This crate substitutes an
//! analytical model **calibrated to the paper's published anchor points**:
//!
//! * write+wordline delay crosses the 12-FO4 clock phase at **600 mV**,
//! * bitcell-only write delay crosses it at **525 mV**,
//! * the write-limited frequency is **77%** of the logic-limited frequency at
//!   550 mV and **24%** at 450 mV,
//! * the write-limited cycle time "almost doubles" at 500 mV,
//! * interrupting writes early (IRAW) raises frequency by **+57%** at 500 mV
//!   and **+99%** at 400 mV, with one stabilization cycle sufficing below
//!   600 mV and the mechanism disabled at or above 600 mV.
//!
//! # Quickstart
//!
//! ```
//! use lowvcc_sram::{CycleTimeModel, Millivolts};
//!
//! let model = CycleTimeModel::silverthorne_45nm();
//! let v = Millivolts::new(500).unwrap();
//!
//! // Write-limited (baseline) vs logic/pulse-limited (IRAW) cycle times.
//! let base = model.baseline_cycle(v);
//! let iraw = model.iraw_cycle(v);
//! assert!(base.picos() > iraw.picos());
//!
//! // The headline result: ~+57% operating frequency at 500 mV.
//! let gain = model.frequency_gain(v);
//! assert!(gain > 1.5 && gain < 1.7);
//!
//! // One stabilization cycle suffices below 600 mV.
//! assert_eq!(model.stabilization_cycles(v), 1);
//! ```
//!
//! # Module map
//!
//! * [`voltage`] — [`Millivolts`] newtype and the paper's Vcc sweep.
//! * [`fo4`] — alpha-power-law inverter delay and FO4 chains.
//! * [`bitcell`] — 8-T bitcell read/write/interrupted-write delays.
//! * [`variation`] — Gaussian Vth variation, σ margins, write-fail
//!   probabilities (used by the Faulty Bits baseline).
//! * [`wordline`] — array geometry and wordline activation delay.
//! * [`array`] — descriptors for every SRAM block of the Silverthorne core.
//! * [`cycle`] — baseline vs IRAW cycle time, frequency gain, stabilization
//!   cycle count (the quantitative heart of Figures 11a/11b).
//! * [`figure1`] — the five delay-vs-Vcc series of the paper's Figure 1.

pub mod array;
pub mod bitcell;
pub mod cycle;
pub mod figure1;
pub mod fo4;
pub mod variation;
pub mod voltage;
pub mod wordline;

pub use array::{ArrayKind, SramArray, SramPorts};
pub use bitcell::Bitcell8T;
pub use cycle::{CycleTimeModel, TimingLimiter};
pub use figure1::{Figure1Row, Figure1Series};
pub use fo4::{AlphaPowerModel, LogicPath, Megahertz, Picoseconds};
pub use variation::VthVariation;
pub use voltage::{Millivolts, VccRange, VoltageError, PAPER_SWEEP};
pub use wordline::{ArrayGeometry, WordlineModel};
