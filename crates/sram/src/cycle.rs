//! Cycle time versus Vcc for the three clocking disciplines.
//!
//! This module turns the circuit-level delays into the numbers the paper's
//! evaluation is built on:
//!
//! * **Write-limited (baseline)** — the conventional design: the second
//!   clock phase must fit `wordline activation + full bitcell write`, so
//!   cycle time explodes at low Vcc (the "Baseline write delay" curve of
//!   Figure 11a).
//! * **IRAW-limited** — writes are interrupted after the minimum wordline
//!   pulse (`β · write`), so the phase must only fit
//!   `max(12 FO4, WL + β·write, WL + read)` (the "IRAW cycle time" curve).
//!   Interrupted cells need [`CycleTimeModel::stabilization_cycles`] extra
//!   cycles before they may be read — the `N` parameter that every IRAW
//!   avoidance mechanism in `lowvcc-core` consumes.
//! * **Logic-limited** — the 24-FO4 ideal used as reference ("cycle time
//!   not constrained by write operations").

use crate::bitcell::Bitcell8T;
use crate::fo4::{AlphaPowerModel, Megahertz, Picoseconds};
use crate::voltage::Millivolts;
use crate::wordline::WordlineModel;

/// Which path is allowed to limit the clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimingLimiter {
    /// 24-FO4 logic only (ideal reference; unsafe for SRAM writes).
    Logic,
    /// Conventional design: full SRAM write must fit in one cycle.
    WriteLimited,
    /// IRAW avoidance: interrupted writes, stabilization over `N` cycles.
    Iraw,
}

/// Composite cycle-time model for the calibrated 45 nm Silverthorne core.
///
/// ```
/// use lowvcc_sram::{CycleTimeModel, Millivolts, TimingLimiter};
///
/// let m = CycleTimeModel::silverthorne_45nm();
/// let v = Millivolts::new(450)?;
/// let base = m.cycle_time(v, TimingLimiter::WriteLimited);
/// let iraw = m.cycle_time(v, TimingLimiter::Iraw);
/// let logic = m.cycle_time(v, TimingLimiter::Logic);
/// assert!(logic < iraw && iraw < base);
/// # Ok::<(), lowvcc_sram::VoltageError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleTimeModel {
    logic: AlphaPowerModel,
    cell: Bitcell8T,
    wordline: WordlineModel,
}

impl CycleTimeModel {
    /// The calibrated model used throughout the reproduction.
    #[must_use]
    pub fn silverthorne_45nm() -> Self {
        Self {
            logic: AlphaPowerModel::silverthorne_45nm(),
            cell: Bitcell8T::silverthorne_45nm(),
            wordline: WordlineModel::silverthorne_45nm(),
        }
    }

    /// Creates a model from custom components.
    #[must_use]
    pub fn new(logic: AlphaPowerModel, cell: Bitcell8T, wordline: WordlineModel) -> Self {
        Self {
            logic,
            cell,
            wordline,
        }
    }

    /// The logic (FO4) delay model.
    #[must_use]
    pub fn logic(&self) -> &AlphaPowerModel {
        &self.logic
    }

    /// The bitcell delay model.
    #[must_use]
    pub fn bitcell(&self) -> &Bitcell8T {
        &self.cell
    }

    /// The wordline model.
    #[must_use]
    pub fn wordline(&self) -> &WordlineModel {
        &self.wordline
    }

    /// One 12-FO4 clock phase.
    #[must_use]
    pub fn phase(&self, v: Millivolts) -> Picoseconds {
        self.logic.phase_delay(v)
    }

    /// Wordline activation delay.
    #[must_use]
    pub fn wordline_delay(&self, v: Millivolts) -> Picoseconds {
        self.wordline.delay(&self.logic, v)
    }

    /// Full write path: wordline activation + complete bitcell write.
    #[must_use]
    pub fn write_phase(&self, v: Millivolts) -> Picoseconds {
        self.wordline_delay(v) + self.cell.write_delay(v)
    }

    /// Read path: wordline activation + read-bitline delay.
    #[must_use]
    pub fn read_phase(&self, v: Millivolts) -> Picoseconds {
        self.wordline_delay(v) + self.cell.read_delay(v)
    }

    /// IRAW phase constraint:
    /// `max(12 FO4, WL + β·write, WL + read)`.
    #[must_use]
    pub fn iraw_phase(&self, v: Millivolts) -> Picoseconds {
        let logic = self.phase(v);
        let pulse = self.wordline_delay(v) + self.cell.interrupted_pulse(v);
        let read = self.read_phase(v);
        Picoseconds::new(logic.picos().max(pulse.picos()).max(read.picos()))
    }

    /// Cycle time under the chosen limiter (two phases per cycle).
    #[must_use]
    pub fn cycle_time(&self, v: Millivolts, limiter: TimingLimiter) -> Picoseconds {
        let phase = match limiter {
            TimingLimiter::Logic => self.phase(v),
            TimingLimiter::WriteLimited => {
                Picoseconds::new(self.phase(v).picos().max(self.write_phase(v).picos()))
            }
            TimingLimiter::Iraw => self.iraw_phase(v),
        };
        phase * 2.0
    }

    /// Conventional (write-limited) cycle time.
    #[must_use]
    pub fn baseline_cycle(&self, v: Millivolts) -> Picoseconds {
        self.cycle_time(v, TimingLimiter::WriteLimited)
    }

    /// IRAW cycle time.
    #[must_use]
    pub fn iraw_cycle(&self, v: Millivolts) -> Picoseconds {
        self.cycle_time(v, TimingLimiter::Iraw)
    }

    /// Write-limited cycle time when margining at `sigma` instead of 6σ
    /// (the Faulty Bits baseline's clock).
    #[must_use]
    pub fn write_limited_cycle_at_sigma(&self, v: Millivolts, sigma: f64) -> Picoseconds {
        let write = self.wordline_delay(v) + self.cell.write_delay_at_sigma(v, sigma);
        Picoseconds::new(self.phase(v).picos().max(write.picos())) * 2.0
    }

    /// Operating frequency under the chosen limiter.
    #[must_use]
    pub fn frequency(&self, v: Millivolts, limiter: TimingLimiter) -> Megahertz {
        self.cycle_time(v, limiter).as_frequency()
    }

    /// Frequency gain of IRAW over the write-limited baseline
    /// (the paper's +57% at 500 mV, +99% at 400 mV).
    #[must_use]
    pub fn frequency_gain(&self, v: Millivolts) -> f64 {
        self.baseline_cycle(v) / self.iraw_cycle(v)
    }

    /// Number of stabilization cycles `N` interrupted cells need before
    /// they are readable at the IRAW clock.
    ///
    /// Returns 0 when the full write already fits in a phase (IRAW
    /// unnecessary — at or above 600 mV in the calibrated model, matching
    /// the paper's §4.1.3 reconfiguration rule).
    #[must_use]
    pub fn stabilization_cycles(&self, v: Millivolts) -> u32 {
        if self.write_phase(v) <= self.phase(v) {
            return 0;
        }
        let residual = self.cell.residual_stabilization(v);
        let cycle = self.iraw_cycle(v);
        let n = (residual.picos() / cycle.picos()).ceil();
        debug_assert!(n >= 1.0);
        // Interrupted writes never need zero cycles once IRAW is active.
        (n as u32).max(1)
    }

    /// Whether IRAW avoidance should be active at this voltage.
    #[must_use]
    pub fn iraw_active(&self, v: Millivolts) -> bool {
        self.stabilization_cycles(v) > 0
    }

    /// Cycle time normalized to the 24-FO4 cycle at 700 mV
    /// (the y-axis of the paper's Figure 11a).
    #[must_use]
    pub fn normalized_cycle(&self, v: Millivolts, limiter: TimingLimiter) -> f64 {
        const ANCHOR: Millivolts = Millivolts::literal(700);
        let anchor = ANCHOR;
        self.cycle_time(v, limiter) / self.cycle_time(anchor, TimingLimiter::Logic)
    }
}

impl Default for CycleTimeModel {
    fn default() -> Self {
        Self::silverthorne_45nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::voltage::{mv, PAPER_SWEEP};

    fn model() -> CycleTimeModel {
        CycleTimeModel::silverthorne_45nm()
    }

    #[test]
    fn baseline_frequency_fraction_anchors() {
        // Paper §2.1: write-limited frequency is 77% of logic at 550 mV and
        // 24% at 450 mV.
        let m = model();
        let frac = |v| {
            m.frequency(mv(v), TimingLimiter::WriteLimited).megahertz()
                / m.frequency(mv(v), TimingLimiter::Logic).megahertz()
        };
        assert!((frac(550) - 0.77).abs() < 0.005, "550 mV: {}", frac(550));
        assert!((frac(450) - 0.24).abs() < 0.005, "450 mV: {}", frac(450));
    }

    #[test]
    fn baseline_cycle_almost_doubles_at_500mv() {
        let m = model();
        let ratio = m.baseline_cycle(mv(500)) / m.cycle_time(mv(500), TimingLimiter::Logic);
        assert!((1.95..=2.15).contains(&ratio), "got {ratio}");
    }

    #[test]
    fn frequency_gain_headline_numbers() {
        // Paper abstract: +57% at 500 mV, +99% at 400 mV. Calibration error
        // of the analytic model is under 2.5%.
        let m = model();
        let g500 = m.frequency_gain(mv(500));
        let g400 = m.frequency_gain(mv(400));
        assert!((g500 - 1.57).abs() < 0.04, "500 mV gain {g500}");
        assert!((g400 - 1.99).abs() < 0.04, "400 mV gain {g400}");
    }

    #[test]
    fn gain_is_monotone_and_one_at_high_vcc() {
        let m = model();
        assert!((m.frequency_gain(mv(625)) - 1.0).abs() < 1e-12);
        assert!((m.frequency_gain(mv(700)) - 1.0).abs() < 1e-12);
        let mut last = 0.0;
        for v in PAPER_SWEEP.iter() {
            let g = m.frequency_gain(v);
            assert!(g >= last - 1e-12, "gain must grow as Vcc falls");
            last = g;
        }
    }

    #[test]
    fn limiter_ordering_holds_everywhere() {
        let m = model();
        for v in PAPER_SWEEP.iter() {
            let logic = m.cycle_time(v, TimingLimiter::Logic);
            let iraw = m.cycle_time(v, TimingLimiter::Iraw);
            let base = m.cycle_time(v, TimingLimiter::WriteLimited);
            assert!(logic <= iraw, "logic ≤ iraw at {v}");
            assert!(iraw <= base, "iraw ≤ baseline at {v}");
        }
    }

    #[test]
    fn stabilization_cycles_match_paper_rule() {
        // §4.1.3: deactivated at 600 mV or higher; one cycle suffices at
        // 575 mV and below (within the evaluated range).
        let m = model();
        for v in [600, 625, 650, 675, 700] {
            assert_eq!(m.stabilization_cycles(mv(v)), 0, "{v} mV");
            assert!(!m.iraw_active(mv(v)));
        }
        for v in [575, 550, 525, 500, 475, 450, 425, 400] {
            assert_eq!(m.stabilization_cycles(mv(v)), 1, "{v} mV");
            assert!(m.iraw_active(mv(v)));
        }
    }

    #[test]
    fn figure_11a_scale() {
        // Figure 11a: baseline write-limited cycle reaches ≈45 a.u. at
        // 400 mV; the IRAW cycle stays near half of that.
        let m = model();
        let base = m.normalized_cycle(mv(400), TimingLimiter::WriteLimited);
        let iraw = m.normalized_cycle(mv(400), TimingLimiter::Iraw);
        assert!((40.0..=52.0).contains(&base), "baseline a.u. {base}");
        assert!((18.0..=28.0).contains(&iraw), "IRAW a.u. {iraw}");
        // At 700 mV everything is logic-limited and normalized to 1.
        assert!((m.normalized_cycle(mv(700), TimingLimiter::WriteLimited) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn faulty_bits_sigma_margin_speeds_up_clock() {
        let m = model();
        let v = mv(450);
        let c6 = m.write_limited_cycle_at_sigma(v, 6.0);
        let c4 = m.write_limited_cycle_at_sigma(v, 4.0);
        assert!((c6.picos() - m.baseline_cycle(v).picos()).abs() < 1e-9);
        assert!(c4 < c6, "4σ margin must clock faster");
        // But still slower than the logic-only ideal.
        assert!(c4 >= m.cycle_time(v, TimingLimiter::Logic));
    }

    #[test]
    fn absolute_frequencies_are_plausible() {
        let m = model();
        let f700 = m.frequency(mv(700), TimingLimiter::Logic);
        assert!((1.3..1.5).contains(&f700.gigahertz()));
        // Baseline at 400 mV collapses to tens of MHz; IRAW roughly doubles it.
        let fb = m.frequency(mv(400), TimingLimiter::WriteLimited);
        let fi = m.frequency(mv(400), TimingLimiter::Iraw);
        assert!(fb.megahertz() < 40.0);
        assert!(fi.megahertz() / fb.megahertz() > 1.9);
    }
}
