//! Alpha-power-law logic delay model and FO4 inverter chains.
//!
//! The paper models the processor's combinational critical path as a chain
//! of fanout-of-4 (FO4) inverters: 12 FO4 per clock phase, 24 FO4 per full
//! cycle. Gate delay versus supply voltage follows the classic alpha-power
//! law (Sakurai–Newton):
//!
//! ```text
//! d(V) = k · V / (V − Vth)^α
//! ```
//!
//! with `Vth = 300 mV` and `α = 1.40` calibrated so the 12-FO4 phase delay
//! grows ≈4× between 700 mV and 400 mV, matching the scale of the paper's
//! Figure 1.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, Div, Mul, Sub};

use crate::voltage::Millivolts;

/// Number of FO4 inverter delays in one clock phase (half cycle).
pub const PHASE_FO4: u32 = 12;

/// Number of FO4 inverter delays in one full clock cycle.
pub const CYCLE_FO4: u32 = 24;

/// A time duration in picoseconds.
///
/// Thin newtype so cycle times, access latencies and stabilization windows
/// cannot be confused with unit-less ratios.
///
/// ```
/// use lowvcc_sram::Picoseconds;
///
/// let cycle = Picoseconds::new(720.0);
/// assert_eq!(cycle.nanos(), 0.72);
/// assert_eq!((cycle * 2.0).picos(), 1440.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Picoseconds(f64);

impl Picoseconds {
    /// Creates a duration from picoseconds.
    #[must_use]
    pub fn new(ps: f64) -> Self {
        Self(ps)
    }

    /// Returns the duration in picoseconds.
    #[must_use]
    pub fn picos(self) -> f64 {
        self.0
    }

    /// Returns the duration in nanoseconds.
    #[must_use]
    pub fn nanos(self) -> f64 {
        self.0 / 1000.0
    }

    /// Returns the duration in seconds.
    #[must_use]
    pub fn seconds(self) -> f64 {
        self.0 * 1e-12
    }

    /// The equivalent clock frequency of a cycle of this duration.
    ///
    /// # Panics
    ///
    /// Panics if the duration is not strictly positive.
    #[must_use]
    pub fn as_frequency(self) -> Megahertz {
        assert!(
            self.0 > 0.0,
            "cannot convert non-positive duration to frequency"
        );
        Megahertz(1e6 / self.0)
    }
}

impl Add for Picoseconds {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl Sub for Picoseconds {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl Mul<f64> for Picoseconds {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Div<Picoseconds> for Picoseconds {
    type Output = f64;
    fn div(self, rhs: Picoseconds) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Picoseconds {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|p| p.0).sum())
    }
}

impl fmt::Display for Picoseconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} ps", self.0)
    }
}

/// A clock frequency in megahertz.
///
/// ```
/// use lowvcc_sram::{Megahertz, Picoseconds};
///
/// let f = Picoseconds::new(720.0).as_frequency();
/// assert!((f.megahertz() - 1388.9).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Megahertz(f64);

impl Megahertz {
    /// Creates a frequency from megahertz.
    #[must_use]
    pub fn new(mhz: f64) -> Self {
        Self(mhz)
    }

    /// Returns the frequency in megahertz.
    #[must_use]
    pub fn megahertz(self) -> f64 {
        self.0
    }

    /// Returns the frequency in gigahertz.
    #[must_use]
    pub fn gigahertz(self) -> f64 {
        self.0 / 1000.0
    }
}

impl fmt::Display for Megahertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} MHz", self.0)
    }
}

/// Alpha-power-law gate-delay model.
///
/// Delay of one FO4 inverter stage as a function of Vcc, with an absolute
/// calibration point at 700 mV. The entire timing stack is expressed in
/// multiples of this delay, so the model also fixes the absolute time scale
/// of the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaPowerModel {
    vth_mv: f64,
    alpha: f64,
    fo4_at_700mv: Picoseconds,
}

impl AlphaPowerModel {
    /// Threshold voltage of the calibrated 45 nm logic transistors (mV).
    pub const VTH_LOGIC_MV: f64 = 300.0;

    /// Velocity-saturation exponent of the calibrated 45 nm process.
    pub const ALPHA: f64 = 1.40;

    /// FO4 inverter delay at the 700 mV anchor (ps); yields a 720 ps
    /// (≈1.39 GHz) 24-FO4 cycle at 700 mV, a plausible 45 nm in-order core.
    pub const FO4_AT_700MV_PS: f64 = 30.0;

    /// The calibrated 45 nm model used throughout the reproduction.
    #[must_use]
    pub fn silverthorne_45nm() -> Self {
        Self {
            vth_mv: Self::VTH_LOGIC_MV,
            alpha: Self::ALPHA,
            fo4_at_700mv: Picoseconds::new(Self::FO4_AT_700MV_PS),
        }
    }

    /// Creates a model with custom parameters (for other process nodes).
    ///
    /// # Panics
    ///
    /// Panics if `vth_mv` is not in (0, 349\] (the model's minimum supply is
    /// 350 mV and delay diverges at `V == Vth`), if `alpha` is not in
    /// \[1.0, 2.0\], or if the anchor delay is not positive.
    #[must_use]
    pub fn new(vth_mv: f64, alpha: f64, fo4_at_700mv: Picoseconds) -> Self {
        assert!(
            vth_mv > 0.0 && vth_mv < 350.0,
            "threshold voltage must lie in (0, 350) mV"
        );
        assert!((1.0..=2.0).contains(&alpha), "alpha must lie in [1, 2]");
        assert!(fo4_at_700mv.picos() > 0.0, "anchor delay must be positive");
        Self {
            vth_mv,
            alpha,
            fo4_at_700mv,
        }
    }

    /// Unit-less alpha-power kernel `V / (V − Vth)^α` (mV domain).
    fn kernel(&self, v: Millivolts) -> f64 {
        let v_mv = f64::from(v.millivolts());
        let overdrive = v_mv - self.vth_mv;
        debug_assert!(overdrive > 0.0);
        v_mv / overdrive.powf(self.alpha)
    }

    /// Delay of a single FO4 inverter at the given supply voltage.
    ///
    /// ```
    /// use lowvcc_sram::{AlphaPowerModel, Millivolts};
    ///
    /// let m = AlphaPowerModel::silverthorne_45nm();
    /// let d700 = m.fo4_delay(Millivolts::new(700)?);
    /// let d400 = m.fo4_delay(Millivolts::new(400)?);
    /// assert!(d400.picos() / d700.picos() > 3.9); // steep low-Vcc slowdown
    /// # Ok::<(), lowvcc_sram::VoltageError>(())
    /// ```
    #[must_use]
    pub fn fo4_delay(&self, v: Millivolts) -> Picoseconds {
        const ANCHOR: Millivolts = Millivolts::literal(700);
        let anchor = ANCHOR;
        self.fo4_at_700mv * (self.kernel(v) / self.kernel(anchor))
    }

    /// Delay of one 12-FO4 clock *phase* at the given supply voltage.
    #[must_use]
    pub fn phase_delay(&self, v: Millivolts) -> Picoseconds {
        self.fo4_delay(v) * f64::from(PHASE_FO4)
    }

    /// Delay of one 24-FO4 logic-limited clock *cycle*.
    #[must_use]
    pub fn cycle_delay(&self, v: Millivolts) -> Picoseconds {
        self.fo4_delay(v) * f64::from(CYCLE_FO4)
    }
}

impl Default for AlphaPowerModel {
    fn default() -> Self {
        Self::silverthorne_45nm()
    }
}

/// A combinational path expressed as a number of FO4 stages.
///
/// ```
/// use lowvcc_sram::{AlphaPowerModel, LogicPath, Millivolts};
///
/// let model = AlphaPowerModel::silverthorne_45nm();
/// let phase = LogicPath::clock_phase();
/// let d = phase.delay(&model, Millivolts::new(700)?);
/// assert!((d.picos() - 360.0).abs() < 1e-9); // 12 × 30 ps
/// # Ok::<(), lowvcc_sram::VoltageError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LogicPath {
    stages: u32,
}

impl LogicPath {
    /// A path of `stages` FO4 inverter delays.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is zero.
    #[must_use]
    pub fn new(stages: u32) -> Self {
        assert!(stages > 0, "logic path must have at least one stage");
        Self { stages }
    }

    /// The paper's 12-FO4 clock phase.
    #[must_use]
    pub fn clock_phase() -> Self {
        Self { stages: PHASE_FO4 }
    }

    /// The paper's 24-FO4 full clock cycle.
    #[must_use]
    pub fn clock_cycle() -> Self {
        Self { stages: CYCLE_FO4 }
    }

    /// Number of FO4 stages in the path.
    #[must_use]
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// Path delay at the given supply voltage under `model`.
    #[must_use]
    pub fn delay(&self, model: &AlphaPowerModel, v: Millivolts) -> Picoseconds {
        model.fo4_delay(v) * f64::from(self.stages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::voltage::mv;

    #[test]
    fn anchor_is_30ps_at_700mv() {
        let m = AlphaPowerModel::silverthorne_45nm();
        assert!((m.fo4_delay(mv(700)).picos() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn delay_monotonically_decreases_with_voltage() {
        let m = AlphaPowerModel::silverthorne_45nm();
        let mut last = f64::INFINITY;
        for v in (400..=1100).step_by(25) {
            let d = m.fo4_delay(mv(v)).picos();
            assert!(d < last, "delay must shrink as Vcc rises ({v} mV)");
            assert!(d > 0.0);
            last = d;
        }
    }

    #[test]
    fn low_vcc_slowdown_matches_figure1_scale() {
        // Figure 1 shows the 12-FO4 phase at roughly 3.5–5 a.u. at 400 mV
        // (normalized to 1.0 at 700 mV). The calibrated model gives ≈3.98×.
        let m = AlphaPowerModel::silverthorne_45nm();
        let ratio = m.fo4_delay(mv(400)) / m.fo4_delay(mv(700));
        assert!(
            (3.5..=5.0).contains(&ratio),
            "700→400 mV slowdown {ratio:.2} outside Figure 1 scale"
        );
    }

    #[test]
    fn phase_and_cycle_are_12_and_24_fo4() {
        let m = AlphaPowerModel::silverthorne_45nm();
        let v = mv(550);
        let fo4 = m.fo4_delay(v).picos();
        assert!((m.phase_delay(v).picos() - 12.0 * fo4).abs() < 1e-9);
        assert!((m.cycle_delay(v).picos() - 24.0 * fo4).abs() < 1e-9);
    }

    #[test]
    fn cycle_at_700mv_is_720ps() {
        let m = AlphaPowerModel::silverthorne_45nm();
        assert!((m.cycle_delay(mv(700)).picos() - 720.0).abs() < 1e-9);
        let f = m.cycle_delay(mv(700)).as_frequency();
        assert!((f.gigahertz() - 1.3889).abs() < 1e-3);
    }

    #[test]
    fn logic_path_scales_with_stages() {
        let m = AlphaPowerModel::silverthorne_45nm();
        let v = mv(600);
        let p1 = LogicPath::new(1).delay(&m, v);
        let p24 = LogicPath::clock_cycle().delay(&m, v);
        assert!((p24.picos() - 24.0 * p1.picos()).abs() < 1e-9);
        assert_eq!(LogicPath::clock_phase().stages(), 12);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stage_path_rejected() {
        let _ = LogicPath::new(0);
    }

    #[test]
    #[should_panic(expected = "threshold voltage")]
    fn bad_vth_rejected() {
        let _ = AlphaPowerModel::new(400.0, 1.4, Picoseconds::new(30.0));
    }

    #[test]
    fn picoseconds_arithmetic() {
        let a = Picoseconds::new(100.0);
        let b = Picoseconds::new(40.0);
        assert_eq!((a + b).picos(), 140.0);
        assert_eq!((a - b).picos(), 60.0);
        assert_eq!((a * 2.5).picos(), 250.0);
        assert_eq!(a / b, 2.5);
        let total: Picoseconds = [a, b, b].into_iter().sum();
        assert_eq!(total.picos(), 180.0);
    }

    #[test]
    fn frequency_conversion_roundtrip() {
        let cycle = Picoseconds::new(500.0); // 2 GHz
        assert!((cycle.as_frequency().gigahertz() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn zero_duration_has_no_frequency() {
        let _ = Picoseconds::new(0.0).as_frequency();
    }

    #[test]
    fn display_formats() {
        assert_eq!(Picoseconds::new(123.45).to_string(), "123.5 ps");
        assert_eq!(Megahertz::new(1500.0).to_string(), "1500 MHz");
    }
}
