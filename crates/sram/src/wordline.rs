//! SRAM array geometry and wordline activation delay.
//!
//! The paper's Figure 1 experiment uses an array of 1,024 entries × 32 bits
//! with wordlines partitioned into 8-bit groups "to optimize their delay".
//! Wordline activation behaves like a short logic path (decoder output
//! buffer + wordline RC): its delay tracks the FO4 chain's slope, scaled by
//! the array's geometry. For the reference geometry it is κ = 0.585 of a
//! 12-FO4 phase — that value is what places the write+wordline crossover at
//! 600 mV while the bitcell-only crossover sits at 525 mV (both from the
//! paper's Figure 1).

use crate::fo4::{AlphaPowerModel, Picoseconds};
use crate::voltage::Millivolts;

/// Physical organization of an SRAM array.
///
/// ```
/// use lowvcc_sram::ArrayGeometry;
///
/// let g = ArrayGeometry::paper_reference();
/// assert_eq!(g.entries(), 1024);
/// assert_eq!(g.total_bits(), 32_768);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayGeometry {
    entries: u32,
    bits_per_entry: u32,
    bits_per_wl_segment: u32,
}

impl ArrayGeometry {
    /// Creates an array geometry.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or if the wordline segment is wider
    /// than an entry.
    #[must_use]
    pub fn new(entries: u32, bits_per_entry: u32, bits_per_wl_segment: u32) -> Self {
        assert!(entries > 0 && bits_per_entry > 0 && bits_per_wl_segment > 0);
        assert!(
            bits_per_wl_segment <= bits_per_entry,
            "wordline segment cannot exceed entry width"
        );
        Self {
            entries,
            bits_per_entry,
            bits_per_wl_segment,
        }
    }

    /// The paper's Figure 1 reference array: 1,024 × 32 bits, 8-bit
    /// wordline segments.
    #[must_use]
    pub fn paper_reference() -> Self {
        Self::new(1024, 32, 8)
    }

    /// Number of entries (rows).
    #[must_use]
    pub fn entries(&self) -> u32 {
        self.entries
    }

    /// Bits per entry (row width).
    #[must_use]
    pub fn bits_per_entry(&self) -> u32 {
        self.bits_per_entry
    }

    /// Bits attached to each wordline segment.
    #[must_use]
    pub fn bits_per_wl_segment(&self) -> u32 {
        self.bits_per_wl_segment
    }

    /// Total storage bits in the array.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        u64::from(self.entries) * u64::from(self.bits_per_entry)
    }
}

impl Default for ArrayGeometry {
    fn default() -> Self {
        Self::paper_reference()
    }
}

/// Wordline activation delay model.
///
/// ```
/// use lowvcc_sram::{AlphaPowerModel, ArrayGeometry, Millivolts, WordlineModel};
///
/// let wl = WordlineModel::silverthorne_45nm();
/// let logic = AlphaPowerModel::silverthorne_45nm();
/// let v = Millivolts::new(500)?;
/// // Wordline activation is a sub-phase delay at every voltage.
/// assert!(wl.delay(&logic, v).picos() < logic.phase_delay(v).picos());
/// # Ok::<(), lowvcc_sram::VoltageError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WordlineModel {
    kappa_reference: f64,
    geometry: ArrayGeometry,
}

impl WordlineModel {
    /// Wordline share of a 12-FO4 phase for the reference geometry.
    ///
    /// Derived in DESIGN.md: this is the unique value consistent with the
    /// paper's two crossover voltages (write+WL at 600 mV, bitcell-only
    /// write at 525 mV) given the calibrated write curve.
    pub const KAPPA_REFERENCE: f64 = 0.585;

    /// The calibrated model for the paper's reference array.
    #[must_use]
    pub fn silverthorne_45nm() -> Self {
        Self {
            kappa_reference: Self::KAPPA_REFERENCE,
            geometry: ArrayGeometry::paper_reference(),
        }
    }

    /// A wordline model for a different array geometry.
    ///
    /// Larger decoders (more entries) and wider wordline segments increase
    /// the activation delay mildly and logarithmically; the reference
    /// geometry maps exactly to [`Self::KAPPA_REFERENCE`].
    #[must_use]
    pub fn for_geometry(geometry: ArrayGeometry) -> Self {
        Self {
            kappa_reference: Self::KAPPA_REFERENCE,
            geometry,
        }
    }

    /// The geometry this model describes.
    #[must_use]
    pub fn geometry(&self) -> ArrayGeometry {
        self.geometry
    }

    /// Effective wordline share of a clock phase for this geometry.
    #[must_use]
    pub fn kappa(&self) -> f64 {
        let reference = ArrayGeometry::paper_reference();
        let decode =
            f64::from(self.geometry.entries()).log2() / f64::from(reference.entries()).log2();
        let segment = f64::from(self.geometry.bits_per_wl_segment())
            / f64::from(reference.bits_per_wl_segment());
        // 70% decoder-depth term + 30% segment-RC term; both 1.0 at the
        // reference geometry.
        self.kappa_reference * (0.7 * decode + 0.3 * segment.sqrt())
    }

    /// Wordline activation delay at the given supply voltage.
    ///
    /// The slope tracks the FO4 chain (the paper: "its slope resembles that
    /// of the 12 FO4 chain").
    #[must_use]
    pub fn delay(&self, logic: &AlphaPowerModel, v: Millivolts) -> Picoseconds {
        logic.phase_delay(v) * self.kappa()
    }
}

impl Default for WordlineModel {
    fn default() -> Self {
        Self::silverthorne_45nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::voltage::mv;

    #[test]
    fn reference_geometry_matches_paper() {
        let g = ArrayGeometry::paper_reference();
        assert_eq!(g.entries(), 1024);
        assert_eq!(g.bits_per_entry(), 32);
        assert_eq!(g.bits_per_wl_segment(), 8);
        assert_eq!(g.total_bits(), 1024 * 32);
    }

    #[test]
    #[should_panic(expected = "wordline segment")]
    fn segment_wider_than_entry_rejected() {
        let _ = ArrayGeometry::new(64, 8, 16);
    }

    #[test]
    fn reference_kappa_is_calibrated_value() {
        let wl = WordlineModel::silverthorne_45nm();
        assert!((wl.kappa() - WordlineModel::KAPPA_REFERENCE).abs() < 1e-12);
    }

    #[test]
    fn kappa_grows_with_entries_and_segment_width() {
        let small = WordlineModel::for_geometry(ArrayGeometry::new(256, 32, 8));
        let reference = WordlineModel::silverthorne_45nm();
        let big = WordlineModel::for_geometry(ArrayGeometry::new(8192, 32, 8));
        let wide = WordlineModel::for_geometry(ArrayGeometry::new(1024, 32, 32));
        assert!(small.kappa() < reference.kappa());
        assert!(big.kappa() > reference.kappa());
        assert!(wide.kappa() > reference.kappa());
    }

    #[test]
    fn delay_tracks_fo4_slope() {
        // κ constant ⇒ wordline/phase ratio is voltage-independent, which is
        // the paper's "slope resembles the 12 FO4 chain".
        let wl = WordlineModel::silverthorne_45nm();
        let logic = AlphaPowerModel::silverthorne_45nm();
        let r700 = wl.delay(&logic, mv(700)) / logic.phase_delay(mv(700));
        let r400 = wl.delay(&logic, mv(400)) / logic.phase_delay(mv(400));
        assert!((r700 - r400).abs() < 1e-12);
    }
}
