//! Supply-voltage newtype and sweep ranges.
//!
//! The paper evaluates the Vcc range \[700 mV, 400 mV\] in 25 mV steps on a
//! 45 nm process. [`Millivolts`] keeps voltages as integers (exact grid
//! arithmetic, hashable, orderable); models convert to volts internally.

use std::fmt;

/// Lowest supply voltage the delay models accept.
///
/// Below ~350 mV the calibrated alpha-power logic model approaches its
/// threshold-voltage singularity and the paper presents no data, so the
/// models refuse to extrapolate there.
pub const MIN_MODEL_MV: u32 = 350;

/// Highest supply voltage the delay models accept.
///
/// The paper's data stops at 700 mV; we allow head-room up to a nominal
/// 45 nm supply so DVFS examples can include a "high" operating point.
pub const MAX_MODEL_MV: u32 = 1100;

/// A supply voltage in millivolts.
///
/// ```
/// use lowvcc_sram::Millivolts;
///
/// let v = Millivolts::new(500)?;
/// assert_eq!(v.millivolts(), 500);
/// assert!((v.volts() - 0.5).abs() < 1e-12);
/// # Ok::<(), lowvcc_sram::VoltageError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Millivolts(u32);

impl Millivolts {
    /// Creates a supply voltage, validating it against the model range.
    ///
    /// # Errors
    ///
    /// Returns [`VoltageError::OutOfRange`] when `mv` lies outside
    /// [`MIN_MODEL_MV`]..=[`MAX_MODEL_MV`].
    pub fn new(mv: u32) -> Result<Self, VoltageError> {
        if (MIN_MODEL_MV..=MAX_MODEL_MV).contains(&mv) {
            Ok(Self(mv))
        } else {
            Err(VoltageError::OutOfRange { mv })
        }
    }

    /// Creates a supply voltage from a compile-time constant, validated
    /// at compile time: an out-of-range literal fails the build rather
    /// than the run. This is the panic-free spelling for hard-wired
    /// grid voltages (e.g. the daemon's 500 mV Table 1 anchor).
    ///
    /// ```
    /// use lowvcc_sram::Millivolts;
    ///
    /// const ANCHOR: Millivolts = Millivolts::literal(500);
    /// assert_eq!(ANCHOR.millivolts(), 500);
    /// ```
    #[must_use]
    pub const fn literal(mv: u32) -> Self {
        assert!(
            MIN_MODEL_MV <= mv && mv <= MAX_MODEL_MV,
            "literal voltage outside the calibrated model range"
        );
        Self(mv)
    }

    /// Returns the voltage in millivolts.
    #[must_use]
    pub const fn millivolts(self) -> u32 {
        self.0
    }

    /// Returns the voltage in volts.
    #[must_use]
    pub fn volts(self) -> f64 {
        f64::from(self.0) / 1000.0
    }

    /// Number of 25 mV steps this voltage lies *below* 600 mV.
    ///
    /// This is the `x` coordinate of the calibrated write-delay curve
    /// (positive below 600 mV, negative above). Non-grid voltages yield
    /// fractional steps, so the delay models remain continuous.
    #[must_use]
    pub fn steps_below_600(self) -> f64 {
        (600.0 - f64::from(self.0)) / 25.0
    }
}

impl fmt::Display for Millivolts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} mV", self.0)
    }
}

/// Error produced when constructing an unsupported [`Millivolts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VoltageError {
    /// The requested voltage lies outside the calibrated model range.
    OutOfRange {
        /// The rejected voltage in millivolts.
        mv: u32,
    },
}

impl fmt::Display for VoltageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OutOfRange { mv } => write!(
                f,
                "supply voltage {mv} mV outside supported range [{MIN_MODEL_MV}, {MAX_MODEL_MV}] mV"
            ),
        }
    }
}

impl std::error::Error for VoltageError {}

/// An inclusive, descending sweep of supply voltages on a fixed step grid.
///
/// The paper plots everything from 700 mV down to 400 mV in 25 mV steps;
/// [`PAPER_SWEEP`] is that range.
///
/// ```
/// use lowvcc_sram::{VccRange, PAPER_SWEEP};
///
/// let points: Vec<u32> = PAPER_SWEEP.iter().map(|v| v.millivolts()).collect();
/// assert_eq!(points.first(), Some(&700));
/// assert_eq!(points.last(), Some(&400));
/// assert_eq!(points.len(), 13);
///
/// let custom = VccRange::new(650, 500, 50)?;
/// assert_eq!(custom.iter().count(), 4);
/// # Ok::<(), lowvcc_sram::VoltageError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VccRange {
    high_mv: u32,
    low_mv: u32,
    step_mv: u32,
}

/// The paper's evaluation sweep: 700 mV down to 400 mV in 25 mV steps.
pub const PAPER_SWEEP: VccRange = VccRange {
    high_mv: 700,
    low_mv: 400,
    step_mv: 25,
};

impl VccRange {
    /// Creates a descending sweep from `high_mv` down to `low_mv`.
    ///
    /// # Errors
    ///
    /// Returns [`VoltageError::OutOfRange`] if either endpoint is outside
    /// the model range, if `high_mv < low_mv`, or if `step_mv` is zero.
    pub fn new(high_mv: u32, low_mv: u32, step_mv: u32) -> Result<Self, VoltageError> {
        let _ = Millivolts::new(high_mv)?;
        let _ = Millivolts::new(low_mv)?;
        if high_mv < low_mv || step_mv == 0 {
            return Err(VoltageError::OutOfRange { mv: high_mv });
        }
        Ok(Self {
            high_mv,
            low_mv,
            step_mv,
        })
    }

    /// Iterates the sweep from the highest voltage downwards.
    pub fn iter(&self) -> impl Iterator<Item = Millivolts> + '_ {
        let steps = (self.high_mv - self.low_mv) / self.step_mv;
        (0..=steps).map(move |i| Millivolts(self.high_mv - i * self.step_mv))
    }

    /// The highest voltage in the sweep.
    #[must_use]
    pub fn high(&self) -> Millivolts {
        Millivolts(self.high_mv)
    }

    /// The lowest grid voltage in the sweep.
    #[must_use]
    pub fn low(&self) -> Millivolts {
        Millivolts(self.high_mv - (self.high_mv - self.low_mv) / self.step_mv * self.step_mv)
    }
}

impl IntoIterator for VccRange {
    type Item = Millivolts;
    type IntoIter = std::vec::IntoIter<Millivolts>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter().collect::<Vec<_>>().into_iter()
    }
}

/// Convenience constructor for tests and examples on the 25 mV paper grid.
///
/// # Panics
///
/// Panics if `mv` is outside the supported model range. Use
/// [`Millivolts::new`] for fallible construction.
#[must_use]
pub fn mv(mv: u32) -> Millivolts {
    Millivolts::new(mv).expect("voltage within model range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructs_in_range() {
        assert_eq!(Millivolts::new(500).unwrap().millivolts(), 500);
        assert_eq!(Millivolts::new(400).unwrap().volts(), 0.4);
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(Millivolts::new(MIN_MODEL_MV - 1).is_err());
        assert!(Millivolts::new(MAX_MODEL_MV + 1).is_err());
        assert!(Millivolts::new(0).is_err());
    }

    #[test]
    fn boundary_values_accepted() {
        assert!(Millivolts::new(MIN_MODEL_MV).is_ok());
        assert!(Millivolts::new(MAX_MODEL_MV).is_ok());
    }

    #[test]
    fn literal_matches_fallible_construction() {
        const ANCHOR: Millivolts = Millivolts::literal(500);
        assert_eq!(Some(ANCHOR), Millivolts::new(500).ok());
        const LOW: Millivolts = Millivolts::literal(MIN_MODEL_MV);
        const HIGH: Millivolts = Millivolts::literal(MAX_MODEL_MV);
        assert_eq!(LOW.millivolts(), MIN_MODEL_MV);
        assert_eq!(HIGH.millivolts(), MAX_MODEL_MV);
    }

    #[test]
    fn steps_below_600_signed() {
        assert_eq!(mv(600).steps_below_600(), 0.0);
        assert_eq!(mv(550).steps_below_600(), 2.0);
        assert_eq!(mv(700).steps_below_600(), -4.0);
        assert_eq!(mv(400).steps_below_600(), 8.0);
    }

    #[test]
    fn paper_sweep_has_13_points() {
        let points: Vec<_> = PAPER_SWEEP.iter().collect();
        assert_eq!(points.len(), 13);
        assert_eq!(points[0], mv(700));
        assert_eq!(points[12], mv(400));
        // Strictly descending by 25 mV.
        for pair in points.windows(2) {
            assert_eq!(pair[0].millivolts() - pair[1].millivolts(), 25);
        }
    }

    #[test]
    fn custom_range_validation() {
        assert!(VccRange::new(500, 700, 25).is_err());
        assert!(VccRange::new(700, 400, 0).is_err());
        assert!(VccRange::new(2000, 400, 25).is_err());
        let r = VccRange::new(700, 390, 100).unwrap();
        let pts: Vec<_> = r.iter().map(|v| v.millivolts()).collect();
        assert_eq!(pts, vec![700, 600, 500, 400]);
        assert_eq!(r.low().millivolts(), 400);
    }

    #[test]
    fn display_formats() {
        assert_eq!(mv(500).to_string(), "500 mV");
        let err = Millivolts::new(10).unwrap_err();
        assert!(err.to_string().contains("10 mV"));
    }

    #[test]
    fn ordering_follows_voltage() {
        assert!(mv(700) > mv(400));
        assert_eq!(mv(500), mv(500));
    }
}
