//! Process variation: Gaussian Vth spread, σ margins and write-fail math.
//!
//! The paper margins every SRAM critical path at **6σ** ("only one critical
//! path per billion would not fit the cycle time"). The Faulty Bits baseline
//! (its Section 2.2 / Table 1) instead margins at fewer σ, clocking faster
//! but leaving a predictable fraction of cells unable to complete writes —
//! those must be mapped out. This module provides the tail-probability and
//! inverse-margin math both mechanisms need.
//!
//! The error function is implemented in-tree (no `libm` dependency) using
//! the Chebyshev-fitted `erfc` of Numerical Recipes §6.2, whose *relative*
//! error is below 1.2 × 10⁻⁷ everywhere — small enough to resolve 6σ tails
//! (~10⁻⁹) accurately.

use crate::bitcell::Bitcell8T;
use crate::fo4::Picoseconds;
use crate::voltage::Millivolts;

/// Complementary error function, accurate to 1.2e-7 relative error.
///
/// ```
/// use lowvcc_sram::variation::erfc;
///
/// assert!((erfc(0.0) - 1.0).abs() < 1e-6);
/// assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
/// ```
#[must_use]
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function `erf(x) = 1 − erfc(x)`.
#[must_use]
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Standard-normal upper-tail probability `P(X > k)`.
///
/// ```
/// use lowvcc_sram::variation::normal_tail;
///
/// // The paper's 6σ margin: about one path per billion fails.
/// let p = normal_tail(6.0);
/// assert!(p > 0.5e-9 && p < 2e-9);
/// ```
#[must_use]
pub fn normal_tail(k: f64) -> f64 {
    0.5 * erfc(k / std::f64::consts::SQRT_2)
}

/// Standard-normal CDF `P(X ≤ k)`.
#[must_use]
pub fn normal_cdf(k: f64) -> f64 {
    1.0 - normal_tail(k)
}

/// Gaussian threshold-voltage variation of minimum-size SRAM transistors.
///
/// ```
/// use lowvcc_sram::VthVariation;
///
/// let var = VthVariation::silverthorne_45nm();
/// assert_eq!(var.vth_at_sigma(6.0), 470.0); // 350 + 6·20 mV
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VthVariation {
    nominal_mv: f64,
    sigma_mv: f64,
}

impl VthVariation {
    /// The calibrated 45 nm SRAM-cell variation (σ = 20 mV on a 350 mV
    /// nominal Vth; minimum-size cell transistors vary far more than the
    /// wide logic devices).
    #[must_use]
    pub fn silverthorne_45nm() -> Self {
        Self {
            nominal_mv: 350.0,
            sigma_mv: 20.0,
        }
    }

    /// Creates a custom variation model.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-positive.
    #[must_use]
    pub fn new(nominal_mv: f64, sigma_mv: f64) -> Self {
        assert!(nominal_mv > 0.0 && sigma_mv > 0.0);
        Self {
            nominal_mv,
            sigma_mv,
        }
    }

    /// Nominal (0σ) threshold voltage in millivolts.
    #[must_use]
    pub fn nominal_mv(&self) -> f64 {
        self.nominal_mv
    }

    /// Per-device σ in millivolts.
    #[must_use]
    pub fn sigma_mv(&self) -> f64 {
        self.sigma_mv
    }

    /// Effective Vth of a device `k` standard deviations from nominal.
    #[must_use]
    pub fn vth_at_sigma(&self, k: f64) -> f64 {
        self.nominal_mv + k * self.sigma_mv
    }
}

impl Default for VthVariation {
    fn default() -> Self {
        Self::silverthorne_45nm()
    }
}

/// Finds the σ-offset at which a cell's write delay exactly equals `budget`.
///
/// Returns a value in \[-10, 14\]; cells above this σ fail the budget. The
/// search uses bisection on the monotone σ → delay map.
///
/// ```
/// use lowvcc_sram::{variation::critical_sigma, Bitcell8T, Millivolts};
///
/// let cell = Bitcell8T::silverthorne_45nm();
/// let v = Millivolts::new(500)?;
/// // By construction the calibrated write delay is the 6σ cell's delay.
/// let k = critical_sigma(&cell, v, cell.write_delay(v));
/// assert!((k - 6.0).abs() < 1e-6);
/// # Ok::<(), lowvcc_sram::VoltageError>(())
/// ```
#[must_use]
pub fn critical_sigma(cell: &Bitcell8T, v: Millivolts, budget: Picoseconds) -> f64 {
    const LO: f64 = -10.0;
    const HI: f64 = 14.0;
    if cell.write_delay_at_sigma(v, LO) > budget {
        return LO;
    }
    if cell.write_delay_at_sigma(v, HI) <= budget {
        return HI;
    }
    let (mut lo, mut hi) = (LO, HI);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if cell.write_delay_at_sigma(v, mid) <= budget {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Probability that a random cell cannot complete a write within `budget`.
///
/// This drives the Faulty Bits baseline: clocking a cache faster than the
/// 6σ write delay makes `cell_fail_probability` of its bits unusable at
/// that voltage, and those lines must be disabled.
#[must_use]
pub fn cell_fail_probability(cell: &Bitcell8T, v: Millivolts, budget: Picoseconds) -> f64 {
    normal_tail(critical_sigma(cell, v, budget))
}

/// Expected number of faulty cells among `bits` at the given budget.
#[must_use]
pub fn expected_faulty_bits(
    cell: &Bitcell8T,
    v: Millivolts,
    budget: Picoseconds,
    bits: u64,
) -> f64 {
    cell_fail_probability(cell, v, budget) * bits as f64
}

/// Probability that a `bits_per_line`-bit cache line contains at least one
/// faulty cell: `1 − (1 − p)^bits`.
#[must_use]
pub fn line_fail_probability(
    cell: &Bitcell8T,
    v: Millivolts,
    budget: Picoseconds,
    bits_per_line: u32,
) -> f64 {
    let p = cell_fail_probability(cell, v, budget);
    // ln1p-based form is stable for tiny p and large exponents.
    1.0 - (f64::from(bits_per_line) * (-p).ln_1p()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::voltage::mv;

    #[test]
    fn erfc_reference_values() {
        // Reference values from Abramowitz & Stegun tables.
        let cases = [
            (0.0, 1.0),
            (0.5, 0.479_500_12),
            (1.0, 0.157_299_21),
            (2.0, 0.004_677_73),
            (3.0, 2.209_049_7e-5),
        ];
        for (x, want) in cases {
            let got = erfc(x);
            assert!(
                (got - want).abs() / want.max(1e-30) < 1e-5,
                "erfc({x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn erfc_negative_symmetry() {
        for x in [0.25, 1.0, 2.5] {
            assert!((erfc(-x) - (2.0 - erfc(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn erf_complements_erfc() {
        for x in [-2.0, -0.5, 0.0, 0.7, 3.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_tail_reference_values() {
        // Φ̄(1.96) ≈ 0.025; Φ̄(3) ≈ 1.3499e-3; Φ̄(6) ≈ 9.866e-10.
        assert!((normal_tail(1.96) - 0.024_998).abs() < 1e-4);
        assert!((normal_tail(3.0) - 1.349_9e-3).abs() < 1e-5);
        let p6 = normal_tail(6.0);
        assert!((p6 - 9.866e-10).abs() / 9.866e-10 < 1e-2);
        // erfc carries ~1e-7 relative error, so the CDF at 0 is not exact.
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn critical_sigma_recovers_six_sigma_by_construction() {
        let cell = Bitcell8T::silverthorne_45nm();
        for v in [400, 500, 600] {
            let k = critical_sigma(&cell, mv(v), cell.write_delay(mv(v)));
            assert!((k - 6.0).abs() < 1e-6, "at {v} mV, got {k}");
        }
    }

    #[test]
    fn fail_probability_monotone_in_budget() {
        let cell = Bitcell8T::silverthorne_45nm();
        let v = mv(450);
        let full = cell.write_delay(v);
        let p_tight = cell_fail_probability(&cell, v, full * 0.5);
        let p_exact = cell_fail_probability(&cell, v, full);
        let p_loose = cell_fail_probability(&cell, v, full * 2.0);
        assert!(p_tight > p_exact);
        assert!(p_exact > p_loose);
        // 6σ budget → ~1e-9 failures per cell, the paper's margin.
        assert!(p_exact > 1e-10 && p_exact < 1e-8);
    }

    #[test]
    fn saturated_budgets_clamp() {
        let cell = Bitcell8T::silverthorne_45nm();
        let v = mv(500);
        assert!(cell_fail_probability(&cell, v, Picoseconds::new(1e-3)) > 0.999);
        assert!(cell_fail_probability(&cell, v, Picoseconds::new(1e9)) < 1e-15);
    }

    #[test]
    fn line_fail_probability_scales_with_width() {
        let cell = Bitcell8T::silverthorne_45nm();
        let v = mv(450);
        // Budget at the 4σ cell's delay → p_cell = Φ̄(4) ≈ 3.17e-5.
        let budget = cell.write_delay_at_sigma(v, 4.0);
        let p_cell = cell_fail_probability(&cell, v, budget);
        assert!((p_cell - normal_tail(4.0)).abs() / normal_tail(4.0) < 1e-3);
        let p_line = line_fail_probability(&cell, v, budget, 512);
        // For small p: p_line ≈ 512 · p_cell.
        assert!((p_line / (512.0 * p_cell) - 1.0).abs() < 0.02);
        assert!(expected_faulty_bits(&cell, v, budget, 1_000_000) > 1.0);
    }

    #[test]
    fn vth_variation_accessors() {
        let var = VthVariation::new(330.0, 25.0);
        assert_eq!(var.nominal_mv(), 330.0);
        assert_eq!(var.sigma_mv(), 25.0);
        assert_eq!(var.vth_at_sigma(-2.0), 280.0);
    }

    #[test]
    #[should_panic]
    fn vth_variation_rejects_nonpositive() {
        let _ = VthVariation::new(0.0, 20.0);
    }
}
