//! Fully-associative TLBs (ITLB, DTLB) with LRU replacement.
//!
//! TLBs are among the paper's "infrequently written cache-like blocks": a
//! fill happens only on a TLB miss, so IRAW avoidance simply stalls the
//! port for `N` cycles after each fill (paper §4.3).

/// Page size: 4 KiB.
pub const PAGE_SHIFT: u32 = 12;

/// Translation statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TlbStats {
    /// Lookups performed.
    pub accesses: u64,
    /// Lookup hits.
    pub hits: u64,
    /// Misses (page walks).
    pub misses: u64,
}

impl TlbStats {
    /// Miss ratio (0 when unused).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A fully-associative TLB.
///
/// ```
/// use lowvcc_uarch::tlb::Tlb;
///
/// let mut tlb = Tlb::new(16);
/// let addr = 0xAB12_3000u64; // page-aligned
/// assert!(!tlb.access(addr)); // cold miss
/// tlb.fill(addr);
/// assert!(tlb.access(addr));
/// assert!(tlb.access(addr + 0xFFF)); // same page
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tlb {
    entries: Vec<Option<(u64, u64)>>, // (vpn, last_use)
    /// Slot of the most recent hit: page locality makes the next access
    /// overwhelmingly likely to land there, turning the linear scan into
    /// an O(1) probe on the hot path.
    mru: usize,
    clock: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "TLB needs at least one entry");
        Self {
            entries: vec![None; entries],
            mru: 0,
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Virtual page number of an address.
    #[must_use]
    pub fn vpn(addr: u64) -> u64 {
        addr >> PAGE_SHIFT
    }

    /// Looks up the page of `addr`; returns whether it hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let vpn = Self::vpn(addr);
        if let Some(entry) = &mut self.entries[self.mru] {
            if entry.0 == vpn {
                entry.1 = self.clock;
                self.stats.hits += 1;
                return true;
            }
        }
        for (idx, entry) in self.entries.iter_mut().enumerate() {
            if let Some(entry) = entry {
                if entry.0 == vpn {
                    entry.1 = self.clock;
                    self.mru = idx;
                    self.stats.hits += 1;
                    return true;
                }
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Installs the page of `addr`, evicting the LRU entry if full.
    pub fn fill(&mut self, addr: u64) {
        self.clock += 1;
        let vpn = Self::vpn(addr);
        if self
            .entries
            .iter()
            .flatten()
            .any(|&(existing, _)| existing == vpn)
        {
            return;
        }
        let slot = if let Some(idx) = self.entries.iter().position(Option::is_none) {
            idx
        } else {
            self.entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.map(|(_, t)| t).unwrap_or(0))
                .map(|(i, _)| i)
                .expect("TLB non-empty")
        };
        self.entries[slot] = Some((vpn, self.clock));
    }

    /// Flushes all translations.
    pub fn flush(&mut self) {
        for e in &mut self.entries {
            *e = None;
        }
    }

    /// Restores the freshly-constructed state in place: translations,
    /// MRU slot, clock and statistics (unlike [`Tlb::flush`], which only
    /// drops translations). No allocation.
    pub fn reset(&mut self) {
        self.flush();
        self.mru = 0;
        self.clock = 0;
        self.stats = TlbStats::default();
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> TlbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_are_4k() {
        assert_eq!(Tlb::vpn(0x0000), Tlb::vpn(0x0FFF));
        assert_ne!(Tlb::vpn(0x0FFF), Tlb::vpn(0x1000));
    }

    #[test]
    fn lru_eviction_when_full() {
        let mut tlb = Tlb::new(2);
        tlb.fill(0x1000);
        tlb.fill(0x2000);
        assert!(tlb.access(0x1000)); // touch page 1: page 2 becomes LRU
        tlb.fill(0x3000);
        assert!(tlb.access(0x1000));
        assert!(!tlb.access(0x2000), "LRU page must have been evicted");
        assert!(tlb.access(0x3000));
    }

    #[test]
    fn duplicate_fill_is_idempotent() {
        let mut tlb = Tlb::new(2);
        tlb.fill(0x1000);
        tlb.fill(0x1000);
        tlb.fill(0x2000);
        assert!(tlb.access(0x1000));
        assert!(tlb.access(0x2000));
    }

    #[test]
    fn stats_track_miss_ratio() {
        let mut tlb = Tlb::new(4);
        assert!(!tlb.access(0x5000));
        tlb.fill(0x5000);
        assert!(tlb.access(0x5000));
        assert!(tlb.access(0x5800));
        let s = tlb.stats();
        assert_eq!((s.accesses, s.hits, s.misses), (3, 2, 1));
        assert!((s.miss_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn flush_clears_translations() {
        let mut tlb = Tlb::new(2);
        tlb.fill(0x1000);
        tlb.flush();
        assert!(!tlb.access(0x1000));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = Tlb::new(0);
    }
}
