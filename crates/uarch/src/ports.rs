//! Port arbitration: busy-until reservations with stall accounting.

/// A single structural port.
///
/// ```
/// use lowvcc_uarch::ports::Port;
///
/// let mut p = Port::new();
/// assert!(p.try_reserve(10, 3)); // busy for cycles 10, 11, 12
/// assert!(!p.try_reserve(12, 1));
/// assert!(p.try_reserve(13, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Port {
    busy_until: u64, // first free cycle
    grants: u64,
    conflicts: u64,
}

impl Port {
    /// Creates a free port.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the port is busy at `cycle`.
    #[must_use]
    pub fn is_busy(&self, cycle: u64) -> bool {
        cycle < self.busy_until
    }

    /// Reserves the port for `cycles` starting at `cycle` if free.
    pub fn try_reserve(&mut self, cycle: u64, cycles: u64) -> bool {
        if self.is_busy(cycle) {
            self.conflicts += 1;
            return false;
        }
        self.busy_until = cycle + cycles;
        self.grants += 1;
        true
    }

    /// First cycle at which the port is free.
    #[must_use]
    pub fn free_at(&self) -> u64 {
        self.busy_until
    }

    /// Successful reservations.
    #[must_use]
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Rejected reservations (structural-hazard stalls).
    #[must_use]
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }
}

/// A bank of identical ports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortSet {
    ports: Vec<Port>,
}

impl PortSet {
    /// Creates `count` free ports.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    #[must_use]
    pub fn new(count: usize) -> Self {
        assert!(count > 0, "need at least one port");
        Self {
            ports: vec![Port::new(); count],
        }
    }

    /// Number of ports.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ports.len()
    }

    /// Whether the set is empty (never true after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ports.is_empty()
    }

    /// Reserves any free port for `cycles` starting at `cycle`.
    pub fn try_reserve(&mut self, cycle: u64, cycles: u64) -> bool {
        for p in &mut self.ports {
            if !p.is_busy(cycle) {
                return p.try_reserve(cycle, cycles);
            }
        }
        false
    }

    /// Free ports at `cycle`.
    #[must_use]
    pub fn free_count(&self, cycle: u64) -> usize {
        self.ports.iter().filter(|p| !p.is_busy(cycle)).count()
    }

    /// Earliest cycle at which any port is (or becomes) free — the wake-up
    /// bound for a caller blocked on an all-busy set.
    #[must_use]
    pub fn earliest_free(&self) -> u64 {
        self.ports.iter().map(Port::free_at).min().unwrap_or(0)
    }

    /// Restores the freshly-constructed state in place: every port free
    /// with zeroed grant/conflict counters. No allocation.
    pub fn reset(&mut self) {
        for p in &mut self.ports {
            *p = Port::new();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservation_blocks_until_released() {
        let mut p = Port::new();
        assert!(p.try_reserve(0, 2));
        assert!(p.is_busy(0));
        assert!(p.is_busy(1));
        assert!(!p.is_busy(2));
        assert_eq!(p.free_at(), 2);
    }

    #[test]
    fn conflicts_counted() {
        let mut p = Port::new();
        assert!(p.try_reserve(0, 5));
        assert!(!p.try_reserve(3, 1));
        assert_eq!(p.grants(), 1);
        assert_eq!(p.conflicts(), 1);
    }

    #[test]
    fn port_set_spreads_load() {
        let mut set = PortSet::new(2);
        assert_eq!(set.free_count(0), 2);
        assert!(set.try_reserve(0, 4));
        assert!(set.try_reserve(0, 4));
        assert!(!set.try_reserve(0, 1), "both busy");
        assert_eq!(set.free_count(0), 0);
        assert!(set.try_reserve(4, 1));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn earliest_free_is_the_unblock_cycle() {
        let mut set = PortSet::new(2);
        assert_eq!(set.earliest_free(), 0);
        assert!(set.try_reserve(0, 4));
        assert!(set.try_reserve(0, 7));
        assert_eq!(set.earliest_free(), 4);
        assert_eq!(set.free_count(set.earliest_free()), 1);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn empty_port_set_rejected() {
        let _ = PortSet::new(0);
    }
}
