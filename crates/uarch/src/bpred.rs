//! Branch predictors and the IRAW corruption tracker (paper §4.5).
//!
//! The BP is a *prediction-only* block: the paper lets reads hit
//! not-yet-stabilized entries freely, because a corrupted counter can only
//! mispredict, never break correctness. Two things still matter:
//!
//! * only updates that **flip a counter's uppermost bit** can change a
//!   prediction, and only reads arriving within `N` cycles of such a
//!   write can observe a half-flipped cell — [`CorruptionTracker`]
//!   measures this (the paper reports a negligible 0.0017% potential
//!   extra misprediction rate);
//! * testing determinism (Table 1) — tracked as the same statistic.

/// Result of a predictor update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateEffect {
    /// Table index written.
    pub index: usize,
    /// Whether the counter's uppermost (direction) bit flipped.
    pub msb_flipped: bool,
}

/// A direction predictor.
pub trait BranchPredictor {
    /// Predicts the direction of the branch at `pc` and returns the table
    /// index consulted.
    fn predict(&mut self, pc: u64) -> (bool, usize);
    /// Trains with the resolved direction.
    fn update(&mut self, pc: u64, taken: bool) -> UpdateEffect;
    /// Number of table entries.
    fn table_size(&self) -> usize;
}

fn saturating_update(counter: u8, taken: bool) -> u8 {
    if taken {
        (counter + 1).min(3)
    } else {
        counter.saturating_sub(1)
    }
}

/// Bimodal predictor: a table of 2-bit saturating counters indexed by pc.
///
/// ```
/// use lowvcc_uarch::bpred::{Bimodal, BranchPredictor};
///
/// let mut bp = Bimodal::new(1024);
/// for _ in 0..4 { bp.update(0x40, true); }
/// assert!(bp.predict(0x40).0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bimodal {
    counters: Vec<u8>,
    mask: usize,
}

impl Bimodal {
    /// Creates a predictor with `entries` counters (power of two),
    /// initialized weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a positive power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0 && entries.is_power_of_two());
        Self {
            counters: vec![1; entries],
            mask: entries - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (pc >> 2) as usize & self.mask
    }

    /// Restores the freshly-constructed state in place (all counters
    /// weakly not-taken). No allocation.
    pub fn reset(&mut self) {
        self.counters.fill(1);
    }
}

impl BranchPredictor for Bimodal {
    fn predict(&mut self, pc: u64) -> (bool, usize) {
        let idx = self.index(pc);
        (self.counters[idx] >= 2, idx)
    }

    fn update(&mut self, pc: u64, taken: bool) -> UpdateEffect {
        let idx = self.index(pc);
        let old = self.counters[idx];
        let new = saturating_update(old, taken);
        self.counters[idx] = new;
        UpdateEffect {
            index: idx,
            msb_flipped: (old >= 2) != (new >= 2),
        }
    }

    fn table_size(&self) -> usize {
        self.counters.len()
    }
}

/// Gshare predictor: counters indexed by `pc ⊕ global history`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gshare {
    counters: Vec<u8>,
    mask: usize,
    history: usize,
    history_bits: u32,
}

impl Gshare {
    /// Creates a gshare with `entries` counters and `history_bits` of
    /// global history.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a positive power of two and the history
    /// fits the index width.
    #[must_use]
    pub fn new(entries: usize, history_bits: u32) -> Self {
        assert!(entries > 0 && entries.is_power_of_two());
        assert!((1usize << history_bits) <= entries);
        Self {
            counters: vec![1; entries],
            mask: entries - 1,
            history: 0,
            history_bits,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize ^ self.history) & self.mask
    }

    /// Restores the freshly-constructed state in place (counters weakly
    /// not-taken, history cleared). No allocation.
    pub fn reset(&mut self) {
        self.counters.fill(1);
        self.history = 0;
    }
}

impl BranchPredictor for Gshare {
    fn predict(&mut self, pc: u64) -> (bool, usize) {
        let idx = self.index(pc);
        (self.counters[idx] >= 2, idx)
    }

    fn update(&mut self, pc: u64, taken: bool) -> UpdateEffect {
        let idx = self.index(pc);
        let old = self.counters[idx];
        let new = saturating_update(old, taken);
        self.counters[idx] = new;
        self.history =
            ((self.history << 1) | usize::from(taken)) & ((1usize << self.history_bits) - 1);
        UpdateEffect {
            index: idx,
            msb_flipped: (old >= 2) != (new >= 2),
        }
    }

    fn table_size(&self) -> usize {
        self.counters.len()
    }
}

/// Direct-mapped branch target buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Btb {
    entries: Vec<Option<(u64, u64)>>, // (pc tag, target)
    mask: usize,
}

impl Btb {
    /// Creates a BTB with `entries` slots (power of two).
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a positive power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0 && entries.is_power_of_two());
        Self {
            entries: vec![None; entries],
            mask: entries - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (pc >> 2) as usize & self.mask
    }

    /// Predicted target for the branch at `pc`, if any.
    #[must_use]
    pub fn predict(&self, pc: u64) -> Option<u64> {
        match self.entries[self.index(pc)] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Installs/updates the target of `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        let idx = self.index(pc);
        self.entries[idx] = Some((pc, target));
    }

    /// Restores the freshly-constructed (empty) state in place.
    pub fn reset(&mut self) {
        self.entries.fill(None);
    }
}

/// Tracks potential IRAW corruptions in prediction-only tables.
///
/// A read of entry `i` at cycle `c` is *potentially corrupted* when entry
/// `i` was written within the previous `N` cycles by an update that
/// flipped its direction bit (paper §4.5: "only those entries whose
/// uppermost bit is flipped could be corrupted").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptionTracker {
    last_flip_write: Vec<u64>,
    window: u64,
    reads: u64,
    potential: u64,
}

impl CorruptionTracker {
    /// Creates a tracker for a table of `entries` and an IRAW window of
    /// `n` cycles.
    #[must_use]
    pub fn new(entries: usize, n: u32) -> Self {
        Self {
            last_flip_write: vec![u64::MAX, u64::MAX]
                .into_iter()
                .cycle()
                .take(entries)
                .collect(),
            window: u64::from(n),
            reads: 0,
            potential: 0,
        }
    }

    /// Records an update; only MSB-flipping writes can corrupt.
    pub fn on_write(&mut self, effect: UpdateEffect, cycle: u64) {
        if effect.msb_flipped {
            self.last_flip_write[effect.index] = cycle;
        }
    }

    /// Records a read; returns whether it fell in a stabilization window.
    pub fn on_read(&mut self, index: usize, cycle: u64) -> bool {
        self.reads += 1;
        let last = self.last_flip_write[index];
        let conflict =
            last != u64::MAX && cycle.saturating_sub(last) <= self.window && cycle != last;
        if conflict {
            self.potential += 1;
        }
        conflict
    }

    /// Reconfigures the window at a Vcc change.
    pub fn set_window(&mut self, n: u32) {
        self.window = u64::from(n);
    }

    /// Restores the freshly-constructed state in place for a window of
    /// `n` cycles: write stamps and counters cleared. No allocation.
    pub fn reset(&mut self, n: u32) {
        self.last_flip_write.fill(u64::MAX);
        self.window = u64::from(n);
        self.reads = 0;
        self.potential = 0;
    }

    /// Reads observed.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Potentially corrupted reads.
    #[must_use]
    pub fn potential_corruptions(&self) -> u64 {
        self.potential
    }

    /// Potential corruption rate (the paper's 0.0017%-scale statistic).
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.potential as f64 / self.reads as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_learns_biased_branches() {
        let mut bp = Bimodal::new(256);
        for _ in 0..8 {
            bp.update(0x100, true);
        }
        assert!(bp.predict(0x100).0);
        for _ in 0..8 {
            bp.update(0x100, false);
        }
        assert!(!bp.predict(0x100).0);
    }

    #[test]
    fn counters_saturate() {
        assert_eq!(saturating_update(3, true), 3);
        assert_eq!(saturating_update(0, false), 0);
        assert_eq!(saturating_update(1, true), 2);
        assert_eq!(saturating_update(2, false), 1);
    }

    #[test]
    fn msb_flip_reported_exactly_at_threshold() {
        let mut bp = Bimodal::new(64);
        // From init (1, weakly NT): taken → 2 flips the direction bit.
        let e1 = bp.update(0x40, true);
        assert!(e1.msb_flipped);
        // 2 → 3: no flip.
        let e2 = bp.update(0x40, true);
        assert!(!e2.msb_flipped);
        // 3 → 2: no flip; 2 → 1: flip.
        assert!(!bp.update(0x40, false).msb_flipped);
        assert!(bp.update(0x40, false).msb_flipped);
    }

    #[test]
    fn bimodal_aliases_by_index_mask() {
        let mut bp = Bimodal::new(16);
        let (_, i1) = bp.predict(0x40);
        let (_, i2) = bp.predict(0x40 + 16 * 4); // same index after masking
        assert_eq!(i1, i2);
    }

    #[test]
    fn gshare_distinguishes_history_contexts() {
        let mut bp = Gshare::new(1024, 8);
        // Alternating pattern TNTN… at one pc: bimodal would stay ~50%,
        // gshare learns it once history separates the contexts.
        let mut correct = 0;
        let total = 400;
        for i in 0..total {
            let taken = i % 2 == 0;
            let (pred, _) = bp.predict(0x80);
            if pred == taken {
                correct += 1;
            }
            bp.update(0x80, taken);
        }
        assert!(
            correct * 100 / total > 80,
            "gshare should learn alternation ({correct}/{total})"
        );
    }

    #[test]
    fn btb_round_trip_and_capacity_conflicts() {
        let mut btb = Btb::new(16);
        assert_eq!(btb.predict(0x100), None);
        btb.update(0x100, 0x2000);
        assert_eq!(btb.predict(0x100), Some(0x2000));
        // An aliasing pc evicts (direct-mapped, tag mismatch → None).
        btb.update(0x100 + 16 * 4, 0x3000);
        assert_eq!(btb.predict(0x100), None);
    }

    #[test]
    fn corruption_tracker_counts_window_reads() {
        let mut t = CorruptionTracker::new(64, 1);
        let flip = UpdateEffect {
            index: 5,
            msb_flipped: true,
        };
        t.on_write(flip, 100);
        assert!(t.on_read(5, 101), "read 1 cycle after flip-write");
        assert!(!t.on_read(5, 103), "outside the window");
        assert!(!t.on_read(6, 101), "different entry");
        // Non-flipping writes never arm the tracker.
        let benign = UpdateEffect {
            index: 7,
            msb_flipped: false,
        };
        t.on_write(benign, 200);
        assert!(!t.on_read(7, 201));
        assert_eq!(t.potential_corruptions(), 1);
        assert_eq!(t.reads(), 4);
        assert!((t.rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn corruption_tracker_window_reconfigures() {
        let mut t = CorruptionTracker::new(8, 2);
        t.on_write(
            UpdateEffect {
                index: 0,
                msb_flipped: true,
            },
            10,
        );
        assert!(t.on_read(0, 12));
        t.set_window(1);
        t.on_write(
            UpdateEffect {
                index: 0,
                msb_flipped: true,
            },
            20,
        );
        assert!(!t.on_read(0, 22));
    }

    #[test]
    fn fresh_tracker_reports_zero_rate() {
        let t = CorruptionTracker::new(8, 1);
        assert_eq!(t.rate(), 0.0);
    }
}
