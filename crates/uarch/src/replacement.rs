//! Cache replacement policies.

use lowvcc_trace::SimRng;

/// What the victim selector is allowed to see about one way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WayView {
    /// Whether the way holds a valid line.
    pub valid: bool,
    /// Whether the way is disabled (Faulty Bits mapped it out).
    pub disabled: bool,
    /// Last-use stamp (bigger = more recent).
    pub last_use: u64,
}

/// Replacement policy of a set-associative structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Evict the least-recently-used way.
    Lru,
    /// Rotate through the ways.
    RoundRobin,
    /// Pseudo-random way selection.
    Random,
}

/// Per-cache mutable state a policy needs (round-robin cursors, RNG).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyState {
    policy: Policy,
    cursors: Vec<usize>,
    rng: SimRng,
    seed: u64,
}

impl PolicyState {
    /// Creates state for `sets` sets under `policy`.
    #[must_use]
    pub fn new(policy: Policy, sets: usize, seed: u64) -> Self {
        Self {
            policy,
            cursors: vec![0; sets],
            rng: SimRng::seed_from(seed),
            seed,
        }
    }

    /// The policy in force.
    #[must_use]
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Restores the freshly-constructed state in place: cursors rewound,
    /// RNG reseeded from the construction seed. No allocation.
    pub fn reset(&mut self) {
        self.cursors.fill(0);
        self.rng = SimRng::seed_from(self.seed);
    }

    /// Picks the victim way for a fill into `set`.
    ///
    /// Invalid enabled ways are always preferred; among valid ways the
    /// policy decides. Returns `None` when every way is disabled.
    ///
    /// Allocation-free: candidate enumeration walks `ways` directly
    /// (fills run every cycle in miss-heavy phases, so this sits on the
    /// simulator's steady-state hot path).
    pub fn select_victim(&mut self, set: usize, ways: &[WayView]) -> Option<usize> {
        // Free way first.
        if let Some(idx) = ways.iter().position(|w| !w.disabled && !w.valid) {
            return Some(idx);
        }
        let enabled = ways.iter().filter(|w| !w.disabled).count();
        if enabled == 0 {
            return None;
        }
        // The k-th enabled way, in way order — the same indexing the old
        // materialized candidate list gave.
        let nth_enabled = |k: usize| -> usize {
            ways.iter()
                .enumerate()
                .filter(|(_, w)| !w.disabled)
                .nth(k)
                .map(|(i, _)| i)
                .expect("k < enabled count")
        };
        let pick = match self.policy {
            Policy::Lru => {
                // First-minimal over enabled ways (min_by_key semantics).
                let mut best = usize::MAX;
                let mut best_use = u64::MAX;
                for (i, w) in ways.iter().enumerate() {
                    if !w.disabled && (best == usize::MAX || w.last_use < best_use) {
                        best = i;
                        best_use = w.last_use;
                    }
                }
                best
            }
            Policy::RoundRobin => {
                let cursor = &mut self.cursors[set];
                let pick = nth_enabled(*cursor % enabled);
                *cursor = (*cursor + 1) % enabled;
                pick
            }
            Policy::Random => nth_enabled(self.rng.below(enabled as u64) as usize),
        };
        Some(pick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn way(valid: bool, disabled: bool, last_use: u64) -> WayView {
        WayView {
            valid,
            disabled,
            last_use,
        }
    }

    #[test]
    fn invalid_way_preferred_by_all_policies() {
        for policy in [Policy::Lru, Policy::RoundRobin, Policy::Random] {
            let mut st = PolicyState::new(policy, 1, 0);
            let ways = [
                way(true, false, 10),
                way(false, false, 0),
                way(true, false, 5),
            ];
            assert_eq!(st.select_victim(0, &ways), Some(1), "{policy:?}");
        }
    }

    #[test]
    fn lru_picks_least_recent() {
        let mut st = PolicyState::new(Policy::Lru, 1, 0);
        let ways = [
            way(true, false, 30),
            way(true, false, 10),
            way(true, false, 20),
        ];
        assert_eq!(st.select_victim(0, &ways), Some(1));
    }

    #[test]
    fn disabled_ways_never_chosen() {
        let mut st = PolicyState::new(Policy::Lru, 1, 0);
        let ways = [way(true, true, 0), way(true, false, 99)];
        assert_eq!(st.select_victim(0, &ways), Some(1));
        let all_disabled = [way(true, true, 0), way(false, true, 0)];
        assert_eq!(st.select_victim(0, &all_disabled), None);
    }

    #[test]
    fn round_robin_rotates_per_set() {
        let mut st = PolicyState::new(Policy::RoundRobin, 2, 0);
        let ways = [
            way(true, false, 0),
            way(true, false, 0),
            way(true, false, 0),
        ];
        let picks: Vec<_> = (0..4)
            .map(|_| st.select_victim(0, &ways).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0]);
        // Set 1 has an independent cursor.
        assert_eq!(st.select_victim(1, &ways), Some(0));
    }

    /// The pre-rewrite selector, kept verbatim as the behavioral oracle
    /// for the allocation-free version.
    fn reference_select(
        policy: Policy,
        cursor: &mut usize,
        rng: &mut SimRng,
        ways: &[WayView],
    ) -> Option<usize> {
        if let Some(idx) = ways.iter().position(|w| !w.disabled && !w.valid) {
            return Some(idx);
        }
        let candidates: Vec<usize> = ways
            .iter()
            .enumerate()
            .filter(|(_, w)| !w.disabled)
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        Some(match policy {
            Policy::Lru => candidates
                .iter()
                .copied()
                .min_by_key(|&i| ways[i].last_use)
                .unwrap(),
            Policy::RoundRobin => {
                let pick = candidates[*cursor % candidates.len()];
                *cursor = (*cursor + 1) % candidates.len();
                pick
            }
            Policy::Random => candidates[rng.below(candidates.len() as u64) as usize],
        })
    }

    #[test]
    fn allocation_free_selector_matches_reference() {
        for policy in [Policy::Lru, Policy::RoundRobin, Policy::Random] {
            let mut st = PolicyState::new(policy, 1, 42);
            let mut ref_cursor = 0usize;
            let mut ref_rng = SimRng::seed_from(42);
            let mut pattern_rng = SimRng::seed_from(7);
            for round in 0..500 {
                let ways: Vec<WayView> = (0..8)
                    .map(|_| WayView {
                        valid: pattern_rng.below(4) != 0,
                        disabled: pattern_rng.below(5) == 0,
                        last_use: pattern_rng.below(64),
                    })
                    .collect();
                assert_eq!(
                    st.select_victim(0, &ways),
                    reference_select(policy, &mut ref_cursor, &mut ref_rng, &ways),
                    "{policy:?} diverged at round {round}"
                );
            }
        }
    }

    #[test]
    fn reset_rewinds_cursors_and_rng() {
        let ways = [
            way(true, false, 0),
            way(true, false, 0),
            way(true, false, 0),
        ];
        for policy in [Policy::RoundRobin, Policy::Random] {
            let mut st = PolicyState::new(policy, 2, 9);
            let first: Vec<_> = (0..6).map(|_| st.select_victim(0, &ways)).collect();
            st.reset();
            let second: Vec<_> = (0..6).map(|_| st.select_victim(0, &ways)).collect();
            assert_eq!(first, second, "{policy:?}");
            st.reset();
            assert_eq!(st, PolicyState::new(policy, 2, 9));
        }
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let ways = [
            way(true, false, 0),
            way(true, false, 0),
            way(true, false, 0),
        ];
        let mut a = PolicyState::new(Policy::Random, 1, 42);
        let mut b = PolicyState::new(Policy::Random, 1, 42);
        for _ in 0..20 {
            let va = a.select_victim(0, &ways).unwrap();
            assert_eq!(Some(va), b.select_victim(0, &ways));
            assert!(va < 3);
        }
    }
}
