//! Cache replacement policies.

use lowvcc_trace::SimRng;

/// What the victim selector is allowed to see about one way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WayView {
    /// Whether the way holds a valid line.
    pub valid: bool,
    /// Whether the way is disabled (Faulty Bits mapped it out).
    pub disabled: bool,
    /// Last-use stamp (bigger = more recent).
    pub last_use: u64,
}

/// Replacement policy of a set-associative structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Evict the least-recently-used way.
    Lru,
    /// Rotate through the ways.
    RoundRobin,
    /// Pseudo-random way selection.
    Random,
}

/// Per-cache mutable state a policy needs (round-robin cursors, RNG).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyState {
    policy: Policy,
    cursors: Vec<usize>,
    rng: SimRng,
}

impl PolicyState {
    /// Creates state for `sets` sets under `policy`.
    #[must_use]
    pub fn new(policy: Policy, sets: usize, seed: u64) -> Self {
        Self {
            policy,
            cursors: vec![0; sets],
            rng: SimRng::seed_from(seed),
        }
    }

    /// The policy in force.
    #[must_use]
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Picks the victim way for a fill into `set`.
    ///
    /// Invalid enabled ways are always preferred; among valid ways the
    /// policy decides. Returns `None` when every way is disabled.
    pub fn select_victim(&mut self, set: usize, ways: &[WayView]) -> Option<usize> {
        // Free way first.
        if let Some(idx) = ways.iter().position(|w| !w.disabled && !w.valid) {
            return Some(idx);
        }
        let candidates: Vec<usize> = ways
            .iter()
            .enumerate()
            .filter(|(_, w)| !w.disabled)
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let pick = match self.policy {
            Policy::Lru => candidates
                .iter()
                .copied()
                .min_by_key(|&i| ways[i].last_use)
                .expect("candidates non-empty"),
            Policy::RoundRobin => {
                let cursor = &mut self.cursors[set];
                let pick = candidates[*cursor % candidates.len()];
                *cursor = (*cursor + 1) % candidates.len();
                pick
            }
            Policy::Random => candidates[self.rng.below(candidates.len() as u64) as usize],
        };
        Some(pick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn way(valid: bool, disabled: bool, last_use: u64) -> WayView {
        WayView {
            valid,
            disabled,
            last_use,
        }
    }

    #[test]
    fn invalid_way_preferred_by_all_policies() {
        for policy in [Policy::Lru, Policy::RoundRobin, Policy::Random] {
            let mut st = PolicyState::new(policy, 1, 0);
            let ways = [
                way(true, false, 10),
                way(false, false, 0),
                way(true, false, 5),
            ];
            assert_eq!(st.select_victim(0, &ways), Some(1), "{policy:?}");
        }
    }

    #[test]
    fn lru_picks_least_recent() {
        let mut st = PolicyState::new(Policy::Lru, 1, 0);
        let ways = [
            way(true, false, 30),
            way(true, false, 10),
            way(true, false, 20),
        ];
        assert_eq!(st.select_victim(0, &ways), Some(1));
    }

    #[test]
    fn disabled_ways_never_chosen() {
        let mut st = PolicyState::new(Policy::Lru, 1, 0);
        let ways = [way(true, true, 0), way(true, false, 99)];
        assert_eq!(st.select_victim(0, &ways), Some(1));
        let all_disabled = [way(true, true, 0), way(false, true, 0)];
        assert_eq!(st.select_victim(0, &all_disabled), None);
    }

    #[test]
    fn round_robin_rotates_per_set() {
        let mut st = PolicyState::new(Policy::RoundRobin, 2, 0);
        let ways = [
            way(true, false, 0),
            way(true, false, 0),
            way(true, false, 0),
        ];
        let picks: Vec<_> = (0..4)
            .map(|_| st.select_victim(0, &ways).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0]);
        // Set 1 has an independent cursor.
        assert_eq!(st.select_victim(1, &ways), Some(0));
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let ways = [
            way(true, false, 0),
            way(true, false, 0),
            way(true, false, 0),
        ];
        let mut a = PolicyState::new(Policy::Random, 1, 42);
        let mut b = PolicyState::new(Policy::Random, 1, 42);
        for _ in 0..20 {
            let va = a.select_victim(0, &ways).unwrap();
            assert_eq!(Some(va), b.select_victim(0, &ways));
            assert!(va < 3);
        }
    }
}
