//! Store Table (STable) — IRAW avoidance for the DL0 (paper §4.4,
//! Figure 10).
//!
//! Stores write the DL0 data array with interrupted writes, so for `N`
//! cycles the written cells are unreadable — and because every way of a
//! set is read on any access to that set, *any* load touching the set
//! could both read garbage and destroy the stabilizing cells. The STable
//! is a tiny latch-built table holding the address and data of the last
//! `stores/cycle × N` stores. Loads probe it in parallel with the DL0:
//!
//! * **no match** (common case) — nothing happens;
//! * **full address match** — the STable forwards the data; then accesses
//!   stall and the matching stores are replayed from the oldest onwards;
//! * **set-only match** — DL0 data is used, but the stabilizing line may
//!   have been destroyed, so the same stall + replay repair runs.
//!
//! Entries are replaced round-robin so the just-stabilized entry is always
//! the one overwritten; on cycles without a committing store the slot is
//! invalidated instead (paper's update rule).

/// A store tracked by the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackedStore {
    /// Byte address of the store.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u8,
    /// DL0 set index of the store (precomputed by the cache owner).
    pub set: u64,
}

/// Outcome of a load probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StableMatch {
    /// No conflict: proceed normally (the overwhelmingly common case).
    None,
    /// The load reads recently stored data: STable forwards it, then the
    /// repair sequence replays `replay_stores` stores.
    Full {
        /// Stores to replay, from the oldest matching entry onwards.
        replay_stores: u32,
    },
    /// The load touches the same DL0 set as a stabilizing store: DL0
    /// provides the data, and the repair replays `replay_stores` stores.
    SetOnly {
        /// Stores to replay, from the oldest matching entry onwards.
        replay_stores: u32,
    },
}

impl StableMatch {
    /// Whether this outcome triggers the stall + replay repair.
    #[must_use]
    pub fn needs_repair(self) -> bool {
        !matches!(self, Self::None)
    }

    /// Stores replayed by the repair (0 when no repair).
    #[must_use]
    pub fn replay_stores(self) -> u32 {
        match self {
            Self::None => 0,
            Self::Full { replay_stores } | Self::SetOnly { replay_stores } => replay_stores,
        }
    }
}

/// Cumulative STable statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StableStats {
    /// Loads probed against the table.
    pub probes: u64,
    /// Full-address matches (store-to-load forwards + repair).
    pub full_matches: u64,
    /// Set-only matches (repair only).
    pub set_matches: u64,
    /// Total stores replayed by repairs.
    pub stores_replayed: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    store: TrackedStore,
    /// Insertion order stamp for oldest-first replay.
    age: u64,
}

/// The Store Table.
///
/// ```
/// use lowvcc_uarch::stable::{StableMatch, StoreTable, TrackedStore};
///
/// let mut st = StoreTable::new(2);
/// st.reconfigure(1); // N = 1, one store per cycle
/// st.cycle_update(Some(TrackedStore { addr: 0x100, size: 8, set: 4 }));
/// // A load of the same address in the next cycle: full match.
/// let m = st.probe(0x100, 8, 4);
/// assert!(matches!(m, StableMatch::Full { .. }));
/// // A load of a different address in the same set: set-only match.
/// let m = st.probe(0x2100, 8, 4);
/// assert!(matches!(m, StableMatch::SetOnly { .. }));
/// // Any other set: no conflict.
/// assert_eq!(st.probe(0x300, 8, 5), StableMatch::None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreTable {
    slots: Vec<Option<Slot>>,
    enabled: usize,
    cursor: usize,
    next_age: u64,
    stats: StableStats,
}

impl StoreTable {
    /// Creates a table with `max_entries` physical entries (sized for the
    /// largest `N` the Vcc range may require; paper: `stores/cycle × N`).
    ///
    /// # Panics
    ///
    /// Panics if `max_entries` is zero.
    #[must_use]
    pub fn new(max_entries: usize) -> Self {
        assert!(max_entries > 0, "store table needs at least one entry");
        Self {
            slots: vec![None; max_entries],
            enabled: max_entries,
            cursor: 0,
            next_age: 0,
            stats: StableStats::default(),
        }
    }

    /// Number of physical entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of currently enabled entries.
    #[must_use]
    pub fn enabled_entries(&self) -> usize {
        self.enabled
    }

    /// Reconfigures for a new Vcc level: only `enabled` entries are
    /// checked (as many as IRAW cycles); the rest are disabled and cleared
    /// (paper §4.4). `enabled == 0` turns the mechanism off.
    pub fn reconfigure(&mut self, enabled: usize) {
        let enabled = enabled.min(self.slots.len());
        self.enabled = enabled;
        for slot in &mut self.slots[enabled..] {
            *slot = None;
        }
        if self.cursor >= enabled.max(1) {
            self.cursor = 0;
        }
    }

    /// Per-cycle update: the round-robin slot receives the committing
    /// store, or is invalidated when no store commits this cycle.
    pub fn cycle_update(&mut self, store: Option<TrackedStore>) {
        if self.enabled == 0 {
            return;
        }
        self.slots[self.cursor] = store.map(|s| {
            self.next_age += 1;
            Slot {
                store: s,
                age: self.next_age,
            }
        });
        self.cursor = (self.cursor + 1) % self.enabled;
    }

    /// Advances `cycles` store-less cycles at once — equivalent to that
    /// many [`StoreTable::cycle_update`]`(None)` calls, but O(entries):
    /// the round-robin cursor sweeps forward invalidating the slots it
    /// passes (all of them once `cycles` covers a full lap). Used by the
    /// engine's cycle-skipping fast path, which only skips cycles in which
    /// no store can commit.
    pub fn advance_idle(&mut self, cycles: u64) {
        if self.enabled == 0 || cycles == 0 {
            return;
        }
        let n = self.enabled as u64;
        if cycles >= n {
            for slot in &mut self.slots[..self.enabled] {
                *slot = None;
            }
        } else {
            for _ in 0..cycles {
                self.slots[self.cursor] = None;
                self.cursor = (self.cursor + 1) % self.enabled;
            }
            return;
        }
        self.cursor = ((self.cursor as u64 + cycles) % n) as usize;
    }

    /// Probes a load against the enabled entries.
    pub fn probe(&mut self, addr: u64, size: u8, set: u64) -> StableMatch {
        self.stats.probes += 1;
        if self.enabled == 0 {
            return StableMatch::None;
        }
        let mut oldest_match_age: Option<u64> = None;
        let mut full = false;
        for slot in self.slots[..self.enabled].iter().flatten() {
            let s = slot.store;
            let overlap = addr < s.addr + u64::from(s.size) && s.addr < addr + u64::from(size);
            let set_match = s.set == set;
            if overlap || set_match {
                oldest_match_age = Some(match oldest_match_age {
                    Some(a) => a.min(slot.age),
                    None => slot.age,
                });
            }
            full |= overlap;
        }
        let Some(oldest) = oldest_match_age else {
            return StableMatch::None;
        };
        // Replay from the oldest matching entry onwards: every valid entry
        // at least as young as it.
        let replay_stores = self.slots[..self.enabled]
            .iter()
            .flatten()
            .filter(|slot| slot.age >= oldest)
            .count() as u32;
        self.stats.stores_replayed += u64::from(replay_stores);
        if full {
            self.stats.full_matches += 1;
            StableMatch::Full { replay_stores }
        } else {
            self.stats.set_matches += 1;
            StableMatch::SetOnly { replay_stores }
        }
    }

    /// Clears all entries (pipeline flush / repair completion).
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.cursor = 0;
    }

    /// Restores the freshly-constructed state in place: entries, cursor,
    /// age stamps and statistics (unlike [`StoreTable::clear`], which
    /// keeps ages and stats). All physical entries re-enable; call
    /// [`StoreTable::reconfigure`] afterwards for the target Vcc.
    pub fn reset(&mut self) {
        self.clear();
        self.enabled = self.slots.len();
        self.next_age = 0;
        self.stats = StableStats::default();
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> StableStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(addr: u64, set: u64) -> TrackedStore {
        TrackedStore { addr, size: 8, set }
    }

    #[test]
    fn no_match_is_the_common_case() {
        let mut st = StoreTable::new(2);
        st.cycle_update(Some(store(0x1000, 3)));
        assert_eq!(st.probe(0x2000, 8, 7), StableMatch::None);
        assert_eq!(st.stats().probes, 1);
        assert_eq!(st.stats().full_matches, 0);
    }

    #[test]
    fn full_match_on_overlap() {
        let mut st = StoreTable::new(2);
        st.cycle_update(Some(store(0x1000, 3)));
        // Exact, partial-low and partial-high overlaps all count.
        assert!(st.probe(0x1000, 8, 3).needs_repair());
        assert!(matches!(st.probe(0x1004, 4, 3), StableMatch::Full { .. }));
        assert!(matches!(st.probe(0x0FFC, 8, 3), StableMatch::Full { .. }));
        // Adjacent but non-overlapping in the same set: set-only.
        assert!(matches!(
            st.probe(0x1008, 4, 3),
            StableMatch::SetOnly { .. }
        ));
    }

    #[test]
    fn set_only_match_catches_way_destruction() {
        // The paper's subtle case: a load of a *different* address in the
        // same set can destroy a stabilizing line because all ways are
        // read simultaneously.
        let mut st = StoreTable::new(2);
        st.cycle_update(Some(store(0x1000, 5)));
        let m = st.probe(0x9000, 8, 5);
        assert!(matches!(m, StableMatch::SetOnly { replay_stores: 1 }));
        assert_eq!(st.stats().set_matches, 1);
    }

    #[test]
    fn replay_counts_from_oldest_match() {
        let mut st = StoreTable::new(2);
        st.cycle_update(Some(store(0x1000, 5))); // older
        st.cycle_update(Some(store(0x2000, 9))); // younger
                                                 // Match the older entry: both must replay (oldest onwards).
        let m = st.probe(0x1000, 8, 5);
        assert_eq!(m.replay_stores(), 2);
        // Match only the younger: one replay.
        let m = st.probe(0x2000, 8, 9);
        assert_eq!(m.replay_stores(), 1);
        assert_eq!(st.stats().stores_replayed, 3);
    }

    #[test]
    fn round_robin_replaces_stabilized_entries() {
        let mut st = StoreTable::new(2);
        st.cycle_update(Some(store(0x1000, 1)));
        st.cycle_update(Some(store(0x2000, 2)));
        // Third store overwrites the slot of the first (just stabilized).
        st.cycle_update(Some(store(0x3000, 3)));
        assert_eq!(st.probe(0x1000, 8, 1), StableMatch::None);
        assert!(st.probe(0x2000, 8, 2).needs_repair());
        assert!(st.probe(0x3000, 8, 3).needs_repair());
    }

    #[test]
    fn idle_cycles_invalidate_slots() {
        let mut st = StoreTable::new(2);
        st.cycle_update(Some(store(0x1000, 1)));
        st.cycle_update(None);
        st.cycle_update(None); // wraps around, invalidating the store's slot
        assert_eq!(st.probe(0x1000, 8, 1), StableMatch::None);
    }

    #[test]
    fn advance_idle_matches_repeated_none_updates() {
        for idle in [0u64, 1, 2, 3, 7, 100] {
            let mut looped = StoreTable::new(2);
            let mut jumped = StoreTable::new(2);
            for st in [&mut looped, &mut jumped] {
                st.cycle_update(Some(store(0x1000, 1)));
            }
            for _ in 0..idle {
                looped.cycle_update(None);
            }
            jumped.advance_idle(idle);
            assert_eq!(looped, jumped, "idle {idle}");
            // And the next committing store lands in the same slot.
            looped.cycle_update(Some(store(0x2000, 2)));
            jumped.cycle_update(Some(store(0x2000, 2)));
            assert_eq!(looped, jumped, "idle {idle} + store");
        }
    }

    #[test]
    fn advance_idle_noop_when_disabled() {
        let mut st = StoreTable::new(2);
        st.reconfigure(0);
        st.advance_idle(10);
        assert_eq!(st.enabled_entries(), 0);
    }

    #[test]
    fn reconfigure_shrinks_and_disables() {
        let mut st = StoreTable::new(4);
        st.reconfigure(2);
        assert_eq!(st.enabled_entries(), 2);
        st.cycle_update(Some(store(0x1000, 1)));
        assert!(st.probe(0x1000, 8, 1).needs_repair());
        // Turning the mechanism off stops both tracking and matching.
        st.reconfigure(0);
        st.cycle_update(Some(store(0x2000, 2)));
        assert_eq!(st.probe(0x2000, 8, 2), StableMatch::None);
        // Re-enable beyond capacity clamps.
        st.reconfigure(99);
        assert_eq!(st.enabled_entries(), 4);
    }

    #[test]
    fn clear_removes_everything() {
        let mut st = StoreTable::new(2);
        st.cycle_update(Some(store(0x1000, 1)));
        st.clear();
        assert_eq!(st.probe(0x1000, 8, 1), StableMatch::None);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = StoreTable::new(0);
    }
}
