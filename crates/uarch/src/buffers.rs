//! Fill buffers, write-combining/eviction buffers, and post-fill stall
//! guards.
//!
//! The FB holds lines in flight from UL1/memory into the L0 caches; the
//! WCB/EB holds lines traveling the other way. Both are "infrequently
//! written cache-like blocks" (paper §4.3): after any fill completes, the
//! block's port is simply kept busy for `N` extra cycles so nothing can
//! read a stabilizing entry — that is [`StallGuard`].

/// Error returned when allocating into a full buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferFull;

impl std::fmt::Display for BufferFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("buffer is full")
    }
}

impl std::error::Error for BufferFull {}

/// A buffer of in-flight lines, each completing at a known cycle.
///
/// Used for both fill buffers (miss → line arrives) and WCB/EB
/// (eviction/write-combine → line drains).
///
/// ```
/// use lowvcc_uarch::buffers::TimedBuffer;
///
/// let mut fb = TimedBuffer::new(8);
/// fb.allocate(0x40, 100).unwrap();
/// assert!(fb.contains(0x40));
/// assert_eq!(fb.take_ready(99), vec![]);
/// assert_eq!(fb.take_ready(100), vec![0x40]);
/// assert!(!fb.contains(0x40));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedBuffer {
    slots: Vec<Option<(u64, u64)>>, // (line, ready_at)
    /// Earliest `ready_at` among occupied slots (`u64::MAX` when empty):
    /// lets the per-cycle [`TimedBuffer::take_ready`] poll exit in O(1)
    /// on the overwhelmingly common nothing-completes cycle.
    next_ready: u64,
    /// Occupied-slot count, so occupancy/fullness checks on the access
    /// hot path are O(1) instead of slot scans.
    occupied: usize,
    allocations: u64,
    full_rejections: u64,
}

impl TimedBuffer {
    /// Creates a buffer with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "buffer needs at least one entry");
        Self {
            slots: vec![None; entries],
            next_ready: u64::MAX,
            occupied: 0,
            allocations: 0,
            full_rejections: 0,
        }
    }

    /// Capacity in entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupied entries.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.occupied
    }

    /// Whether the buffer is full.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.occupied == self.slots.len()
    }

    /// Whether `line` is already in flight (secondary-miss merge).
    #[must_use]
    pub fn contains(&self, line: u64) -> bool {
        self.occupied > 0 && self.slots.iter().flatten().any(|&(l, _)| l == line)
    }

    /// Cycle at which `line` completes, if in flight.
    #[must_use]
    pub fn ready_at(&self, line: u64) -> Option<u64> {
        if self.occupied == 0 {
            return None;
        }
        self.slots
            .iter()
            .flatten()
            .find(|&&(l, _)| l == line)
            .map(|&(_, t)| t)
    }

    /// Allocates `line`, completing at `ready_at`. Duplicate lines merge
    /// (keeping the earlier completion).
    ///
    /// # Errors
    ///
    /// Returns [`BufferFull`] when no slot is free.
    pub fn allocate(&mut self, line: u64, ready_at: u64) -> Result<(), BufferFull> {
        if let Some(slot) = self.slots.iter_mut().flatten().find(|(l, _)| *l == line) {
            slot.1 = slot.1.min(ready_at);
            self.next_ready = self.next_ready.min(slot.1);
            return Ok(());
        }
        match self.slots.iter_mut().find(|s| s.is_none()) {
            Some(slot) => {
                *slot = Some((line, ready_at));
                self.next_ready = self.next_ready.min(ready_at);
                self.occupied += 1;
                self.allocations += 1;
                Ok(())
            }
            None => {
                self.full_rejections += 1;
                Err(BufferFull)
            }
        }
    }

    /// Removes and returns every line whose completion cycle has arrived.
    /// O(1) on cycles where nothing completes.
    pub fn take_ready(&mut self, now: u64) -> Vec<u64> {
        if self.next_ready > now {
            return Vec::new();
        }
        let mut ready = Vec::new();
        let mut remaining_min = u64::MAX;
        for slot in &mut self.slots {
            if let Some((line, at)) = *slot {
                if at <= now {
                    ready.push(line);
                    *slot = None;
                    self.occupied -= 1;
                } else {
                    remaining_min = remaining_min.min(at);
                }
            }
        }
        self.next_ready = remaining_min;
        ready
    }

    /// Drops every line whose completion cycle has arrived, without
    /// returning them — the allocation-free twin of
    /// [`TimedBuffer::take_ready`] for callers that only need the slots
    /// recycled (the per-cycle tick). O(1) on cycles where nothing
    /// completes.
    pub fn expire(&mut self, now: u64) {
        if self.next_ready > now {
            return;
        }
        let mut remaining_min = u64::MAX;
        for slot in &mut self.slots {
            if let Some((_, at)) = *slot {
                if at <= now {
                    *slot = None;
                    self.occupied -= 1;
                } else {
                    remaining_min = remaining_min.min(at);
                }
            }
        }
        self.next_ready = remaining_min;
    }

    /// Total successful allocations.
    #[must_use]
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Allocation attempts rejected because the buffer was full
    /// (each one is a pipeline stall source).
    #[must_use]
    pub fn full_rejections(&self) -> u64 {
        self.full_rejections
    }

    /// Drops everything (reset).
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.next_ready = u64::MAX;
        self.occupied = 0;
    }

    /// Restores the freshly-constructed state in place (contents *and*
    /// statistics), without reallocating the slot storage.
    pub fn reset(&mut self) {
        self.clear();
        self.allocations = 0;
        self.full_rejections = 0;
    }
}

/// Post-fill stall guard: the paper's IRAW mechanism for infrequently
/// written blocks — "keeping the ports busy to prevent the port arbiter
/// from issuing new accesses" for `N` cycles after a fill.
///
/// ```
/// use lowvcc_uarch::buffers::StallGuard;
///
/// let mut g = StallGuard::new(1);
/// g.on_fill(100);               // fill completes at cycle 100
/// assert!(g.is_stalled(100));   // N = 1: cycle 100 blocked…
/// assert!(g.is_stalled(101));
/// assert!(!g.is_stalled(102));  // …free again
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallGuard {
    n: u32,
    /// Stabilization window `[start, end]` of the most recent fill, if any.
    window: Option<(u64, u64)>,
    stall_events: u64,
}

impl StallGuard {
    /// Creates a guard enforcing `n` stabilization cycles (0 = disabled).
    #[must_use]
    pub fn new(n: u32) -> Self {
        Self {
            n,
            window: None,
            stall_events: 0,
        }
    }

    /// Reconfigures `N` at a Vcc change (the paper's small per-block
    /// counter whose initial value the Vcc controller updates).
    pub fn set_n(&mut self, n: u32) {
        self.n = n;
    }

    /// Current `N`.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Notifies the guard that a fill completed at `cycle`; the port is
    /// busy for the window `[cycle, cycle + N]` while the entry
    /// stabilizes. Earlier fills with shorter windows are superseded.
    pub fn on_fill(&mut self, cycle: u64) {
        if self.n == 0 {
            return;
        }
        let end = cycle + u64::from(self.n);
        match self.window {
            Some((_, old_end)) if old_end >= end => {}
            _ => self.window = Some((cycle, end)),
        }
        self.stall_events += 1;
    }

    /// Whether the port is blocked at `cycle` (inside a stabilization
    /// window). Cycles *before* the fill completes are not blocked by the
    /// guard — the in-flight miss itself covers those.
    #[must_use]
    pub fn is_stalled(&self, cycle: u64) -> bool {
        match self.window {
            Some((start, end)) => self.n > 0 && cycle >= start && cycle <= end,
            None => false,
        }
    }

    /// First cycle at which the current window (if any) has passed.
    #[must_use]
    pub fn free_at(&self) -> u64 {
        match self.window {
            Some((_, end)) => end + 1,
            None => 0,
        }
    }

    /// First cycle after `now` at which [`StallGuard::is_stalled`] changes
    /// value, absent new fills — the window opening (a fill completing in
    /// the future) or closing. `None` when the guard's answer is settled.
    #[must_use]
    pub fn next_change(&self, now: u64) -> Option<u64> {
        if self.n == 0 {
            return None;
        }
        match self.window {
            Some((start, _)) if now < start => Some(start),
            Some((_, end)) if now <= end => Some(end + 1),
            _ => None,
        }
    }

    /// Number of fills that armed the guard.
    #[must_use]
    pub fn stall_events(&self) -> u64 {
        self.stall_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_complete_roundtrip() {
        let mut fb = TimedBuffer::new(2);
        fb.allocate(1, 10).unwrap();
        fb.allocate(2, 5).unwrap();
        assert_eq!(fb.occupancy(), 2);
        assert!(fb.is_full());
        let mut ready = fb.take_ready(10);
        ready.sort_unstable();
        assert_eq!(ready, vec![1, 2]);
        assert_eq!(fb.occupancy(), 0);
    }

    #[test]
    fn full_buffer_rejects_and_counts() {
        let mut fb = TimedBuffer::new(1);
        fb.allocate(1, 10).unwrap();
        assert_eq!(fb.allocate(2, 10), Err(BufferFull));
        assert_eq!(fb.full_rejections(), 1);
        assert_eq!(fb.allocations(), 1);
    }

    #[test]
    fn duplicate_lines_merge_keeping_earlier_completion() {
        let mut fb = TimedBuffer::new(2);
        fb.allocate(7, 20).unwrap();
        fb.allocate(7, 15).unwrap(); // merge, earlier wins
        assert_eq!(fb.occupancy(), 1);
        assert_eq!(fb.ready_at(7), Some(15));
        fb.allocate(7, 30).unwrap(); // merge, later ignored
        assert_eq!(fb.ready_at(7), Some(15));
    }

    #[test]
    fn partial_readiness() {
        let mut fb = TimedBuffer::new(4);
        fb.allocate(1, 10).unwrap();
        fb.allocate(2, 20).unwrap();
        assert_eq!(fb.take_ready(15), vec![1]);
        assert!(fb.contains(2));
        assert_eq!(fb.take_ready(25), vec![2]);
    }

    #[test]
    fn expire_matches_take_ready_effects() {
        let mut taken = TimedBuffer::new(4);
        let mut expired = TimedBuffer::new(4);
        for fb in [&mut taken, &mut expired] {
            fb.allocate(1, 10).unwrap();
            fb.allocate(2, 20).unwrap();
            fb.allocate(3, 15).unwrap();
        }
        let _ = taken.take_ready(15);
        expired.expire(15);
        assert_eq!(taken, expired);
        assert!(!expired.contains(1));
        assert!(expired.contains(2));
        // Nothing-ready cycles are no-ops for both.
        let _ = taken.take_ready(16);
        expired.expire(16);
        assert_eq!(taken, expired);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut fb = TimedBuffer::new(2);
        fb.allocate(1, 10).unwrap();
        fb.allocate(2, 10).unwrap();
        let _ = fb.allocate(3, 10); // rejection
        fb.reset();
        assert_eq!(fb, TimedBuffer::new(2));
        assert_eq!(fb.allocations(), 0);
        assert_eq!(fb.full_rejections(), 0);
    }

    #[test]
    fn clear_empties() {
        let mut fb = TimedBuffer::new(2);
        fb.allocate(1, 10).unwrap();
        fb.clear();
        assert_eq!(fb.occupancy(), 0);
        assert!(!fb.contains(1));
    }

    #[test]
    fn stall_guard_blocks_n_cycles_after_fill() {
        let mut g = StallGuard::new(2);
        assert!(!g.is_stalled(50));
        g.on_fill(100);
        assert!(g.is_stalled(100));
        assert!(g.is_stalled(102));
        assert!(!g.is_stalled(103));
        assert_eq!(g.free_at(), 103);
        assert_eq!(g.stall_events(), 1);
    }

    #[test]
    fn stall_guard_next_change_brackets_the_window() {
        let mut g = StallGuard::new(2);
        assert_eq!(g.next_change(5), None);
        g.on_fill(100);
        // Before the fill lands: the window opens at 100…
        assert_eq!(g.next_change(50), Some(100));
        // …inside it: closes at 103…
        assert_eq!(g.next_change(100), Some(103));
        assert_eq!(g.next_change(102), Some(103));
        // …after: settled.
        assert_eq!(g.next_change(103), None);
    }

    #[test]
    fn stall_guard_disabled_at_n_zero() {
        let mut g = StallGuard::new(0);
        g.on_fill(100);
        assert!(!g.is_stalled(100));
        assert_eq!(g.stall_events(), 0);
    }

    #[test]
    fn stall_guard_extends_not_shrinks() {
        let mut g = StallGuard::new(3);
        g.on_fill(100);
        g.on_fill(98); // earlier fill must not shorten the stall
        assert!(g.is_stalled(103));
    }

    #[test]
    fn stall_guard_reconfigures() {
        let mut g = StallGuard::new(1);
        g.set_n(2);
        assert_eq!(g.n(), 2);
        g.on_fill(10);
        assert!(g.is_stalled(12));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = TimedBuffer::new(0);
    }
}
