//! Instruction queue with the IRAW occupancy gate (paper §4.2, Figure 9).
//!
//! The in-order core allocates decoded instructions to a circular queue and
//! considers only the `ICI` oldest for issue; IQ entries are read every
//! cycle regardless of validity, so reading a just-allocated (still
//! stabilizing) entry would corrupt it at low Vcc. The paper's gate allows
//! issue only when
//!
//! ```text
//! occupancy ≥ ICI + AI·N
//! ```
//!
//! (`AI` = allocation width, `N` = stabilization cycles): even if the
//! newest `AI·N` entries are stabilizing, the `ICI` oldest are safe. On a
//! pipeline drain, `AI·N` NOOPs are injected so the real tail can issue.

use std::collections::VecDeque;

/// Circular instruction queue.
///
/// ```
/// use lowvcc_uarch::iq::InstQueue;
///
/// let mut iq: InstQueue<u32> = InstQueue::new(32);
/// iq.alloc(7).unwrap();
/// // One entry, ICI=2, AI=2, N=1: occupancy 1 < 2 + 2·1 → gated.
/// assert!(!iq.issue_allowed(2, 2, 1));
/// // With IRAW off (N = 0) the entry may issue immediately.
/// assert!(iq.issue_allowed(2, 2, 0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstQueue<T> {
    entries: VecDeque<T>,
    capacity: usize,
    /// Monotone counters emulating the Figure 9 head/tail registers.
    head: u64,
    tail: u64,
}

/// Error returned when allocating into a full queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("instruction queue is full")
    }
}

impl std::error::Error for QueueFull {}

impl<T> InstQueue<T> {
    /// Creates a queue of `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or not a power of two (the Figure 9
    /// modulus trick requires a power-of-two size).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0 && capacity.is_power_of_two());
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            head: 0,
            tail: 0,
        }
    }

    /// Queue capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the queue is full.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Occupancy computed the way the Figure 9 hardware does: append a
    /// `1` to the left of `tail` (add the queue size), subtract `head`,
    /// and drop the uppermost bit (mod size) — with a full-queue special
    /// case. Kept alongside the architectural count for cross-checking.
    #[must_use]
    pub fn hardware_occupancy(&self) -> usize {
        let size = self.capacity as u64;
        let tail = self.tail % size;
        let head = self.head % size;
        let raw = ((tail + size) - head) % size;
        if raw == 0 && !self.entries.is_empty() {
            self.capacity
        } else {
            raw as usize
        }
    }

    /// Allocates one entry at the tail.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when at capacity.
    pub fn alloc(&mut self, item: T) -> Result<(), QueueFull> {
        if self.is_full() {
            return Err(QueueFull);
        }
        self.entries.push_back(item);
        self.tail += 1;
        Ok(())
    }

    /// The Figure 9 issue gate: `occupancy ≥ ICI + AI·N`.
    ///
    /// With `n = 0` (IRAW disabled — the `stall issue?` signal cleared)
    /// any non-empty queue may issue.
    #[must_use]
    pub fn issue_allowed(&self, ici: usize, ai: usize, n: u32) -> bool {
        if n == 0 {
            !self.is_empty()
        } else {
            self.occupancy() >= ici + ai * n as usize
        }
    }

    /// The `ICI` oldest entries, oldest first.
    pub fn oldest(&self, ici: usize) -> impl Iterator<Item = &T> {
        self.entries.iter().take(ici)
    }

    /// Reference to the oldest entry.
    #[must_use]
    pub fn front(&self) -> Option<&T> {
        self.entries.front()
    }

    /// Pops the oldest entry (it issued).
    pub fn pop_oldest(&mut self) -> Option<T> {
        let item = self.entries.pop_front();
        if item.is_some() {
            self.head += 1;
        }
        item
    }

    /// Drops every entry (misprediction/exception flush).
    pub fn flush(&mut self) {
        self.entries.clear();
        self.head = self.tail;
    }

    /// Restores the freshly-constructed state in place: empty queue *and*
    /// head/tail counters rewound (unlike [`InstQueue::flush`], which
    /// keeps the monotone counters running). Capacity is retained, so no
    /// allocation.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.head = 0;
        self.tail = 0;
    }

    /// Injects `count` drain entries (the paper's NOOP injection: when the
    /// pipeline must empty, `AI·N` NOOPs are allocated so every real
    /// instruction can clear the occupancy gate).
    ///
    /// Entries beyond capacity are silently dropped — a full queue needs
    /// no padding to issue.
    pub fn inject_drain(&mut self, count: usize, mut make: impl FnMut() -> T) {
        for _ in 0..count {
            if self.alloc(make()).is_err() {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_occupancy() {
        let mut iq = InstQueue::new(8);
        for i in 0..5 {
            iq.alloc(i).unwrap();
        }
        assert_eq!(iq.occupancy(), 5);
        assert_eq!(iq.front(), Some(&0));
        assert_eq!(iq.pop_oldest(), Some(0));
        assert_eq!(iq.pop_oldest(), Some(1));
        assert_eq!(iq.occupancy(), 3);
        let oldest: Vec<_> = iq.oldest(2).copied().collect();
        assert_eq!(oldest, vec![2, 3]);
    }

    #[test]
    fn rejects_allocation_when_full() {
        let mut iq = InstQueue::new(4);
        for i in 0..4 {
            iq.alloc(i).unwrap();
        }
        assert!(iq.is_full());
        assert_eq!(iq.alloc(9), Err(QueueFull));
    }

    #[test]
    fn figure9_gate_silverthorne_parameters() {
        // ICI = 2, AI = 2, N = 1 ⇒ threshold 4 (paper's own example).
        let mut iq = InstQueue::new(32);
        for occupancy in 1..=3 {
            iq.alloc(occupancy).unwrap();
            assert!(
                !iq.issue_allowed(2, 2, 1),
                "occupancy {occupancy} must be gated"
            );
        }
        iq.alloc(4).unwrap();
        assert!(iq.issue_allowed(2, 2, 1));
    }

    #[test]
    fn gate_scales_with_n() {
        let mut iq = InstQueue::new(32);
        for i in 0..5 {
            iq.alloc(i).unwrap();
        }
        assert!(iq.issue_allowed(2, 2, 1)); // needs 4
        assert!(!iq.issue_allowed(2, 2, 2)); // needs 6
        iq.alloc(5).unwrap();
        assert!(iq.issue_allowed(2, 2, 2));
    }

    #[test]
    fn gate_disabled_when_n_zero() {
        let mut iq = InstQueue::new(32);
        assert!(!iq.issue_allowed(2, 2, 0), "empty queue never issues");
        iq.alloc(1).unwrap();
        assert!(iq.issue_allowed(2, 2, 0));
    }

    #[test]
    fn hardware_occupancy_matches_count_through_wraparound() {
        let mut iq = InstQueue::new(8);
        // Drive through several wrap-arounds with mixed alloc/pop.
        for round in 0u64..50 {
            if round % 3 != 2 {
                let _ = iq.alloc(round);
            } else {
                let _ = iq.pop_oldest();
            }
            assert_eq!(
                iq.hardware_occupancy(),
                iq.occupancy(),
                "divergence at round {round}"
            );
        }
    }

    #[test]
    fn hardware_occupancy_full_queue() {
        let mut iq = InstQueue::new(4);
        for i in 0..4 {
            iq.alloc(i).unwrap();
        }
        assert_eq!(iq.hardware_occupancy(), 4);
    }

    #[test]
    fn drain_injection_unblocks_the_tail() {
        // 1 real instruction stuck behind the gate: inject AI·N = 2 NOOPs.
        let mut iq = InstQueue::new(32);
        iq.alloc(100).unwrap();
        assert!(!iq.issue_allowed(2, 2, 1));
        iq.inject_drain(3, || -1);
        assert!(iq.issue_allowed(2, 2, 1));
        assert_eq!(iq.pop_oldest(), Some(100), "real instruction issues first");
    }

    #[test]
    fn drain_injection_respects_capacity() {
        let mut iq = InstQueue::new(4);
        for i in 0..3 {
            iq.alloc(i).unwrap();
        }
        iq.inject_drain(10, || -1);
        assert_eq!(iq.occupancy(), 4);
    }

    #[test]
    fn flush_empties_and_keeps_counters_consistent() {
        let mut iq = InstQueue::new(8);
        for i in 0..6 {
            iq.alloc(i).unwrap();
        }
        iq.pop_oldest();
        iq.flush();
        assert!(iq.is_empty());
        assert_eq!(iq.hardware_occupancy(), 0);
        iq.alloc(1).unwrap();
        assert_eq!(iq.hardware_occupancy(), 1);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_capacity_rejected() {
        let _: InstQueue<u8> = InstQueue::new(6);
    }
}
