//! Return stack buffer (RSB) — prediction-only, IRAW ignored (paper §4.5).
//!
//! The RSB is written on calls and read on returns. A return could only
//! observe a stabilizing entry if the matching call happened within the
//! last `N` cycles — the paper "did not find any short function meeting
//! those conditions"; [`ReturnStack`] tracks the same statistic so the
//! claim can be checked per workload.

/// A circular return-address stack.
///
/// ```
/// use lowvcc_uarch::rsb::ReturnStack;
///
/// let mut rsb = ReturnStack::new(8, 1);
/// rsb.push(0x1234, 10);
/// assert_eq!(rsb.pop(20), Some(0x1234));
/// assert_eq!(rsb.pop(21), None); // empty
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReturnStack {
    slots: Vec<(u64, u64)>, // (return address, push cycle)
    top: usize,
    live: usize,
    window: u64,
    pops: u64,
    potential_corruptions: u64,
    overflows: u64,
    underflows: u64,
}

impl ReturnStack {
    /// Creates a return stack of `capacity` entries with an IRAW window of
    /// `n` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, n: u32) -> Self {
        assert!(capacity > 0, "return stack needs at least one entry");
        Self {
            slots: vec![(0, 0); capacity],
            top: 0,
            live: 0,
            window: u64::from(n),
            pops: 0,
            potential_corruptions: 0,
            overflows: 0,
            underflows: 0,
        }
    }

    /// Capacity in entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Live entries (≤ capacity).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.live
    }

    /// Pushes a return address (on a call). Overflow wraps, overwriting
    /// the oldest entry — standard RSB behaviour.
    pub fn push(&mut self, return_addr: u64, cycle: u64) {
        self.top = (self.top + 1) % self.slots.len();
        self.slots[self.top] = (return_addr, cycle);
        if self.live == self.slots.len() {
            self.overflows += 1;
        } else {
            self.live += 1;
        }
    }

    /// Pops the predicted return address (on a return). Returns `None` on
    /// underflow. Tracks pops landing within the IRAW window of the
    /// matching push.
    pub fn pop(&mut self, cycle: u64) -> Option<u64> {
        if self.live == 0 {
            self.underflows += 1;
            return None;
        }
        self.pops += 1;
        let (addr, pushed_at) = self.slots[self.top];
        if cycle.saturating_sub(pushed_at) <= self.window && cycle != pushed_at {
            self.potential_corruptions += 1;
        }
        self.top = (self.top + self.slots.len() - 1) % self.slots.len();
        self.live -= 1;
        Some(addr)
    }

    /// Reconfigures the IRAW window at a Vcc change.
    pub fn set_window(&mut self, n: u32) {
        self.window = u64::from(n);
    }

    /// Pops that landed within the IRAW stabilization window — i.e.
    /// call→return distances short enough to read a stabilizing entry
    /// (paper §4.5: observed to be zero in practice).
    #[must_use]
    pub fn potential_corruptions(&self) -> u64 {
        self.potential_corruptions
    }

    /// Total successful pops.
    #[must_use]
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Overflow count (oldest entries overwritten).
    #[must_use]
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Underflow count (pop on empty).
    #[must_use]
    pub fn underflows(&self) -> u64 {
        self.underflows
    }

    /// Clears the stack (pipeline flush does *not* normally do this — the
    /// RSB is speculative state — but tests and resets need it).
    pub fn clear(&mut self) {
        self.live = 0;
        self.top = 0;
    }

    /// Restores the freshly-constructed state in place for a window of
    /// `n` cycles: contents, depth and every counter (unlike
    /// [`ReturnStack::clear`], which keeps the statistics). No allocation.
    pub fn reset(&mut self, n: u32) {
        self.slots.fill((0, 0));
        self.top = 0;
        self.live = 0;
        self.window = u64::from(n);
        self.pops = 0;
        self.potential_corruptions = 0;
        self.overflows = 0;
        self.underflows = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut rsb = ReturnStack::new(4, 1);
        rsb.push(0xA, 1);
        rsb.push(0xB, 2);
        rsb.push(0xC, 3);
        assert_eq!(rsb.pop(10), Some(0xC));
        assert_eq!(rsb.pop(11), Some(0xB));
        assert_eq!(rsb.pop(12), Some(0xA));
        assert_eq!(rsb.pop(13), None);
        assert_eq!(rsb.underflows(), 1);
    }

    #[test]
    fn overflow_wraps_and_loses_oldest() {
        let mut rsb = ReturnStack::new(2, 1);
        rsb.push(0x1, 1);
        rsb.push(0x2, 2);
        rsb.push(0x3, 3); // overwrites 0x1
        assert_eq!(rsb.overflows(), 1);
        assert_eq!(rsb.depth(), 2);
        assert_eq!(rsb.pop(10), Some(0x3));
        assert_eq!(rsb.pop(11), Some(0x2));
        assert_eq!(rsb.pop(12), None, "0x1 was lost to the wrap");
    }

    #[test]
    fn immediate_return_counts_as_potential_corruption() {
        let mut rsb = ReturnStack::new(8, 1);
        rsb.push(0xAB, 100);
        let _ = rsb.pop(101); // within N=1 of the push
        assert_eq!(rsb.potential_corruptions(), 1);
        rsb.push(0xCD, 200);
        let _ = rsb.pop(205); // far outside
        assert_eq!(rsb.potential_corruptions(), 1);
        assert_eq!(rsb.pops(), 2);
    }

    #[test]
    fn window_reconfiguration() {
        let mut rsb = ReturnStack::new(8, 2);
        rsb.push(0x1, 10);
        let _ = rsb.pop(12);
        assert_eq!(rsb.potential_corruptions(), 1);
        rsb.set_window(1);
        rsb.push(0x2, 20);
        let _ = rsb.pop(22);
        assert_eq!(rsb.potential_corruptions(), 1);
    }

    #[test]
    fn clear_resets_depth() {
        let mut rsb = ReturnStack::new(4, 1);
        rsb.push(0x1, 1);
        rsb.push(0x2, 2);
        rsb.clear();
        assert_eq!(rsb.depth(), 0);
        assert_eq!(rsb.pop(5), None);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = ReturnStack::new(0, 1);
    }
}
