//! Set-associative cache model (IL0, DL0, UL1).
//!
//! Timing-oriented tag store: hits/misses, LRU state, fills and evictions,
//! plus per-line *disable* support used by the Faulty Bits baseline
//! (disabled lines shrink effective capacity, raising the miss rate — the
//! IPC cost the paper's Table 1 charges that technique with).
//!
//! The cache operates on 64-byte-line addresses supplied by the caller
//! (`addr >> 6`); whether a fill stalls subsequent accesses for IRAW
//! stabilization is the pipeline's business (see `lowvcc-core`).

use std::fmt;

use lowvcc_trace::SimRng;

use crate::replacement::{Policy, PolicyState, WayView};

/// Maximum supported associativity: lets the fill path snapshot a set
/// into a stack buffer instead of heap-allocating per fill.
pub const MAX_WAYS: usize = 16;

/// Error validating a [`CacheConfig`] geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheConfigError {
    /// Capacity, way count or line size is zero.
    ZeroDimension,
    /// Capacity is not an exact multiple of `ways × line_bytes`.
    Indivisible,
    /// The derived set count is not a power of two.
    SetsNotPowerOfTwo {
        /// The offending set count.
        sets: usize,
    },
    /// Associativity exceeds [`MAX_WAYS`].
    TooManyWays {
        /// The offending way count.
        ways: usize,
    },
}

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroDimension => f.write_str("cache dimensions must be positive"),
            Self::Indivisible => f.write_str("capacity must divide into ways × line size"),
            Self::SetsNotPowerOfTwo { sets } => {
                write!(f, "set count {sets} must be a power of two")
            }
            Self::TooManyWays { ways } => {
                write!(f, "way count {ways} exceeds the supported {MAX_WAYS}")
            }
        }
    }
}

impl std::error::Error for CacheConfigError {}

/// Geometry and policy of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Replacement policy.
    pub policy: Policy,
}

impl CacheConfig {
    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`CacheConfigError`] when any dimension is zero, the
    /// capacity is not an exact multiple of `ways × line_bytes`, or the
    /// set count is not a power of two.
    pub fn validate(&self) -> Result<(), CacheConfigError> {
        if self.size_bytes == 0 || self.ways == 0 || self.line_bytes == 0 {
            return Err(CacheConfigError::ZeroDimension);
        }
        if self.size_bytes % (self.ways * self.line_bytes) != 0 {
            return Err(CacheConfigError::Indivisible);
        }
        if self.ways > MAX_WAYS {
            return Err(CacheConfigError::TooManyWays { ways: self.ways });
        }
        if !self.sets().is_power_of_two() {
            return Err(CacheConfigError::SetsNotPowerOfTwo { sets: self.sets() });
        }
        Ok(())
    }

    /// Silverthorne IL0: 32 KB, 8-way, 64 B lines.
    #[must_use]
    pub fn silverthorne_il0() -> Self {
        Self {
            size_bytes: 32 * 1024,
            ways: 8,
            line_bytes: 64,
            policy: Policy::Lru,
        }
    }

    /// Silverthorne DL0: 24 KB, 6-way, 64 B lines.
    #[must_use]
    pub fn silverthorne_dl0() -> Self {
        Self {
            size_bytes: 24 * 1024,
            ways: 6,
            line_bytes: 64,
            policy: Policy::Lru,
        }
    }

    /// Silverthorne UL1: 512 KB, 8-way, 64 B lines.
    #[must_use]
    pub fn silverthorne_ul1() -> Self {
        Self {
            size_bytes: 512 * 1024,
            ways: 8,
            line_bytes: 64,
            policy: Policy::Lru,
        }
    }
}

/// Hit/miss/fill counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Demand accesses.
    pub accesses: u64,
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Lines filled.
    pub fills: u64,
    /// Valid lines evicted by fills.
    pub evictions: u64,
}

impl CacheStats {
    /// Miss ratio (0 when no accesses yet).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    disabled: bool,
    last_use: u64,
}

/// The set-associative cache.
///
/// ```
/// use lowvcc_uarch::cache::{CacheConfig, SetAssocCache};
///
/// let mut dl0 = SetAssocCache::new(CacheConfig::silverthorne_dl0())?;
/// let line = 0x1234;
/// assert!(!dl0.access(line));      // cold miss
/// dl0.fill(line);
/// assert!(dl0.access(line));       // now hits
/// assert_eq!(dl0.stats().misses, 1);
/// # Ok::<(), lowvcc_uarch::cache::CacheConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    lines: Vec<Line>, // sets × ways, row-major
    policy: PolicyState,
    stats: CacheStats,
    clock: u64,
    disabled_lines: usize,
}

impl SetAssocCache {
    /// Builds an empty cache.
    ///
    /// # Errors
    ///
    /// Propagates [`CacheConfig::validate`] failures.
    pub fn new(cfg: CacheConfig) -> Result<Self, CacheConfigError> {
        cfg.validate()?;
        let sets = cfg.sets();
        Ok(Self {
            cfg,
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    disabled: false,
                    last_use: 0,
                };
                sets * cfg.ways
            ],
            policy: PolicyState::new(cfg.policy, sets, 0xCAC4E),
            stats: CacheStats::default(),
            clock: 0,
            disabled_lines: 0,
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Set index of a line address.
    #[must_use]
    pub fn set_index(&self, line_addr: u64) -> u64 {
        line_addr % self.cfg.sets() as u64
    }

    fn tag_of(&self, line_addr: u64) -> u64 {
        line_addr / self.cfg.sets() as u64
    }

    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        let base = set * self.cfg.ways;
        base..base + self.cfg.ways
    }

    /// Demand access; returns whether it hit, updating recency and stats.
    pub fn access(&mut self, line_addr: u64) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let set = self.set_index(line_addr) as usize;
        let tag = self.tag_of(line_addr);
        let clock = self.clock;
        let range = self.set_range(set);
        for line in &mut self.lines[range] {
            if line.valid && !line.disabled && line.tag == tag {
                line.last_use = clock;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Non-destructive lookup (no stats, no recency update).
    #[must_use]
    pub fn probe(&self, line_addr: u64) -> bool {
        let set = self.set_index(line_addr) as usize;
        let tag = self.tag_of(line_addr);
        self.lines[self.set_range(set)]
            .iter()
            .any(|l| l.valid && !l.disabled && l.tag == tag)
    }

    /// Fills a line, returning the evicted line address if a valid line
    /// was displaced. Returns `Err(())` when every way of the set is
    /// disabled (Faulty Bits can render sets uncacheable).
    #[allow(clippy::result_unit_err)]
    pub fn fill(&mut self, line_addr: u64) -> Result<Option<u64>, ()> {
        self.clock += 1;
        let set = self.set_index(line_addr) as usize;
        let tag = self.tag_of(line_addr);
        // Snapshot the set into a stack buffer (ways ≤ MAX_WAYS, enforced
        // at construction): fills must stay allocation-free.
        let mut views = [WayView {
            valid: false,
            disabled: false,
            last_use: 0,
        }; MAX_WAYS];
        for (view, l) in views.iter_mut().zip(&self.lines[self.set_range(set)]) {
            *view = WayView {
                valid: l.valid,
                disabled: l.disabled,
                last_use: l.last_use,
            };
        }
        let Some(way) = self.policy.select_victim(set, &views[..self.cfg.ways]) else {
            return Err(());
        };
        let sets = self.cfg.sets() as u64;
        let idx = self.set_range(set).start + way;
        let line = &mut self.lines[idx];
        let evicted = (line.valid).then(|| line.tag * sets + set as u64);
        if evicted.is_some() {
            self.stats.evictions += 1;
        }
        line.tag = tag;
        line.valid = true;
        line.last_use = self.clock;
        self.stats.fills += 1;
        Ok(evicted)
    }

    /// Invalidates a line if present.
    pub fn invalidate(&mut self, line_addr: u64) {
        let set = self.set_index(line_addr) as usize;
        let tag = self.tag_of(line_addr);
        let range = self.set_range(set);
        for line in &mut self.lines[range] {
            if line.valid && line.tag == tag {
                line.valid = false;
            }
        }
    }

    /// Disables `count` randomly chosen lines (Faulty Bits fault map).
    /// Disabled lines lose their contents and are never refilled.
    pub fn disable_random_lines(&mut self, count: usize, rng: &mut SimRng) {
        let total = self.lines.len();
        let mut disabled = 0;
        let mut attempts = 0;
        while disabled < count && attempts < total * 20 {
            attempts += 1;
            let idx = rng.below(total as u64) as usize;
            if !self.lines[idx].disabled {
                self.lines[idx].disabled = true;
                self.lines[idx].valid = false;
                disabled += 1;
            }
        }
        self.disabled_lines += disabled;
    }

    /// Number of disabled lines.
    #[must_use]
    pub fn disabled_lines(&self) -> usize {
        self.disabled_lines
    }

    /// Usable capacity in bytes after disabling.
    #[must_use]
    pub fn effective_capacity(&self) -> usize {
        self.cfg.size_bytes - self.disabled_lines * self.cfg.line_bytes
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the statistics (not the contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Restores the freshly-constructed state in place — contents,
    /// recency, policy state, statistics, and the disable map — without
    /// reallocating the line array. Callers modeling faulty lines must
    /// re-apply their fault map afterwards.
    pub fn reset(&mut self) {
        for line in &mut self.lines {
            *line = Line {
                tag: 0,
                valid: false,
                disabled: false,
                last_use: 0,
            };
        }
        self.policy.reset();
        self.stats = CacheStats::default();
        self.clock = 0;
        self.disabled_lines = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets × 2 ways × 64 B = 512 B.
        SetAssocCache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            policy: Policy::Lru,
        })
        .unwrap()
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(5));
        c.fill(5).unwrap();
        assert!(c.access(5));
        let s = c.stats();
        assert_eq!((s.accesses, s.hits, s.misses, s.fills), (2, 1, 1, 1));
    }

    #[test]
    fn conflicting_tags_evict_lru() {
        let mut c = tiny();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.fill(0).unwrap();
        c.fill(4).unwrap();
        assert!(c.access(0));
        assert!(c.access(4));
        // Touch 0 so 4 is LRU, then fill 8: 4 must be evicted.
        assert!(c.access(0));
        let evicted = c.fill(8).unwrap();
        assert_eq!(evicted, Some(4));
        assert!(c.probe(0));
        assert!(!c.probe(4));
        assert!(c.probe(8));
    }

    #[test]
    fn probe_does_not_touch_stats_or_lru() {
        let mut c = tiny();
        c.fill(3).unwrap();
        let before = c.stats();
        assert!(c.probe(3));
        assert!(!c.probe(7));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.fill(9).unwrap();
        c.invalidate(9);
        assert!(!c.probe(9));
    }

    #[test]
    fn silverthorne_geometries_validate() {
        for cfg in [
            CacheConfig::silverthorne_il0(),
            CacheConfig::silverthorne_dl0(),
            CacheConfig::silverthorne_ul1(),
        ] {
            cfg.validate().unwrap();
            SetAssocCache::new(cfg).unwrap();
        }
        assert_eq!(CacheConfig::silverthorne_dl0().sets(), 64);
        assert_eq!(CacheConfig::silverthorne_ul1().sets(), 1024);
    }

    #[test]
    fn bad_geometry_rejected() {
        assert!(CacheConfig {
            size_bytes: 0,
            ways: 1,
            line_bytes: 64,
            policy: Policy::Lru
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            size_bytes: 3 * 64 * 3,
            ways: 3,
            line_bytes: 64,
            policy: Policy::Lru
        }
        .validate()
        .is_err()); // 3 sets: not a power of two
    }

    #[test]
    fn miss_ratio_reflects_working_set() {
        let mut c = tiny(); // 512 B = 8 lines
                            // Working set of 4 lines: after warmup, all hits.
        for line in 0..4u64 {
            c.access(line);
            c.fill(line).unwrap();
        }
        c.reset_stats();
        for _ in 0..100 {
            for line in 0..4u64 {
                assert!(c.access(line));
            }
        }
        assert_eq!(c.stats().miss_ratio(), 0.0);
        // Working set of 16 lines in 8-line cache: mostly misses.
        c.reset_stats();
        for round in 0..50 {
            for line in 0..16u64 {
                if !c.access(line) {
                    c.fill(line).unwrap();
                }
                let _ = round;
            }
        }
        assert!(c.stats().miss_ratio() > 0.5);
    }

    #[test]
    fn disabled_lines_shrink_capacity_and_raise_misses() {
        let mut healthy = tiny();
        let mut faulty = tiny();
        let mut rng = SimRng::seed_from(1);
        faulty.disable_random_lines(4, &mut rng); // half the cache
        assert_eq!(faulty.disabled_lines(), 4);
        assert_eq!(faulty.effective_capacity(), 256);

        let run = |c: &mut SetAssocCache| {
            c.reset_stats();
            for _ in 0..200 {
                for line in 0..6u64 {
                    if !c.access(line) {
                        let _ = c.fill(line);
                    }
                }
            }
            c.stats().miss_ratio()
        };
        let healthy_miss = run(&mut healthy);
        let faulty_miss = run(&mut faulty);
        assert!(
            faulty_miss > healthy_miss,
            "faulty {faulty_miss:.3} vs healthy {healthy_miss:.3}"
        );
    }

    #[test]
    fn fully_disabled_set_rejects_fills() {
        let mut c = tiny();
        let mut rng = SimRng::seed_from(2);
        c.disable_random_lines(8, &mut rng); // everything
        assert_eq!(c.fill(0), Err(()));
        assert!(!c.access(0));
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut used = tiny();
        let mut rng = SimRng::seed_from(3);
        used.disable_random_lines(2, &mut rng);
        for line in 0..12u64 {
            if !used.access(line) {
                let _ = used.fill(line);
            }
        }
        used.reset();
        assert_eq!(used, tiny());
        assert_eq!(used.disabled_lines(), 0);
        assert_eq!(used.stats(), CacheStats::default());
    }

    #[test]
    fn too_many_ways_rejected() {
        let cfg = CacheConfig {
            size_bytes: 32 * 64 * 2,
            ways: 32,
            line_bytes: 64,
            policy: Policy::Lru,
        };
        assert_eq!(
            cfg.validate(),
            Err(CacheConfigError::TooManyWays { ways: 32 })
        );
    }

    #[test]
    fn eviction_reports_correct_line_address() {
        let mut c = tiny();
        c.fill(13).unwrap(); // set 1, tag 3
                             // Fill two more lines into set 1 to force 13 out (2 ways).
        c.fill(1).unwrap();
        c.access(1);
        let evicted = c.fill(21).unwrap(); // set 1, tag 5 — evicts LRU (13)
        assert_eq!(evicted, Some(13));
    }
}
