//! Microarchitecture building blocks for the low-Vcc in-order core
//! reproduction (HPCA 2010): caches, TLBs, branch predictors, the
//! shift-register scoreboard, the instruction queue, the Store Table, and
//! fill/eviction buffers.
//!
//! Three modules implement the paper's IRAW-avoidance hardware verbatim:
//!
//! * [`scoreboard`] — the extended ready shift registers (Figures 6 & 8);
//! * [`iq`] — the occupancy-gated instruction queue (Figure 9);
//! * [`stable`] — the DL0 Store Table (Figure 10);
//!
//! while [`buffers::StallGuard`] provides the post-fill port stalls of the
//! infrequently written blocks (§4.3) and
//! [`bpred::CorruptionTracker`]/[`rsb`] measure the prediction-only
//! corruption windows (§4.5). The pipeline that composes them lives in
//! `lowvcc-core`.
//!
//! ```
//! use lowvcc_trace::Reg;
//! use lowvcc_uarch::scoreboard::{IrawWindow, Scoreboard};
//!
//! // The paper's Figure 8 bit pattern, executable:
//! let mut sb = Scoreboard::new(7);
//! sb.set_producer(Reg::new(0).unwrap(), 3,
//!                 Some(IrawWindow { bypass_levels: 1, bubble: 1 }));
//! assert_eq!(sb.pattern(Reg::new(0).unwrap()), 0b0001011);
//! ```

pub mod bpred;
pub mod buffers;
pub mod cache;
pub mod iq;
pub mod ports;
pub mod replacement;
pub mod rsb;
pub mod scoreboard;
pub mod stable;
pub mod tlb;

pub use bpred::{Bimodal, BranchPredictor, Btb, CorruptionTracker, Gshare};
pub use buffers::{StallGuard, TimedBuffer};
pub use cache::{CacheConfig, CacheConfigError, CacheStats, SetAssocCache};
pub use iq::InstQueue;
pub use ports::{Port, PortSet};
pub use replacement::Policy;
pub use rsb::ReturnStack;
pub use scoreboard::{IrawWindow, Scoreboard};
pub use stable::{StableMatch, StoreTable, TrackedStore};
pub use tlb::Tlb;
