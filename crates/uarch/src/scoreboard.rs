//! Shift-register scoreboard (paper Figures 6 and 8).
//!
//! Each logical register owns a `B`-bit shift register. The most
//! significant bit says "a consumer may issue now"; every cycle the
//! register shifts left one position, keeping its least significant bit.
//! A producer of latency `L` writes `L` zeros followed by ones — delayed
//! wake-up with zero CAM logic, which is why in-order cores use it.
//!
//! The IRAW extension (paper §4.1.2) appends, after the latency zeros:
//! one `1` per **bypass level** (consumers there get the value from the
//! bypass network), then `N` zeros (the **bubble**: a consumer issuing in
//! those slots would read the register file exactly while the interrupted
//! write is still stabilizing), then ones. For a 3-cycle producer, one
//! bypass level and `N = 1`, the register is initialized to `0001011` —
//! the exact Figure 8 bit pattern.
//!
//! **Representation:** the hardware shifts every register every cycle, but
//! simulating that is O(registers) per cycle. This model is *lazy*: each
//! register stores the pattern as written plus the cycle it was written
//! at, and readers shift by the elapsed delta on access. Shifting keeps
//! the least significant bit, so after `width` cycles a pattern saturates
//! to all-ones (sticky LSB 1) or all-zeros (LSB 0) — which makes the
//! delta shift O(1) regardless of how long ago the pattern was written.
//! [`Scoreboard::tick`] is a counter increment and
//! [`Scoreboard::advance`] jumps any number of cycles at the same cost,
//! which is what the engine's cycle-skipping fast path leans on.

use lowvcc_trace::Reg;

/// Maximum supported shift-register width in bits.
pub const MAX_WIDTH: u32 = 32;

/// IRAW window parameters appended to producer patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IrawWindow {
    /// Number of bypass levels in the pipeline (cycles during which the
    /// value is available from the bypass network right after execution).
    pub bypass_levels: u32,
    /// Stabilization cycles `N` during which the register file entry must
    /// not be read.
    pub bubble: u32,
}

/// One register's shift register, stored lazily: `bits` is the pattern as
/// of cycle `written_at`; the current pattern is `bits` shifted by the
/// cycles elapsed since.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ShiftReg {
    bits: u32,
    written_at: u64,
}

/// Shifts `bits` left by `delta` cycles, keeping the sticky LSB, within
/// `width`/`mask`. O(1) for any delta: past `width` shifts the pattern is
/// saturated by its LSB.
fn shift_by(bits: u32, delta: u64, width: u32, mask: u32) -> u32 {
    if delta == 0 {
        return bits;
    }
    let sticky = bits & 1;
    if delta >= u64::from(width) {
        return if sticky == 1 { mask } else { 0 };
    }
    let d = delta as u32;
    let fill = if sticky == 1 { (1 << d) - 1 } else { 0 };
    ((bits << d) | fill) & mask
}

/// The scoreboard: one shift register per logical register.
///
/// ```
/// use lowvcc_trace::Reg;
/// use lowvcc_uarch::scoreboard::{IrawWindow, Scoreboard};
///
/// let mut sb = Scoreboard::new(7);
/// let r = Reg::new(3).unwrap();
/// // 3-cycle producer with the paper's IRAW window (1 bypass, N = 1):
/// sb.set_producer(r, 3, Some(IrawWindow { bypass_levels: 1, bubble: 1 }));
/// assert_eq!(sb.pattern(r), 0b0001011); // Figure 8
/// // Cycle i+3: consumer may issue (gets the value via bypass)…
/// for _ in 0..3 { sb.tick(); }
/// assert!(sb.is_ready(r));
/// // …cycle i+4: blocked (would read a stabilizing RF entry)…
/// sb.tick();
/// assert!(!sb.is_ready(r));
/// // …cycle i+5 onwards: ready for good.
/// sb.tick();
/// assert!(sb.is_ready(r));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scoreboard {
    regs: Vec<ShiftReg>,
    width: u32,
    mask: u32,
    now: u64,
}

impl Scoreboard {
    /// Creates a scoreboard of `width`-bit shift registers, all ready.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds [`MAX_WIDTH`].
    #[must_use]
    pub fn new(width: u32) -> Self {
        assert!(
            width > 0 && width <= MAX_WIDTH,
            "width must be 1..={MAX_WIDTH}"
        );
        let mask = if width == 32 {
            u32::MAX
        } else {
            (1 << width) - 1
        };
        Self {
            regs: vec![
                ShiftReg {
                    bits: mask,
                    written_at: 0
                };
                usize::from(lowvcc_trace::NUM_REGS)
            ],
            width,
            mask,
            now: 0,
        }
    }

    /// The shift-register width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The pattern of `reg` as seen this cycle.
    fn current_bits(&self, reg: Reg) -> u32 {
        let r = self.regs[usize::from(reg.index())];
        shift_by(r.bits, self.now - r.written_at, self.width, self.mask)
    }

    /// Whether a consumer of `reg` may issue this cycle (the MSB).
    #[must_use]
    pub fn is_ready(&self, reg: Reg) -> bool {
        self.current_bits(reg) >> (self.width - 1) & 1 == 1
    }

    /// Raw pattern of `reg`'s shift register (LSB-aligned; for tests and
    /// debug displays).
    #[must_use]
    pub fn pattern(&self, reg: Reg) -> u32 {
        self.current_bits(reg)
    }

    /// Builds the MSB-first producer pattern
    /// `zeros(latency) ++ ones(bypass) ++ zeros(bubble) ++ ones(rest)`.
    ///
    /// Falls back to all-zeros (long-latency handling, paper §4.1.1) when
    /// the window does not fit the register width.
    fn build_pattern(&self, latency: u32, iraw: Option<IrawWindow>) -> u32 {
        let (bypass, bubble) = match iraw {
            Some(w) => (w.bypass_levels, w.bubble),
            None => (0, 0),
        };
        if latency + bypass + bubble >= self.width {
            // A `B`-bit register handles windows up to `B − 1` (the paper's
            // rule for latencies): the pattern needs at least one trailing
            // ready bit, or the sticky LSB would block the register
            // forever. Fall back to long-latency (completion-event) mode.
            return 0;
        }
        // All-ones, minus the `latency` zeros at the MSB end, minus the
        // `bubble` zeros sitting `bypass` positions below them. Branch-free
        // on the issue hot path (this runs for every producer).
        let mut bits = self.mask >> latency;
        if bubble > 0 {
            let shift = self.width - latency - bypass - bubble;
            bits &= !(((1 << bubble) - 1) << shift);
        }
        bits & self.mask
    }

    /// Records that a producer of `reg` with execution latency `latency`
    /// issued this cycle. With `iraw` set, the IRAW bubble is encoded.
    ///
    /// Latencies too long for the register width mark the register
    /// long-latency (all zeros); call [`Scoreboard::complete`] when the
    /// value arrives.
    pub fn set_producer(&mut self, reg: Reg, latency: u32, iraw: Option<IrawWindow>) {
        let bits = self.build_pattern(latency, iraw);
        self.regs[usize::from(reg.index())] = ShiftReg {
            bits,
            written_at: self.now,
        };
    }

    /// Marks `reg` long-latency (all zeros) pending a completion event.
    pub fn mark_long_latency(&mut self, reg: Reg) {
        self.regs[usize::from(reg.index())] = ShiftReg {
            bits: 0,
            written_at: self.now,
        };
    }

    /// Completion event for a long-latency producer (load miss return,
    /// divider finish): the value is available *now*, so consumers may use
    /// the bypass immediately, but with IRAW active the register file
    /// entry still stabilizes for `bubble` cycles.
    pub fn complete(&mut self, reg: Reg, iraw: Option<IrawWindow>) {
        let bits = self.build_pattern(0, iraw);
        self.regs[usize::from(reg.index())] = ShiftReg {
            bits,
            written_at: self.now,
        };
    }

    /// Advances one cycle: every register shifts left, keeping its LSB.
    /// With the lazy representation this is a single counter increment.
    pub fn tick(&mut self) {
        self.now += 1;
    }

    /// Advances `cycles` at once — same O(1) cost as one [`tick`].
    /// The engine's cycle-skipping fast path jumps stalls with this.
    ///
    /// [`tick`]: Scoreboard::tick
    pub fn advance(&mut self, cycles: u64) {
        self.now += cycles;
    }

    /// Cycles until `reg` becomes ready, scanning from the MSB
    /// (`0` when ready now; `width` when all-zero / long-latency).
    #[must_use]
    pub fn cycles_until_ready(&self, reg: Reg) -> u32 {
        let bits = self.current_bits(reg);
        for k in 0..self.width {
            if bits >> (self.width - 1 - k) & 1 == 1 {
                return k;
            }
        }
        self.width
    }

    /// Cycles until the *readiness* of `reg` next changes value, in either
    /// direction (a bubble closing counts as much as a producer arriving).
    /// `None` means the register holds its current readiness forever
    /// absent a new write — all-ones, or all-zeros awaiting a completion
    /// event. The engine's fast path uses this to bound how far it may
    /// skip while the issue decision provably cannot change.
    #[must_use]
    pub fn cycles_until_change(&self, reg: Reg) -> Option<u32> {
        let bits = self.current_bits(reg);
        let cur = bits >> (self.width - 1) & 1;
        // The readiness observed k cycles from now is bit width-1-k; from
        // k = width-1 onwards it is the sticky LSB, so scanning the word
        // once covers the whole future.
        (1..self.width).find(|&k| bits >> (self.width - 1 - k) & 1 != cur)
    }

    /// Resets every register to ready (pipeline flush).
    pub fn flush(&mut self) {
        for r in &mut self.regs {
            *r = ShiftReg {
                bits: self.mask,
                written_at: self.now,
            };
        }
    }

    /// Restores the freshly-constructed state in place: all registers
    /// ready *and* the clock rewound to zero (unlike [`Scoreboard::flush`],
    /// which keeps the current cycle). No allocation.
    pub fn reset(&mut self) {
        for r in &mut self.regs {
            *r = ShiftReg {
                bits: self.mask,
                written_at: 0,
            };
        }
        self.now = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i).unwrap()
    }

    #[test]
    fn baseline_pattern_matches_figure6() {
        // 3-cycle producer, 5-bit register: 00011.
        let mut sb = Scoreboard::new(5);
        sb.set_producer(r(0), 3, None);
        assert_eq!(sb.pattern(r(0)), 0b00011);
        // Shifts: 00111, 01111, 11111 (ready at i+3).
        sb.tick();
        assert_eq!(sb.pattern(r(0)), 0b00111);
        sb.tick();
        assert_eq!(sb.pattern(r(0)), 0b01111);
        assert!(!sb.is_ready(r(0)));
        sb.tick();
        assert_eq!(sb.pattern(r(0)), 0b11111);
        assert!(sb.is_ready(r(0)));
    }

    #[test]
    fn iraw_pattern_matches_figure8() {
        // 3-cycle producer, 1 bypass level, N=1, 7-bit register: 0001011.
        let mut sb = Scoreboard::new(7);
        let w = IrawWindow {
            bypass_levels: 1,
            bubble: 1,
        };
        sb.set_producer(r(1), 3, Some(w));
        assert_eq!(sb.pattern(r(1)), 0b0001011);
        // Figure 8 sequence: ready bits at i+3, blocked at i+4, ready i+5+.
        let expected = [
            (0b0010111, false), // i+1
            (0b0101111, false), // i+2
            (0b1011111, true),  // i+3  (bypass)
            (0b0111111, false), // i+4  (bubble: RF stabilizing)
            (0b1111111, true),  // i+5
            (0b1111111, true),  // i+6 (sticky)
        ];
        for (bits, ready) in expected {
            sb.tick();
            assert_eq!(sb.pattern(r(1)), bits);
            assert_eq!(sb.is_ready(r(1)), ready);
        }
    }

    #[test]
    fn multi_cycle_bubble_for_larger_n() {
        // N=2 (paper §4.1.3: lower Vcc / other nodes), 2-cycle producer,
        // 1 bypass level, 8-bit register: 00101111 → two blocked slots.
        let mut sb = Scoreboard::new(8);
        sb.set_producer(
            r(2),
            2,
            Some(IrawWindow {
                bypass_levels: 1,
                bubble: 2,
            }),
        );
        assert_eq!(sb.pattern(r(2)), 0b0010_0111);
        let readiness: Vec<bool> = (0..6)
            .map(|_| {
                sb.tick();
                sb.is_ready(r(2))
            })
            .collect();
        assert_eq!(readiness, vec![false, true, false, false, true, true]);
    }

    #[test]
    fn single_cycle_producer_with_iraw() {
        // 1-cycle ALU, 1 bypass, N=1: 1011111 — consumers may issue
        // back-to-back (bypass), then one blocked slot.
        let mut sb = Scoreboard::new(7);
        sb.set_producer(
            r(3),
            1,
            Some(IrawWindow {
                bypass_levels: 1,
                bubble: 1,
            }),
        );
        assert_eq!(sb.pattern(r(3)), 0b0101111);
        assert!(!sb.is_ready(r(3)));
        sb.tick();
        assert!(sb.is_ready(r(3))); // bypass slot
        sb.tick();
        assert!(!sb.is_ready(r(3))); // bubble
        sb.tick();
        assert!(sb.is_ready(r(3)));
    }

    #[test]
    fn long_latency_goes_all_zero_then_completes() {
        let mut sb = Scoreboard::new(7);
        sb.set_producer(r(4), 30, None); // exceeds width → all zeros
        assert_eq!(sb.pattern(r(4)), 0);
        for _ in 0..20 {
            sb.tick();
            assert!(!sb.is_ready(r(4)), "stays not-ready until the event");
        }
        // Event arrives with IRAW active: bypass now, bubble next.
        sb.complete(
            r(4),
            Some(IrawWindow {
                bypass_levels: 1,
                bubble: 1,
            }),
        );
        assert!(sb.is_ready(r(4)));
        sb.tick();
        assert!(!sb.is_ready(r(4)));
        sb.tick();
        assert!(sb.is_ready(r(4)));
    }

    #[test]
    fn completion_without_iraw_is_immediately_ready() {
        let mut sb = Scoreboard::new(5);
        sb.mark_long_latency(r(5));
        assert!(!sb.is_ready(r(5)));
        sb.complete(r(5), None);
        assert!(sb.is_ready(r(5)));
        sb.tick();
        assert!(sb.is_ready(r(5)));
    }

    #[test]
    fn cycles_until_ready_counts_msb_distance() {
        let mut sb = Scoreboard::new(7);
        sb.set_producer(
            r(6),
            3,
            Some(IrawWindow {
                bypass_levels: 1,
                bubble: 1,
            }),
        );
        assert_eq!(sb.cycles_until_ready(r(6)), 3);
        sb.tick();
        assert_eq!(sb.cycles_until_ready(r(6)), 2);
        sb.mark_long_latency(r(6));
        assert_eq!(sb.cycles_until_ready(r(6)), 7);
    }

    #[test]
    fn flush_makes_everything_ready() {
        let mut sb = Scoreboard::new(7);
        sb.set_producer(r(0), 4, None);
        sb.mark_long_latency(r(1));
        sb.flush();
        assert!(sb.is_ready(r(0)));
        assert!(sb.is_ready(r(1)));
    }

    #[test]
    fn fresh_scoreboard_all_ready() {
        let sb = Scoreboard::new(7);
        for reg in Reg::all() {
            assert!(sb.is_ready(reg));
        }
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        let _ = Scoreboard::new(0);
    }

    #[test]
    fn advance_matches_repeated_ticks() {
        let w = IrawWindow {
            bypass_levels: 1,
            bubble: 1,
        };
        for jump in [1u64, 2, 3, 5, 7, 32, 1000] {
            let mut ticked = Scoreboard::new(7);
            let mut jumped = Scoreboard::new(7);
            ticked.set_producer(r(1), 3, Some(w));
            jumped.set_producer(r(1), 3, Some(w));
            for _ in 0..jump {
                ticked.tick();
            }
            jumped.advance(jump);
            assert_eq!(ticked.pattern(r(1)), jumped.pattern(r(1)), "jump {jump}");
            assert_eq!(ticked.is_ready(r(1)), jumped.is_ready(r(1)));
        }
    }

    #[test]
    fn lazy_patterns_saturate_by_lsb() {
        let mut sb = Scoreboard::new(7);
        sb.set_producer(r(0), 3, None); // LSB 1 → saturates to all-ones
        sb.mark_long_latency(r(1)); // LSB 0 → stays all-zeros
        sb.advance(100);
        assert_eq!(sb.pattern(r(0)), 0b111_1111);
        assert_eq!(sb.pattern(r(1)), 0);
    }

    #[test]
    fn cycles_until_change_tracks_toggles() {
        let mut sb = Scoreboard::new(7);
        sb.set_producer(
            r(2),
            3,
            Some(IrawWindow {
                bypass_levels: 1,
                bubble: 1,
            }),
        );
        // 0001011: not ready now, first change (→ready) in 3 cycles.
        assert_eq!(sb.cycles_until_change(r(2)), Some(3));
        sb.advance(3);
        // 1011111: ready now, bubble (→blocked) next cycle.
        assert_eq!(sb.cycles_until_change(r(2)), Some(1));
        sb.tick();
        assert_eq!(sb.cycles_until_change(r(2)), Some(1));
        sb.tick();
        // 1111111: ready forever.
        assert_eq!(sb.cycles_until_change(r(2)), None);
        sb.mark_long_latency(r(2));
        // All zeros: blocked until a completion event, never by shifting.
        assert_eq!(sb.cycles_until_change(r(2)), None);
    }

    #[test]
    fn writes_after_advance_use_the_current_cycle() {
        let mut sb = Scoreboard::new(7);
        sb.advance(500);
        sb.set_producer(r(3), 3, None);
        assert_eq!(sb.pattern(r(3)), 0b0001111);
        sb.tick();
        assert_eq!(sb.pattern(r(3)), 0b0011111);
    }

    #[test]
    fn deactivating_iraw_equals_baseline() {
        // §4.1.3: at ≥600 mV IRAW is deactivated "by setting properly the
        // shift register" — bubble 0 must reproduce the baseline pattern
        // with the bypass slot merged into the trailing ones.
        let mut a = Scoreboard::new(7);
        let mut b = Scoreboard::new(7);
        a.set_producer(
            r(0),
            3,
            Some(IrawWindow {
                bypass_levels: 1,
                bubble: 0,
            }),
        );
        b.set_producer(r(0), 3, None);
        assert_eq!(a.pattern(r(0)), b.pattern(r(0))); // 0001111
        assert_eq!(a.pattern(r(0)), 0b0001111);
    }
}
