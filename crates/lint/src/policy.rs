//! Per-file rule policy: which invariants apply where.
//!
//! The scopes mirror the workspace layering (see `DESIGN.md` §10):
//!
//! * **Determinism** (`no-std-hash`) binds the result-producing crates
//!   — `core`, `baselines` and `bench`'s experiment drivers — where
//!   randomized hash iteration order could leak into published
//!   numbers, plus serve's sharding layer (`shard.rs`, `router.rs`):
//!   the ring partition and the router's merge order must be pure
//!   functions of configuration, so a `RandomState` leak there would
//!   scatter keys across shards between runs. Infrastructure code
//!   (`trace` synthesis internals, the store's keyed maps, serve's
//!   connection registry in `conn.rs`) may hash freely: it never
//!   iterates into an output.
//! * **Determinism** (`no-wallclock`) binds everything *except* the
//!   three whitelisted timing modules: the perf trajectory recorder,
//!   the serve crate (socket timeouts and drain deadlines), and the
//!   store admin's atime-based LRU.
//! * **Panic-freedom** (`no-panic`) binds the serve crate and the
//!   result-store hot path (`store.rs`, `store_io.rs`): a daemon and
//!   its cache must degrade, never die.
//! * **Typed errors** (`no-string-error`) and **no direct terminal
//!   output** (`no-print`) bind every library source file; binaries
//!   own the terminal and their own exit codes.
//!
//! Test directories, examples, benches, vendored code and the build
//! tree are never scanned; `#[cfg(test)]` regions inside scanned files
//! are masked at the token level.

/// Which rules apply to one file. Layering is checked separately from
/// manifests, not per source file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Policy {
    /// Ban `HashMap` / `HashSet`.
    pub no_std_hash: bool,
    /// Ban `Instant::now` / `SystemTime`.
    pub no_wallclock: bool,
    /// Ban `.unwrap()` / `.expect()` / panicking macros.
    pub no_panic: bool,
    /// Ban `Result<_, String>` in public signatures.
    pub no_string_error: bool,
    /// Ban `println!` / `eprintln!` and friends.
    pub no_print: bool,
}

impl Policy {
    /// True when no rule applies (the file can be skipped).
    pub fn is_empty(&self) -> bool {
        *self == Policy::default()
    }
}

/// Returns the policy for a workspace-relative path (forward slashes),
/// or `None` when the file is out of scope entirely.
pub fn policy_for(rel: &str) -> Option<Policy> {
    // Vendored and generated code is out of scope.
    if rel.starts_with("third_party/") || rel.starts_with("target/") {
        return None;
    }
    // Whole-file test/bench/example trees are test code.
    if rel.contains("/tests/") || rel.contains("/examples/") || rel.contains("/benches/") {
        return None;
    }
    // Only library/binary sources are scanned.
    let in_src = rel.starts_with("src/") || (rel.starts_with("crates/") && rel.contains("/src/"));
    if !in_src || !rel.ends_with(".rs") {
        return None;
    }

    let is_bin = rel.contains("/src/bin/") || rel.ends_with("/main.rs");

    let no_std_hash = rel.starts_with("crates/core/src/")
        || rel.starts_with("crates/baselines/src/")
        || rel.starts_with("crates/bench/src/experiments")
        || rel == "crates/serve/src/shard.rs"
        || rel == "crates/serve/src/router.rs";

    let wallclock_whitelisted = rel.starts_with("crates/serve/src/")
        || rel == "crates/bench/src/trajectory.rs"
        || rel == "crates/bench/src/admin.rs";

    let no_panic = rel.starts_with("crates/serve/src/")
        || rel == "crates/bench/src/store.rs"
        || rel == "crates/bench/src/store_io.rs";

    Some(Policy {
        no_std_hash,
        no_wallclock: !wallclock_whitelisted,
        no_panic,
        no_string_error: !is_bin,
        no_print: !is_bin,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_match_the_design() {
        let core = policy_for("crates/core/src/engine.rs").unwrap();
        assert!(core.no_std_hash && core.no_wallclock && !core.no_panic);

        let trace = policy_for("crates/trace/src/stats.rs").unwrap();
        assert!(
            !trace.no_std_hash,
            "trace may hash: it never iterates into results"
        );

        let serve = policy_for("crates/serve/src/lib.rs").unwrap();
        assert!(serve.no_panic && !serve.no_wallclock && serve.no_print);

        let shard = policy_for("crates/serve/src/shard.rs").unwrap();
        assert!(
            shard.no_std_hash && shard.no_panic,
            "the ring partition must not depend on RandomState"
        );
        let router = policy_for("crates/serve/src/router.rs").unwrap();
        assert!(
            router.no_std_hash,
            "router merge order must not depend on RandomState"
        );
        assert!(
            router.no_panic,
            "the failover path must degrade, never panic"
        );
        let conn = policy_for("crates/serve/src/conn.rs").unwrap();
        assert!(
            !conn.no_std_hash,
            "the connection registry may hash: it never iterates into results"
        );

        let store = policy_for("crates/bench/src/store.rs").unwrap();
        assert!(store.no_panic && !store.no_std_hash);

        let traj = policy_for("crates/bench/src/trajectory.rs").unwrap();
        assert!(
            !traj.no_wallclock,
            "trajectory is a whitelisted timing module"
        );

        let exp = policy_for("crates/bench/src/experiments/mod.rs").unwrap();
        assert!(exp.no_std_hash && exp.no_wallclock);

        let bin = policy_for("crates/bench/src/bin/experiments.rs").unwrap();
        assert!(!bin.no_print && !bin.no_string_error && bin.no_wallclock);
    }

    #[test]
    fn out_of_scope_paths_are_skipped() {
        assert!(policy_for("crates/bench/tests/chaos.rs").is_none());
        assert!(policy_for("third_party/criterion/src/lib.rs").is_none());
        assert!(policy_for("examples/sweep.rs").is_none());
        assert!(policy_for("crates/core/benches/engine.rs").is_none());
        assert!(policy_for("README.md").is_none());
    }
}
