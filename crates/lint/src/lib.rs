//! lowvcc-lint: the in-repo invariant checker.
//!
//! Enforces the workspace's determinism, panic-freedom, typed-error
//! and layering rules (see `DESIGN.md` §10). The pipeline per file:
//! lex → mask `#[cfg(test)]` regions → run the rules the path's
//! policy enables → apply inline waivers → report what is left,
//! plus meta-diagnostics for malformed, unknown-rule or stale
//! waivers. Layering is checked once, from the workspace manifests.
//!
//! A waiver is a plain `//` comment of the form
//! `lint: allow(rule-name) -- reason` and suppresses the named rules
//! on its own line and the line directly below. Doc comments cannot
//! waive, the reason is mandatory, and a waiver that suppresses
//! nothing is itself an error — so waivers cannot rot in place.

pub mod layering;
pub mod lexer;
pub mod policy;
pub mod rules;

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// One reported problem, pointing at a workspace-relative file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (one of [`rules::RULE_NAMES`] or a meta-rule:
    /// `layering`, `waiver-syntax`, `waiver-unknown-rule`,
    /// `stale-waiver`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Lints one file's source text under the policy for `rel`.
/// Returns an empty vec when the path is out of scope.
pub fn lint_source(rel: &str, source: &str) -> Vec<Diagnostic> {
    let Some(policy) = policy::policy_for(rel) else {
        return Vec::new();
    };
    if policy.is_empty() {
        return Vec::new();
    }
    let lexed = lexer::lex(source);
    let mask = lexer::test_mask(&lexed.tokens);
    let raw = rules::check(&lexed.tokens, &mask, &policy);

    let mut out = Vec::new();
    let mut waiver_used = vec![false; lexed.waivers.len()];

    'diag: for (line, rule, message) in raw {
        for (w, waiver) in lexed.waivers.iter().enumerate() {
            let covers = waiver.line == line || waiver.line + 1 == line;
            if covers && waiver.rules.iter().any(|r| r == rule) {
                waiver_used[w] = true;
                continue 'diag;
            }
        }
        out.push(Diagnostic {
            file: rel.to_string(),
            line,
            rule,
            message,
        });
    }

    for (line, problem) in &lexed.waiver_errors {
        out.push(Diagnostic {
            file: rel.to_string(),
            line: *line,
            rule: "waiver-syntax",
            message: problem.clone(),
        });
    }
    for (w, waiver) in lexed.waivers.iter().enumerate() {
        for r in &waiver.rules {
            if !rules::RULE_NAMES.contains(&r.as_str()) {
                out.push(Diagnostic {
                    file: rel.to_string(),
                    line: waiver.line,
                    rule: "waiver-unknown-rule",
                    message: format!("waiver names unknown rule `{r}`"),
                });
                // An unknown-rule waiver is reported as such, not
                // additionally as stale.
                waiver_used[w] = true;
            }
        }
        if !waiver_used[w] {
            out.push(Diagnostic {
                file: rel.to_string(),
                line: waiver.line,
                rule: "stale-waiver",
                message: format!(
                    "waiver for {} suppresses nothing here; delete it",
                    waiver.rules.join(", ")
                ),
            });
        }
    }

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Lints every in-scope source file under `root` plus the manifest
/// layering, returning all diagnostics sorted by file then line.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_rs_files(root, Path::new(""), &mut files)?;
    files.sort();

    let mut out = Vec::new();
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        out.extend(lint_source(rel, &source));
    }
    for v in layering::check_layering(root)? {
        out.push(Diagnostic {
            file: v.manifest,
            line: 1,
            rule: "layering",
            message: format!("{} -> {}: {}", v.from, v.to, v.reason),
        });
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(out)
}

/// Recursive walk collecting `.rs` paths, skipping build products,
/// VCS metadata and vendored code at the directory level.
fn collect_rs_files(root: &Path, rel: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let dir = root.join(rel);
    for entry in fs::read_dir(&dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with('.') || matches!(name, "target" | "third_party") {
            continue;
        }
        let sub = rel.join(name);
        let ty = entry.file_type()?;
        if ty.is_dir() {
            collect_rs_files(root, &sub, out)?;
        } else if ty.is_file() && name.ends_with(".rs") {
            // Normalize to forward slashes for policy matching.
            let rel_str = sub
                .to_str()
                .map(|s| s.replace('\\', "/"))
                .unwrap_or_default();
            if !rel_str.is_empty() {
                out.push(rel_str);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_covers_its_own_line_and_the_next() {
        let src = "\
// lint: allow(no-print) -- operator log\n\
fn f() { eprintln!(\"x\"); }\n\
fn g() { eprintln!(\"y\"); }\n";
        let diags = lint_source("crates/serve/src/lib.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 3);
        assert_eq!(diags[0].rule, "no-print");
    }

    #[test]
    fn stale_waivers_are_reported() {
        let src = "// lint: allow(no-print) -- nothing here prints\nfn f() {}\n";
        let diags = lint_source("crates/serve/src/lib.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "stale-waiver");
    }

    #[test]
    fn unknown_rule_waivers_are_reported() {
        let src = "fn f() {} // lint: allow(no-such-rule) -- oops\n";
        let diags = lint_source("crates/serve/src/lib.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "waiver-unknown-rule");
    }

    #[test]
    fn out_of_scope_paths_yield_nothing() {
        let src = "fn f() { x.unwrap(); eprintln!(\"y\"); }";
        assert!(lint_source("crates/serve/tests/smoke.rs", src).is_empty());
        assert!(lint_source("third_party/criterion/src/lib.rs", src).is_empty());
    }
}
