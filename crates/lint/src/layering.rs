//! Layering rule: crate dependency edges must point down the stack.
//!
//! The workspace is ranked:
//!
//! ```text
//! rank 0   lowvcc-sram    lowvcc-trace      (leaf models)
//! rank 1   lowvcc-energy  lowvcc-uarch      (derived models)
//! rank 2   lowvcc-core                      (the simulator engine)
//! rank 3   lowvcc-baselines                 (paper mechanisms)
//! rank 4   lowvcc-bench                     (experiments, store, suites)
//! rank 5   lowvcc-serve                     (the daemon)
//! rank 6   lowvcc (facade)                  (re-exports)
//! ```
//!
//! Every `lowvcc-*` dependency edge — normal, dev or build — must go
//! to a **strictly lower** rank; an upward or sideways edge inverts
//! the layering and is rejected. `lowvcc-lint` itself is isolated: it
//! must not appear on either end of any workspace dependency edge, so
//! the checker can never become load-bearing for the thing it checks.
//!
//! The manifests are parsed with a deliberately small TOML subset
//! reader: section headers and `name = …` keys. Only the
//! `[dependencies]` / `[dev-dependencies]` / `[build-dependencies]`
//! sections contribute edges — in particular the root manifest's
//! `[workspace.dependencies]` table is a version catalogue, not an
//! edge list, and is ignored.

use std::fs;
use std::io;
use std::path::Path;

/// A layering violation, reported against the offending manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayeringViolation {
    /// Workspace-relative manifest path.
    pub manifest: String,
    /// The depending package.
    pub from: String,
    /// The depended-upon package.
    pub to: String,
    /// Why the edge is illegal.
    pub reason: String,
}

/// Stack rank of a workspace package, or `None` for the isolated lint
/// crate and non-workspace names.
fn rank(package: &str) -> Option<u32> {
    match package {
        "lowvcc-sram" | "lowvcc-trace" => Some(0),
        "lowvcc-energy" | "lowvcc-uarch" => Some(1),
        "lowvcc-core" => Some(2),
        "lowvcc-baselines" => Some(3),
        "lowvcc-bench" => Some(4),
        "lowvcc-serve" => Some(5),
        "lowvcc" => Some(6),
        _ => None,
    }
}

/// One parsed manifest: package name plus its `lowvcc*` dep edges.
struct Manifest {
    rel: String,
    package: String,
    deps: Vec<String>,
}

/// Checks every workspace manifest under `root` and returns all
/// layering violations, sorted by manifest path.
pub fn check_layering(root: &Path) -> io::Result<Vec<LayeringViolation>> {
    let mut manifests = Vec::new();
    if let Some(m) = parse_manifest(root, "Cargo.toml")? {
        manifests.push(m);
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<_> = fs::read_dir(&crates_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .collect();
        entries.sort();
        for dir in entries {
            let rel = format!(
                "crates/{}/Cargo.toml",
                dir.file_name().and_then(|n| n.to_str()).unwrap_or_default()
            );
            if dir.join("Cargo.toml").is_file() {
                if let Some(m) = parse_manifest(root, &rel)? {
                    manifests.push(m);
                }
            }
        }
    }

    let mut violations = Vec::new();
    for m in &manifests {
        let from_rank = rank(&m.package);
        for dep in &m.deps {
            let to_rank = rank(dep);
            if m.package == "lowvcc-lint" {
                violations.push(violation(
                    m,
                    dep,
                    "lowvcc-lint is isolated: it must not depend on workspace crates",
                ));
                continue;
            }
            if dep == "lowvcc-lint" {
                violations.push(violation(
                    m,
                    dep,
                    "lowvcc-lint is isolated: workspace crates must not depend on it",
                ));
                continue;
            }
            match (from_rank, to_rank) {
                (Some(f), Some(t)) if t >= f => {
                    violations.push(violation(
                        m,
                        dep,
                        &format!(
                            "edge inverts the layering: rank {f} may only depend on rank < {f}, \
                             but {dep} has rank {t}"
                        ),
                    ));
                }
                (None, _) if m.package.starts_with("lowvcc") => {
                    violations.push(violation(m, dep, "package is not in the layering map"));
                }
                (_, None) if dep.starts_with("lowvcc") => {
                    violations.push(violation(m, dep, "dependency is not in the layering map"));
                }
                _ => {}
            }
        }
    }
    violations.sort_by(|a, b| (&a.manifest, &a.to).cmp(&(&b.manifest, &b.to)));
    Ok(violations)
}

fn violation(m: &Manifest, dep: &str, reason: &str) -> LayeringViolation {
    LayeringViolation {
        manifest: m.rel.clone(),
        from: m.package.clone(),
        to: dep.to_string(),
        reason: reason.to_string(),
    }
}

/// Parses one manifest; `None` when it has no `[package]` section
/// (a virtual workspace root would have none — ours also carries the
/// facade package, so it parses).
fn parse_manifest(root: &Path, rel: &str) -> io::Result<Option<Manifest>> {
    let text = fs::read_to_string(root.join(rel))?;
    let mut package = None;
    let mut deps = Vec::new();
    let mut section = String::new();
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') && line.ends_with(']') {
            section = line[1..line.len() - 1].trim().to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        if section == "package" && key == "name" {
            package = Some(value.trim_matches('"').to_string());
        }
        // Only real edge sections: the root's [workspace.dependencies]
        // is a version catalogue, not a dependency.
        let is_edge_section = matches!(
            section.as_str(),
            "dependencies" | "dev-dependencies" | "build-dependencies"
        );
        if is_edge_section {
            // `lowvcc-core.workspace = true` spells the dep in the key.
            let name = key.split('.').next().unwrap_or(key).trim();
            if name.starts_with("lowvcc") {
                deps.push(name.to_string());
            }
        }
    }
    Ok(package.map(|package| Manifest {
        rel: rel.to_string(),
        package,
        deps,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn workspace_root() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
    }

    #[test]
    fn the_real_workspace_layers_cleanly() {
        let violations = check_layering(&workspace_root()).unwrap();
        assert!(
            violations.is_empty(),
            "layering violations in the real workspace: {violations:?}"
        );
    }

    #[test]
    fn rank_map_covers_every_workspace_crate() {
        for p in [
            "lowvcc-sram",
            "lowvcc-trace",
            "lowvcc-energy",
            "lowvcc-uarch",
            "lowvcc-core",
            "lowvcc-baselines",
            "lowvcc-bench",
            "lowvcc-serve",
            "lowvcc",
        ] {
            assert!(rank(p).is_some(), "{p} missing from the rank map");
        }
        assert!(rank("lowvcc-lint").is_none(), "the lint crate is isolated");
        assert!(rank("criterion-shim").is_none());
    }

    #[test]
    fn inverted_edges_are_rejected() {
        let dir = std::env::temp_dir().join("lowvcc-lint-layering-test");
        let crates = dir.join("crates/sram");
        fs::create_dir_all(&crates).unwrap();
        fs::write(
            dir.join("Cargo.toml"),
            "[package]\nname = \"lowvcc\"\n[dependencies]\nlowvcc-sram.workspace = true\n",
        )
        .unwrap();
        fs::write(
            crates.join("Cargo.toml"),
            "[package]\nname = \"lowvcc-sram\"\n[dependencies]\nlowvcc-serve = { path = \"x\" }\n",
        )
        .unwrap();
        let violations = check_layering(&dir).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].from, "lowvcc-sram");
        assert_eq!(violations[0].to, "lowvcc-serve");
        assert!(violations[0].reason.contains("inverts the layering"));
        fs::remove_dir_all(&dir).unwrap();
    }
}
