//! A hand-rolled Rust lexer, just deep enough to lint honestly.
//!
//! The rule engine needs to tell an `unwrap` *identifier* from the text
//! `"// unwrap()"` inside a string literal, a `'a` lifetime from a
//! `'a'` char literal, and real code from `#[cfg(test)]` regions. A
//! full parser would be overkill; a token stream with accurate line
//! numbers is exactly enough. Handled: line comments (including doc
//! comments), nested block comments, string / raw-string / byte-string
//! / char literals, lifetimes, raw identifiers, numbers with suffixes,
//! and the two compound puncts the rules care about (`::`, `->`).
//!
//! The lexer also extracts **waivers** from plain `//` comments (doc
//! comments deliberately cannot waive — documentation must be able to
//! *describe* the waiver syntax without enacting it). A waiver reads
//! `lint: allow(rule-name) -- reason` after the `//` and suppresses the
//! named rules on its own line and the line below; the reason is
//! mandatory. Malformed waivers are reported, never silently ignored.

/// What a token is; the rules dispatch on this plus the text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `pub`, `fn`, `HashMap`, …).
    Ident,
    /// A lifetime such as `'a` or `'static` (without the quote).
    Lifetime,
    /// String, raw-string or byte-string literal (contents kept).
    Str,
    /// Character or byte literal.
    Char,
    /// Numeric literal, suffix included.
    Num,
    /// Punctuation: single characters, plus `::` and `->` merged.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Exact source text (raw identifiers are stored without `r#`).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// A parsed `lint: allow(...) -- reason` waiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Line the waiver comment starts on. It suppresses matching
    /// diagnostics on this line and the next one.
    pub line: u32,
    /// Rules the waiver names.
    pub rules: Vec<String>,
    /// The mandatory justification after `--`.
    pub reason: String,
}

/// Everything the lexer extracts from one file.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// The token stream, comments stripped.
    pub tokens: Vec<Token>,
    /// Well-formed waivers found in plain `//` comments.
    pub waivers: Vec<Waiver>,
    /// Malformed waiver attempts: `(line, what is wrong)`.
    pub waiver_errors: Vec<(u32, String)>,
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: LexOutput,
}

/// Lexes one source file. Never fails: unterminated constructs simply
/// end at EOF (the compiler, not the linter, owns syntax errors).
pub fn lex(source: &str) -> LexOutput {
    let mut lx = Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: LexOutput::default(),
    };
    lx.run();
    lx.out
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                '\'' => self.quote(),
                'r' | 'b' if self.raw_or_byte_literal() => {}
                c if c.is_alphabetic() || c == '_' => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                ':' if self.peek(1) == Some(':') => {
                    self.bump();
                    self.bump();
                    self.push(TokenKind::Punct, "::".to_string(), line);
                }
                '-' if self.peek(1) == Some('>') => {
                    self.bump();
                    self.bump();
                    self.push(TokenKind::Punct, "->".to_string(), line);
                }
                c => {
                    self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        // `///` and `//!` are documentation: they may *describe* waiver
        // syntax, so they must not be able to enact it.
        let doc = matches!(self.peek(0), Some('/' | '!'));
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        if !doc {
            self.waiver(line, &text);
        }
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    fn waiver(&mut self, line: u32, text: &str) {
        let Some(rest) = text.trim_start().strip_prefix("lint:") else {
            return;
        };
        let rest = rest.trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            self.out.waiver_errors.push((
                line,
                "unknown lint directive; only `allow(rule, ...) -- reason` is supported"
                    .to_string(),
            ));
            return;
        };
        let Some(close) = args.find(')') else {
            self.out
                .waiver_errors
                .push((line, "unclosed `allow(` in waiver".to_string()));
            return;
        };
        let rules: Vec<String> = args[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            self.out
                .waiver_errors
                .push((line, "waiver names no rules".to_string()));
            return;
        }
        let tail = args[close + 1..].trim_start();
        let reason = tail.strip_prefix("--").map(str::trim).unwrap_or("");
        if reason.is_empty() {
            self.out.waiver_errors.push((
                line,
                "waiver needs a justification: `-- reason` after the rule list".to_string(),
            ));
            return;
        }
        self.out.waivers.push(Waiver {
            line,
            rules,
            reason: reason.to_string(),
        });
    }

    fn string_literal(&mut self) {
        let line = self.line;
        let mut text = String::new();
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push('\\');
                        text.push(esc);
                    }
                }
                '"' => break,
                c => text.push(c),
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    /// `'a` lifetime, `'a'` / `'\n'` char literal, or a lone `'`.
    fn quote(&mut self) {
        let line = self.line;
        self.bump(); // the quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume the escape, then
                // everything up to the closing quote (covers \u{...}).
                let mut text = String::new();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                    text.push(c);
                }
                self.push(TokenKind::Char, text, line);
            }
            Some(c) if c.is_alphanumeric() || c == '_' => {
                let mut name = String::new();
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        name.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if self.peek(0) == Some('\'') {
                    self.bump();
                    self.push(TokenKind::Char, name, line);
                } else {
                    self.push(TokenKind::Lifetime, name, line);
                }
            }
            Some(c) => {
                // Punctuation char literal such as '(' or ' '.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokenKind::Char, c.to_string(), line);
            }
            None => self.push(TokenKind::Punct, "'".to_string(), line),
        }
    }

    /// Tries `r"…"`, `r#"…"#`, `br"…"`, `b"…"`, and raw identifiers
    /// (`r#match`). Returns false when the `r`/`b` is an ordinary
    /// identifier start, leaving the position untouched.
    fn raw_or_byte_literal(&mut self) -> bool {
        let line = self.line;
        let mut i = 0;
        if self.peek(i) == Some('b') {
            i += 1;
        }
        let raw = self.peek(i) == Some('r');
        if raw {
            i += 1;
        }
        let mut hashes = 0usize;
        while self.peek(i + hashes) == Some('#') {
            hashes += 1;
        }
        if raw && self.peek(i + hashes) == Some('"') {
            for _ in 0..i + hashes + 1 {
                self.bump();
            }
            let mut text = String::new();
            'outer: while let Some(c) = self.bump() {
                if c == '"' {
                    for h in 0..hashes {
                        if self.peek(h) != Some('#') {
                            text.push('"');
                            for _ in 0..h {
                                text.push('#');
                                self.bump();
                            }
                            continue 'outer;
                        }
                    }
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
                text.push(c);
            }
            self.push(TokenKind::Str, text, line);
            return true;
        }
        if i == 1 && self.peek(0) == Some('b') && self.peek(1) == Some('"') {
            self.bump(); // the b prefix; string_literal eats the rest
            self.string_literal();
            return true;
        }
        if raw
            && hashes == 1
            && self
                .peek(i + 1)
                .is_some_and(|c| c.is_alphabetic() || c == '_')
        {
            // Raw identifier r#while — token text without the prefix.
            for _ in 0..i + 1 {
                self.bump();
            }
            self.ident();
            return true;
        }
        false
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut prev = ' ';
        while let Some(c) = self.peek(0) {
            let take = c.is_ascii_alphanumeric()
                || c == '_'
                // `1.5` continues the number; `1.max(2)` and `0..n` do not.
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()))
                // Exponent sign: 1.5e-3.
                || ((c == '+' || c == '-') && matches!(prev, 'e' | 'E'));
            if !take {
                break;
            }
            text.push(c);
            prev = c;
            self.bump();
        }
        self.push(TokenKind::Num, text, line);
    }
}

/// Marks every token inside a `#[test]` / `#[cfg(test)]`-gated item.
///
/// The panic-freedom and determinism rules exempt test code; this walks
/// the token stream, finds test attributes, and masks the attribute
/// plus the item it gates (up to the matching closing brace, or the
/// terminating semicolon for brace-less items). `#[cfg(not(test))]` is
/// *not* a test region — the `not` keeps it live code.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].text == "#" && tokens.get(i + 1).is_some_and(|t| t.text == "[")) {
            i += 1;
            continue;
        }
        let Some((attr_end, idents)) = attribute_span(tokens, i + 1) else {
            i += 1;
            continue;
        };
        let is_test = idents.iter().any(|t| t == "test") && !idents.iter().any(|t| t == "not");
        if !is_test {
            i = attr_end + 1;
            continue;
        }
        // Skip any further stacked attributes before the item.
        let mut j = attr_end + 1;
        while tokens.get(j).is_some_and(|t| t.text == "#")
            && tokens.get(j + 1).is_some_and(|t| t.text == "[")
        {
            match attribute_span(tokens, j + 1) {
                Some((end, _)) => j = end + 1,
                None => break,
            }
        }
        let end = item_end(tokens, j);
        for m in mask.iter_mut().take(end + 1).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// From the index of an attribute's `[`, returns the index of its
/// matching `]` and the identifiers inside.
fn attribute_span(tokens: &[Token], open: usize) -> Option<(usize, Vec<String>)> {
    let mut depth = 0i32;
    let mut idents = Vec::new();
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, "[") => depth += 1,
            (TokenKind::Punct, "]") => {
                depth -= 1;
                if depth == 0 {
                    return Some((k, idents));
                }
            }
            (TokenKind::Ident, name) => idents.push(name.to_string()),
            _ => {}
        }
    }
    None
}

/// Index of the last token of the item starting at `start`: the brace
/// matching its first `{`, or the first `;` outside brackets/parens.
fn item_end(tokens: &[Token], start: usize) -> usize {
    let mut parens = 0i32;
    let mut brackets = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(start) {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" => parens += 1,
            ")" => parens -= 1,
            "[" => brackets += 1,
            "]" => brackets -= 1,
            ";" if parens == 0 && brackets == 0 => return k,
            "{" => {
                let mut depth = 0i32;
                for (m, u) in tokens.iter().enumerate().skip(k) {
                    if u.kind != TokenKind::Punct {
                        continue;
                    }
                    match u.text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                return m;
                            }
                        }
                        _ => {}
                    }
                }
                return tokens.len().saturating_sub(1);
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn strings_hide_their_contents_from_the_rules() {
        let toks = kinds(r#"let s = "call // unwrap() here"; s.len()"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("unwrap")));
        // The unwrap inside the string is NOT an identifier token.
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn raw_strings_with_hashes_lex_as_one_literal() {
        let src = r###"let x = r#"quote " and // unwrap() inside"# ; x"###;
        let toks = kinds(src);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains(r#"quote ""#));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "x"));
    }

    #[test]
    fn nested_block_comments_vanish() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        let idents: Vec<_> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(idents, ["a", "b"]);
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let nl = '\\n'; }");
        let lifetimes = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .count();
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, ["a", "\\n"]);
    }

    #[test]
    fn numbers_stop_before_method_calls_and_ranges() {
        let toks = kinds("1.5e-3; 0..n; 2.max(3); 0xFFu32");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Num)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, ["1.5e-3", "0", "2", "3", "0xFFu32"]);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "max"));
    }

    #[test]
    fn compound_puncts_merge() {
        let toks = kinds("fn f() -> Vec<u8> { std::mem::take(x) }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Punct && t == "->"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Punct && t == "::"));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let out = lex("let a = \"line\none\";\nlet b = 1;");
        let b = out.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn waivers_parse_and_require_reasons() {
        let ok = "x(); // lint: allow(no-print) -- operator-facing log";
        let out = lex(ok);
        assert_eq!(out.waivers.len(), 1);
        assert_eq!(out.waivers[0].rules, ["no-print"]);
        assert_eq!(out.waivers[0].reason, "operator-facing log");
        assert!(out.waiver_errors.is_empty());

        let missing = "x(); // lint: allow(no-print)";
        let out = lex(missing);
        assert!(out.waivers.is_empty());
        assert_eq!(out.waiver_errors.len(), 1);

        let unknown = "x(); // lint: deny(everything)";
        let out = lex(unknown);
        assert!(out.waivers.is_empty());
        assert_eq!(out.waiver_errors.len(), 1);
    }

    #[test]
    fn doc_comments_cannot_waive() {
        let out = lex("/// lint: allow(no-print) -- described, not enacted\nfn f() {}");
        assert!(out.waivers.is_empty());
        assert!(out.waiver_errors.is_empty());
    }

    #[test]
    fn test_mask_covers_cfg_test_modules_and_test_fns() {
        let src = "fn live() { a.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n fn helper() { b.unwrap(); }\n}\n\
                   #[test]\nfn t() { c.unwrap(); }\n\
                   #[cfg(not(test))]\nfn also_live() { d.unwrap(); }";
        let out = lex(src);
        let mask = test_mask(&out.tokens);
        let live: Vec<_> = out
            .tokens
            .iter()
            .zip(&mask)
            .filter(|(t, m)| t.text == "unwrap" && !**m)
            .map(|(t, _)| t.line)
            .collect();
        // Only the unwraps in live() and also_live() remain visible.
        assert_eq!(live.len(), 2);
    }
}
