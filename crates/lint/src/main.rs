//! `lowvcc-lint` binary: lint the workspace, print diagnostics, exit
//! non-zero when any are found. CI runs this as a blocking job.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let root = match args.next() {
        Some(arg) if arg == "--help" || arg == "-h" => {
            println!("usage: lowvcc-lint [WORKSPACE_ROOT]");
            println!("Checks the repo's determinism / panic-freedom / typed-error /");
            println!("layering invariants. Exits 1 when any diagnostic is emitted.");
            return ExitCode::SUCCESS;
        }
        Some(arg) => PathBuf::from(arg),
        None => PathBuf::from("."),
    };
    if args.next().is_some() {
        eprintln!("usage: lowvcc-lint [WORKSPACE_ROOT]");
        return ExitCode::from(2);
    }

    match lowvcc_lint::lint_workspace(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("lowvcc-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("lowvcc-lint: {} diagnostic(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("lowvcc-lint: i/o error: {e}");
            ExitCode::from(2)
        }
    }
}
