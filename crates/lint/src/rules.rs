//! Token-level invariant rules.
//!
//! Each rule walks the token stream produced by [`crate::lexer::lex`]
//! with the test-region mask applied, so `#[cfg(test)]` / `#[test]`
//! code is exempt from all of them. The rules are deliberately
//! syntactic: they flag spellings, not semantics, which keeps them
//! fast, dependency-free and predictable — and the waiver mechanism
//! exists precisely because syntactic rules have sanctioned
//! exceptions.

use crate::lexer::{Token, TokenKind};
use crate::policy::Policy;

/// Rule names, as they appear in diagnostics and `allow(...)` waivers.
pub const RULE_NAMES: &[&str] = &[
    "no-std-hash",
    "no-wallclock",
    "no-panic",
    "no-string-error",
    "no-print",
];

/// A rule hit before waivers are applied: `(line, rule, message)`.
pub type RawDiagnostic = (u32, &'static str, String);

/// Runs every rule the policy enables over one file's tokens.
/// `mask[i]` is true for tokens inside test regions, which are exempt.
pub fn check(tokens: &[Token], mask: &[bool], policy: &Policy) -> Vec<RawDiagnostic> {
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if mask.get(i).copied().unwrap_or(false) || tok.kind != TokenKind::Ident {
            continue;
        }
        if policy.no_std_hash {
            no_std_hash(tokens, i, &mut out);
        }
        if policy.no_wallclock {
            no_wallclock(tokens, i, &mut out);
        }
        if policy.no_panic {
            no_panic(tokens, i, &mut out);
        }
        if policy.no_print {
            no_print(tokens, i, &mut out);
        }
        if policy.no_string_error {
            no_string_error(tokens, i, &mut out);
        }
    }
    out
}

fn at(tokens: &[Token], i: usize) -> Option<&Token> {
    tokens.get(i)
}

fn is_punct(tokens: &[Token], i: usize, text: &str) -> bool {
    at(tokens, i).is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

fn is_ident(tokens: &[Token], i: usize, text: &str) -> bool {
    at(tokens, i).is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
}

/// Determinism: result-producing code must not iterate `HashMap` /
/// `HashSet` (their order is randomized per process, so any output
/// derived from iteration order silently varies run to run). Use
/// `BTreeMap` / `BTreeSet` or a `Vec` instead.
fn no_std_hash(tokens: &[Token], i: usize, out: &mut Vec<RawDiagnostic>) {
    let t = &tokens[i];
    if t.text == "HashMap" || t.text == "HashSet" {
        out.push((
            t.line,
            "no-std-hash",
            format!(
                "{} in result-producing code: iteration order is randomized; \
                 use BTreeMap/BTreeSet or a Vec",
                t.text
            ),
        ));
    }
}

/// Determinism: simulated results must not read the wall clock.
/// `Instant::now` and `SystemTime` belong only in the whitelisted
/// timing modules (perf trajectory, serve timeouts, store atime).
fn no_wallclock(tokens: &[Token], i: usize, out: &mut Vec<RawDiagnostic>) {
    let t = &tokens[i];
    if t.text == "SystemTime" {
        out.push((
            t.line,
            "no-wallclock",
            "SystemTime outside a whitelisted timing module".to_string(),
        ));
    }
    if t.text == "Instant" && is_punct(tokens, i + 1, "::") && is_ident(tokens, i + 2, "now") {
        out.push((
            t.line,
            "no-wallclock",
            "Instant::now() outside a whitelisted timing module".to_string(),
        ));
    }
}

/// Panic-freedom: the serve loop and the store hot path must degrade,
/// not die. `.unwrap()` / `.expect(...)` and the panicking macros are
/// banned in non-test code there; route failures into typed errors or
/// stats counters.
fn no_panic(tokens: &[Token], i: usize, out: &mut Vec<RawDiagnostic>) {
    let t = &tokens[i];
    if (t.text == "unwrap" || t.text == "expect") && i > 0 && is_punct(tokens, i - 1, ".") {
        out.push((
            t.line,
            "no-panic",
            format!(
                ".{}() in panic-free code: convert the failure into a typed \
                 error or a stats counter",
                t.text
            ),
        ));
    }
    if matches!(t.text.as_str(), "panic" | "todo" | "unimplemented") && is_punct(tokens, i + 1, "!")
    {
        out.push((
            t.line,
            "no-panic",
            format!("{}! in panic-free code", t.text),
        ));
    }
}

/// Library crates must not write to stdout/stderr directly; binaries
/// own the terminal. (Operator-facing logs in long-running servers are
/// the sanctioned exception, via an inline waiver.)
fn no_print(tokens: &[Token], i: usize, out: &mut Vec<RawDiagnostic>) {
    let t = &tokens[i];
    if matches!(t.text.as_str(), "println" | "eprintln" | "print" | "eprint")
        && is_punct(tokens, i + 1, "!")
    {
        out.push((
            t.line,
            "no-print",
            format!(
                "{}! in a library crate: only binaries own the terminal",
                t.text
            ),
        ));
    }
}

/// Public APIs must use typed errors: `Result<_, String>` in a `pub fn`
/// return type loses the failure taxonomy and forecloses matching.
fn no_string_error(tokens: &[Token], i: usize, out: &mut Vec<RawDiagnostic>) {
    if tokens[i].text != "pub" {
        return;
    }
    // `pub(crate)` / `pub(super)` are not public API.
    if is_punct(tokens, i + 1, "(") {
        return;
    }
    // Allow qualifiers between `pub` and `fn` (const, async, extern "C").
    let mut j = i + 1;
    let mut saw_fn = false;
    while j < tokens.len() && j <= i + 4 {
        if is_ident(tokens, j, "fn") {
            saw_fn = true;
            break;
        }
        if tokens[j].kind != TokenKind::Ident && tokens[j].kind != TokenKind::Str {
            break;
        }
        j += 1;
    }
    if !saw_fn {
        return;
    }
    // Signature: from `fn` to the body `{` or trait-decl `;`.
    let mut end = tokens.len();
    let mut arrow = None;
    for (k, t) in tokens.iter().enumerate().skip(j) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" | ";" => {
                    end = k;
                    break;
                }
                "->" if arrow.is_none() => arrow = Some(k),
                _ => {}
            }
        }
    }
    let Some(arrow) = arrow else { return };
    // Find `Result <` in the return type and the comma at depth 1.
    let mut k = arrow;
    while k < end {
        if is_ident(tokens, k, "Result") && is_punct(tokens, k + 1, "<") {
            if let Some(diag) = string_error_arg(tokens, k + 1, end) {
                out.push(diag);
            }
            return;
        }
        k += 1;
    }
}

/// From the `<` after `Result`, checks whether the error type is
/// exactly a path ending in `String`.
fn string_error_arg(tokens: &[Token], open: usize, end: usize) -> Option<RawDiagnostic> {
    let mut depth = 0i32;
    let mut err_start = None;
    for k in open..end {
        let t = &tokens[k];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        let start = err_start?;
                        let err = &tokens[start..k];
                        let all_path = err.iter().all(|t| {
                            t.kind == TokenKind::Ident
                                || (t.kind == TokenKind::Punct && t.text == "::")
                        });
                        let last_is_string = err.last().is_some_and(|t| t.text == "String");
                        if all_path && last_is_string {
                            return Some((
                                tokens[start].line,
                                "no-string-error",
                                "Result<_, String> in a public signature: use a typed error"
                                    .to_string(),
                            ));
                        }
                        return None;
                    }
                }
                "," if depth == 1 => err_start = Some(k + 1),
                _ => {}
            }
        }
    }
    None
}
