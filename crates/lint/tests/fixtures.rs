//! Seeded-violation fixtures: every rule must fire with the exact
//! rule name and line on a snippet built to violate it, and must stay
//! quiet on the matching sanctioned spelling. The final tests run the
//! real `lowvcc-lint` binary: non-zero (with the diagnostics printed)
//! on a seeded temp workspace, zero on this repository itself.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use lowvcc_lint::{lint_source, lint_workspace, Diagnostic};

/// `(rule, line)` pairs in report order.
fn hits(diags: &[Diagnostic]) -> Vec<(&'static str, u32)> {
    diags.iter().map(|d| (d.rule, d.line)).collect()
}

#[test]
fn no_std_hash_fires_in_result_producing_code() {
    let src = "use std::collections::HashMap;\n\
               pub struct Sched {\n\
               \x20   ready: HashMap<u32, u32>,\n\
               }\n";
    let diags = lint_source("crates/core/src/sched.rs", src);
    assert_eq!(hits(&diags), vec![("no-std-hash", 1), ("no-std-hash", 3)]);

    // The same spelling is sanctioned in infrastructure crates.
    assert!(lint_source("crates/trace/src/stats.rs", src).is_empty());
}

#[test]
fn no_wallclock_fires_outside_the_whitelist() {
    let src = "fn stamp() {\n\
               \x20   let a = std::time::Instant::now();\n\
               \x20   let b = std::time::SystemTime::now();\n\
               }\n";
    let diags = lint_source("crates/uarch/src/pipeline.rs", src);
    assert_eq!(hits(&diags), vec![("no-wallclock", 2), ("no-wallclock", 3)]);

    // The three timing modules are whitelisted.
    assert!(lint_source("crates/serve/src/lib.rs", src).is_empty());
    assert!(lint_source("crates/bench/src/trajectory.rs", src).is_empty());
    assert!(lint_source("crates/bench/src/admin.rs", src).is_empty());

    // `Instant::elapsed` etc. without `now` is not a wall-clock read.
    let ok = "fn f(t: std::time::Instant) -> u128 { t.elapsed().as_nanos() }\n";
    assert!(lint_source("crates/uarch/src/pipeline.rs", ok).is_empty());
}

#[test]
fn no_panic_fires_on_the_store_hot_path() {
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               \x20   x.unwrap()\n\
               }\n\
               fn g(y: Result<u32, u32>) -> u32 {\n\
               \x20   y.expect(\"y\")\n\
               }\n\
               fn h() {\n\
               \x20   panic!(\"boom\");\n\
               }\n";
    let diags = lint_source("crates/bench/src/store.rs", src);
    assert_eq!(
        hits(&diags),
        vec![("no-panic", 2), ("no-panic", 5), ("no-panic", 8)]
    );

    // Out of the panic-free scope the same code is legal.
    assert!(lint_source("crates/core/src/engine.rs", src)
        .iter()
        .all(|d| d.rule != "no-panic"));

    // `unwrap_or` / `unwrap_or_else` are the sanctioned spellings.
    let ok = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
    assert!(lint_source("crates/bench/src/store.rs", ok).is_empty());
}

#[test]
fn no_string_error_fires_on_public_signatures_only() {
    let src = "pub fn parse(s: &str) -> Result<u32, String> {\n\
               \x20   s.parse().map_err(|_| s.to_string())\n\
               }\n";
    let diags = lint_source("crates/energy/src/model.rs", src);
    assert_eq!(hits(&diags), vec![("no-string-error", 1)]);

    // Crate-private, typed-error and Ok-side-String signatures pass.
    for ok in [
        "pub(crate) fn parse(s: &str) -> Result<u32, String> { todo() }\n",
        "fn parse(s: &str) -> Result<u32, String> { todo() }\n",
        "pub fn parse(s: &str) -> Result<u32, ParseError> { todo() }\n",
        "pub fn render(s: &str) -> Result<String, ParseError> { todo() }\n",
    ] {
        assert!(
            lint_source("crates/energy/src/model.rs", ok).is_empty(),
            "falsely flagged: {ok}"
        );
    }
}

#[test]
fn no_print_fires_in_libraries_but_not_binaries() {
    let src = "fn log() {\n\
               \x20   println!(\"hi\");\n\
               \x20   eprint!(\"x\");\n\
               }\n";
    let diags = lint_source("crates/trace/src/synth.rs", src);
    assert_eq!(hits(&diags), vec![("no-print", 2), ("no-print", 3)]);

    // Binaries own the terminal.
    assert!(lint_source("crates/bench/src/bin/experiments.rs", src).is_empty());
    assert!(lint_source("crates/serve/src/main.rs", src).is_empty());
}

#[test]
fn test_regions_are_exempt() {
    let src = "pub fn real(x: Option<u32>) -> u32 {\n\
               \x20   x.unwrap()\n\
               }\n\
               #[cfg(test)]\n\
               mod tests {\n\
               \x20   #[test]\n\
               \x20   fn t() {\n\
               \x20       super::real(None.unwrap());\n\
               \x20       println!(\"test output is fine\");\n\
               \x20   }\n\
               }\n";
    let diags = lint_source("crates/serve/src/lib.rs", src);
    assert_eq!(hits(&diags), vec![("no-panic", 2)], "{diags:?}");
}

#[test]
fn waivers_suppress_exactly_one_site_and_must_earn_their_keep() {
    // Covers its own line and the next — not two below.
    let src = "fn a() {\n\
               \x20   // lint: allow(no-print) -- operator log\n\
               \x20   eprintln!(\"covered\");\n\
               \x20   eprintln!(\"not covered\");\n\
               }\n";
    let diags = lint_source("crates/trace/src/synth.rs", src);
    assert_eq!(hits(&diags), vec![("no-print", 4)]);

    // A waiver that suppresses nothing is itself an error…
    let stale = "// lint: allow(no-print) -- nothing prints\nfn quiet() {}\n";
    let diags = lint_source("crates/trace/src/synth.rs", stale);
    assert_eq!(hits(&diags), vec![("stale-waiver", 1)]);

    // …and so are a missing reason and an unknown rule name.
    let unreasoned = "// lint: allow(no-print)\nfn f() { eprintln!(\"x\"); }\n";
    let diags = lint_source("crates/trace/src/synth.rs", unreasoned);
    assert_eq!(hits(&diags), vec![("waiver-syntax", 1), ("no-print", 2)]);

    let unknown = "// lint: allow(no-sush-rule) -- typo\nfn f() {}\n";
    let diags = lint_source("crates/trace/src/synth.rs", unknown);
    assert_eq!(hits(&diags), vec![("waiver-unknown-rule", 1)]);
}

/// Writes a minimal two-crate workspace with one seeded source
/// violation and one inverted manifest dependency edge.
fn seed_bad_workspace(root: &Path) {
    let w = |rel: &str, text: &str| {
        let p = root.join(rel);
        fs::create_dir_all(p.parent().unwrap()).unwrap();
        fs::write(p, text).unwrap();
    };
    w(
        "Cargo.toml",
        "[workspace]\nmembers = [\"crates/core\", \"crates/sram\"]\n",
    );
    // Inverted edge: the bottom layer depending on a layer above it.
    w(
        "crates/sram/Cargo.toml",
        "[package]\nname = \"lowvcc-sram\"\n\n[dependencies]\n\
         lowvcc-core = { path = \"../core\" }\n",
    );
    w(
        "crates/core/Cargo.toml",
        "[package]\nname = \"lowvcc-core\"\n",
    );
    w(
        "crates/core/src/lib.rs",
        "use std::collections::HashMap;\npub fn f() {}\n",
    );
    w("crates/sram/src/lib.rs", "pub fn g() {}\n");
}

fn fixture_root(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("lowvcc_lint_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

#[test]
fn lint_workspace_reports_seeded_source_and_layering_violations() {
    let root = fixture_root("ws");
    seed_bad_workspace(&root);
    let diags = lint_workspace(&root).unwrap();
    let got: Vec<(&str, &str, u32)> = diags
        .iter()
        .map(|d| (d.file.as_str(), d.rule, d.line))
        .collect();
    assert_eq!(
        got,
        vec![
            ("crates/core/src/lib.rs", "no-std-hash", 1),
            ("crates/sram/Cargo.toml", "layering", 1),
        ],
        "{diags:?}"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn the_binary_fails_on_seeded_violations_and_names_them() {
    let root = fixture_root("bin");
    seed_bad_workspace(&root);
    let out = Command::new(env!("CARGO_BIN_EXE_lowvcc-lint"))
        .arg(&root)
        .output()
        .unwrap();
    assert!(!out.status.success(), "seeded tree must fail the lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/core/src/lib.rs:1: no-std-hash:"),
        "diagnostic must carry file:line: rule — got:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/sram/Cargo.toml:1: layering:"),
        "layering diagnostic missing — got:\n{stdout}"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn the_real_tree_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = lint_workspace(&root).unwrap();
    assert!(
        diags.is_empty(),
        "the workspace must lint clean:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
