//! CI guard for the perf trajectory: strictly parses every given
//! `BENCH_*.json` document and fails on a missing file, a parse error,
//! a wrong schema tag, or a malformed entry. The `perf-trajectory` CI
//! job runs it over both the freshly-emitted document and the committed
//! `BENCH_paper.json`, so a trajectory that stops parsing blocks the PR.
//!
//! Usage: `bench_json_check FILE...`

use std::process::ExitCode;

use lowvcc_bench::trajectory;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: bench_json_check FILE...");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &paths {
        match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("{path}: {e}");
                ok = false;
            }
            Ok(text) => match trajectory::validate(&text) {
                Err(reason) => {
                    eprintln!("{path}: {reason}");
                    ok = false;
                }
                Ok(n) => println!("{path}: {n} entries OK"),
            },
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
