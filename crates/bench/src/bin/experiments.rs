//! Regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! experiments [--suite quick|standard|NxLEN] [--out DIR]
//! ```
//!
//! Examples: `experiments`, `experiments --suite quick`,
//! `experiments --suite 3x50000 --out results`.

use std::path::PathBuf;
use std::process::ExitCode;

use lowvcc_bench::experiments::run_all;
use lowvcc_bench::ExperimentContext;

fn parse_args() -> Result<(ExperimentContext, PathBuf), String> {
    let mut suite = "standard".to_string();
    let mut out = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--suite" => suite = args.next().ok_or("--suite needs a value")?,
            "--out" => out = PathBuf::from(args.next().ok_or("--out needs a value")?),
            "--help" | "-h" => {
                return Err("usage: experiments [--suite quick|standard|NxLEN] [--out DIR]".into())
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    let ctx = match suite.as_str() {
        "quick" => ExperimentContext::quick()?,
        "standard" => ExperimentContext::standard()?,
        custom => {
            let (n, len) = custom
                .split_once('x')
                .ok_or_else(|| format!("bad suite spec {custom}; want e.g. 3x50000"))?;
            let n: u32 = n.parse().map_err(|_| "bad per-family count")?;
            let len: usize = len.parse().map_err(|_| "bad trace length")?;
            ExperimentContext::sized(n, len)?
        }
    };
    Ok((ctx, out))
}

fn main() -> ExitCode {
    let (ctx, out) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "running all experiments on suite {} ({} uops)…",
        ctx.suite_label,
        ctx.total_uops()
    );
    match run_all(&ctx, &out) {
        Ok(report) => {
            println!("{report}");
            eprintln!("CSV files written under {}", out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            ExitCode::FAILURE
        }
    }
}
