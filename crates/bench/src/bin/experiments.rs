//! Regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! experiments [--suite quick|standard|paper|NxLEN] [--out DIR]
//!             [--jobs N] [--json PATH]
//! ```
//!
//! Examples: `experiments`, `experiments --suite quick`,
//! `experiments --suite 3x50000 --out results --jobs 8 --json sweep.json`.
//!
//! `--jobs` fans the per-voltage suite sweeps out over N worker threads
//! (default: all hardware threads; results are identical for any value).
//! `--json` additionally writes the sweep results and the
//! `uops_per_second` throughput figure machine-readably. `--suite paper`
//! is the paper-scale target (532 traces × 200k uops — the closest
//! 7-family multiple of the paper's 531) the parallel runner makes
//! tractable.

use std::fmt;
use std::path::PathBuf;
use std::process::ExitCode;

use lowvcc_bench::experiments::run_all;
use lowvcc_bench::{ExperimentContext, ExperimentError};
use lowvcc_core::Parallelism;

/// Binary-local error: either a usage problem or a harness failure.
enum CliError {
    Usage(String),
    Run(ExperimentError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Usage(msg) => f.write_str(msg),
            Self::Run(e) => write!(f, "experiment failed: {e}"),
        }
    }
}

impl From<ExperimentError> for CliError {
    fn from(e: ExperimentError) -> Self {
        Self::Run(e)
    }
}

const USAGE: &str = "usage: experiments [--suite quick|standard|paper|NxLEN] [--out DIR] \
                     [--jobs N] [--json PATH]";

fn usage<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError::Usage(msg.into()))
}

struct Cli {
    ctx: ExperimentContext,
    out: PathBuf,
    json: Option<PathBuf>,
    jobs: usize,
}

fn parse_args() -> Result<Cli, CliError> {
    let mut suite = "standard".to_string();
    let mut out = PathBuf::from("results");
    let mut json = None;
    let mut jobs = Parallelism::available().count();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--suite" => match args.next() {
                Some(v) => suite = v,
                None => return usage("--suite needs a value"),
            },
            "--out" => match args.next() {
                Some(v) => out = PathBuf::from(v),
                None => return usage("--out needs a value"),
            },
            "--json" => match args.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => return usage("--json needs a value"),
            },
            "--jobs" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => jobs = n,
                Some(_) => return usage("--jobs needs a positive integer"),
                None => return usage("--jobs needs a value"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return usage(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    let ctx = match suite.as_str() {
        "quick" => ExperimentContext::quick()?,
        "standard" => ExperimentContext::standard()?,
        "paper" => ExperimentContext::paper()?,
        custom => {
            let Some((n, len)) = custom.split_once('x') else {
                return usage(format!("bad suite spec {custom}; want e.g. 3x50000"));
            };
            let Ok(n) = n.parse::<u32>() else {
                return usage("bad per-family count");
            };
            let Ok(len) = len.parse::<usize>() else {
                return usage("bad trace length");
            };
            // A suite with no traces (or empty traces) has no defined
            // speedups/EDP — reject it here rather than panic mid-sweep.
            if n == 0 || len == 0 {
                return usage("suite spec needs at least 1 trace per family and 1 uop per trace");
            }
            ExperimentContext::sized(n, len)?
        }
    };
    let ctx = ctx.with_parallelism(Parallelism::threads(jobs));
    Ok(Cli {
        ctx,
        out,
        json,
        jobs,
    })
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "running all experiments on suite {} ({} uops, {} jobs)…",
        cli.ctx.suite_label,
        cli.ctx.total_uops(),
        cli.jobs
    );
    match run_all(&cli.ctx, &cli.out) {
        Ok(summary) => {
            println!("{}", summary.report);
            eprintln!(
                "sweep: {} uops in {:.2?} ({:.2} Muops/s)",
                summary.sweep_uops,
                summary.sweep_elapsed,
                summary.uops_per_second() / 1e6
            );
            eprintln!("CSV files written under {}", cli.out.display());
            if let Some(path) = cli.json {
                let doc = summary.to_json(&cli.ctx.suite_label, cli.ctx.total_uops(), cli.jobs);
                if let Err(e) = std::fs::write(&path, doc) {
                    eprintln!("{}", CliError::Run(ExperimentError::io_at(&path)(e)));
                    return ExitCode::FAILURE;
                }
                eprintln!("sweep JSON written to {}", path.display());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{}", CliError::Run(e));
            ExitCode::FAILURE
        }
    }
}
