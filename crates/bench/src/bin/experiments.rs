//! Regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! experiments [--suite quick|standard|NxLEN] [--out DIR]
//! ```
//!
//! Examples: `experiments`, `experiments --suite quick`,
//! `experiments --suite 3x50000 --out results`.

use std::fmt;
use std::path::PathBuf;
use std::process::ExitCode;

use lowvcc_bench::experiments::run_all;
use lowvcc_bench::{ExperimentContext, ExperimentError};

/// Binary-local error: either a usage problem or a harness failure.
enum CliError {
    Usage(String),
    Run(ExperimentError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Usage(msg) => f.write_str(msg),
            Self::Run(e) => write!(f, "experiment failed: {e}"),
        }
    }
}

impl From<ExperimentError> for CliError {
    fn from(e: ExperimentError) -> Self {
        Self::Run(e)
    }
}

const USAGE: &str = "usage: experiments [--suite quick|standard|NxLEN] [--out DIR]";

fn usage<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError::Usage(msg.into()))
}

fn parse_args() -> Result<(ExperimentContext, PathBuf), CliError> {
    let mut suite = "standard".to_string();
    let mut out = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--suite" => match args.next() {
                Some(v) => suite = v,
                None => return usage("--suite needs a value"),
            },
            "--out" => match args.next() {
                Some(v) => out = PathBuf::from(v),
                None => return usage("--out needs a value"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return usage(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    let ctx = match suite.as_str() {
        "quick" => ExperimentContext::quick()?,
        "standard" => ExperimentContext::standard()?,
        custom => {
            let Some((n, len)) = custom.split_once('x') else {
                return usage(format!("bad suite spec {custom}; want e.g. 3x50000"));
            };
            let Ok(n) = n.parse::<u32>() else {
                return usage("bad per-family count");
            };
            let Ok(len) = len.parse::<usize>() else {
                return usage("bad trace length");
            };
            // A suite with no traces (or empty traces) has no defined
            // speedups/EDP — reject it here rather than panic mid-sweep.
            if n == 0 || len == 0 {
                return usage("suite spec needs at least 1 trace per family and 1 uop per trace");
            }
            ExperimentContext::sized(n, len)?
        }
    };
    Ok((ctx, out))
}

fn main() -> ExitCode {
    let (ctx, out) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "running all experiments on suite {} ({} uops)…",
        ctx.suite_label,
        ctx.total_uops()
    );
    match run_all(&ctx, &out) {
        Ok(report) => {
            println!("{report}");
            eprintln!("CSV files written under {}", out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{}", CliError::Run(e));
            ExitCode::FAILURE
        }
    }
}
