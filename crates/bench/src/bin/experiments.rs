//! Regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! experiments [--suite quick|standard|paper|NxLEN] [--out DIR]
//!             [--jobs N] [--json PATH] [--cache DIR] [--bench-json PATH]
//! ```
//!
//! Examples: `experiments`, `experiments --suite quick`,
//! `experiments --suite 3x50000 --out results --jobs 8 --json sweep.json`,
//! `experiments --suite quick --cache /var/lib/lowvcc/cache`.
//!
//! `--jobs` fans the per-voltage suite sweeps out over N worker threads
//! (default: all hardware threads; results are identical for any value).
//! `--json` additionally writes the sweep results and the
//! `uops_per_second` throughput figure machine-readably. `--suite paper`
//! is the paper-scale target (532 traces × 200k uops — the closest
//! 7-family multiple of the paper's 531) the parallel runner makes
//! tractable. `--cache DIR` routes every simulation through the
//! content-addressed result store rooted at DIR: a warm re-run answers
//! every figure from the store (the trailing `cache:` stats line reports
//! `0 simulated`) yet writes byte-identical CSV artifacts. The same DIR
//! can back a running `lowvcc-serve` daemon. `--bench-json PATH`
//! additionally times the batched sweep engine against the legacy
//! per-point path on the suite (sequentially — the measurement tracks
//! the engine, not the runner) and appends the measurement to the
//! machine-readable perf trajectory at PATH (`BENCH_*.json`).

use std::fmt;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use lowvcc_bench::experiments::run_all;
use lowvcc_bench::{trajectory, ExperimentContext, ExperimentError, ResultStore, SuiteChoice};
use lowvcc_core::Parallelism;

/// Binary-local error: either a usage problem or a harness failure.
#[derive(Debug)]
enum CliError {
    Usage(String),
    Run(ExperimentError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Usage(msg) => f.write_str(msg),
            Self::Run(e) => write!(f, "experiment failed: {e}"),
        }
    }
}

impl From<ExperimentError> for CliError {
    fn from(e: ExperimentError) -> Self {
        Self::Run(e)
    }
}

const USAGE: &str = "usage: experiments [--suite quick|standard|paper|NxLEN] [--out DIR] \
                     [--jobs N] [--json PATH] [--cache DIR] [--bench-json PATH]";

fn usage<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError::Usage(msg.into()))
}

/// Validated command line, before any trace generation or I/O happens.
/// Pure function of the argument list — see [`parse_args`] — so the
/// degenerate-input rejections are unit-testable.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CliOptions {
    suite: SuiteChoice,
    out: PathBuf,
    json: Option<PathBuf>,
    cache: Option<PathBuf>,
    bench_json: Option<PathBuf>,
    jobs: usize,
    help: bool,
}

/// Parses and validates the argument list (everything after argv[0]).
///
/// Degenerate inputs are rejected *here*, before any work starts:
/// `--suite 0x200000` (zero traces per family), `--suite 3x0` (empty
/// traces) and `--jobs 0` (a zero-worker runner) are usage errors, not
/// empty sweeps.
fn parse_args(args: impl IntoIterator<Item = String>) -> Result<CliOptions, CliError> {
    let mut suite = "standard".to_string();
    let mut out = PathBuf::from("results");
    let mut json = None;
    let mut cache = None;
    let mut bench_json = None;
    let mut jobs = Parallelism::available().count();
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--suite" => match args.next() {
                Some(v) => suite = v,
                None => return usage("--suite needs a value"),
            },
            "--out" => match args.next() {
                Some(v) => out = PathBuf::from(v),
                None => return usage("--out needs a value"),
            },
            "--json" => match args.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => return usage("--json needs a value"),
            },
            "--cache" => match args.next() {
                Some(v) => cache = Some(PathBuf::from(v)),
                None => return usage("--cache needs a value"),
            },
            "--bench-json" => match args.next() {
                Some(v) => bench_json = Some(PathBuf::from(v)),
                None => return usage("--bench-json needs a value"),
            },
            "--jobs" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => jobs = n,
                Some(_) => return usage("--jobs needs a positive integer"),
                None => return usage("--jobs needs a value"),
            },
            "--help" | "-h" => {
                return Ok(CliOptions {
                    suite: SuiteChoice::Standard,
                    out,
                    json,
                    cache,
                    bench_json,
                    jobs,
                    help: true,
                })
            }
            other => return usage(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    // The shared grammar (lowvcc_bench::SuiteChoice) rejects degenerate
    // sizes — no traces, empty traces — before any work starts.
    let suite = match SuiteChoice::parse(&suite) {
        Ok(s) => s,
        Err(e) => return usage(e.to_string()),
    };
    Ok(CliOptions {
        suite,
        out,
        json,
        cache,
        bench_json,
        jobs,
        help: false,
    })
}

struct Cli {
    ctx: ExperimentContext,
    out: PathBuf,
    json: Option<PathBuf>,
    bench_json: Option<PathBuf>,
    jobs: usize,
    store: Option<Arc<ResultStore>>,
}

/// Turns validated options into a runnable context (builds traces, opens
/// the cache).
fn build(opts: CliOptions) -> Result<Cli, CliError> {
    let mut ctx = opts
        .suite
        .build()?
        .with_parallelism(Parallelism::threads(opts.jobs));
    let store = match opts.cache {
        Some(dir) => {
            let store = Arc::new(ResultStore::open(dir).map_err(ExperimentError::from)?);
            ctx = ctx.with_cache(Arc::clone(&store));
            Some(store)
        }
        None => None,
    };
    Ok(Cli {
        ctx,
        out: opts.out,
        json: opts.json,
        bench_json: opts.bench_json,
        jobs: opts.jobs,
        store,
    })
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let cli = match build(opts) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "running all experiments on suite {} ({} uops, {} jobs)…",
        cli.ctx.suite_label,
        cli.ctx.total_uops(),
        cli.jobs
    );
    match run_all(&cli.ctx, &cli.out) {
        Ok(summary) => {
            println!("{}", summary.report);
            eprintln!(
                "sweep: {} uops in {:.2?} ({:.2} Muops/s)",
                summary.sweep_uops,
                summary.sweep_elapsed,
                summary.uops_per_second() / 1e6
            );
            eprintln!("CSV files written under {}", cli.out.display());
            if let Some(store) = &cli.store {
                let s = store.stats();
                eprintln!(
                    "cache: {} hits, {} misses ({} simulated), {} entries on disk",
                    s.hits,
                    s.misses,
                    s.misses,
                    store.disk_entries()
                );
                if s.quarantined + s.retries + s.write_failures + s.orphans_swept > 0 || s.degraded
                {
                    eprintln!(
                        "cache health: {} quarantined, {} retries, {} write failures, \
                         {} orphans swept{}",
                        s.quarantined,
                        s.retries,
                        s.write_failures,
                        s.orphans_swept,
                        if s.degraded {
                            " — DEGRADED (memory-only)"
                        } else {
                            ""
                        }
                    );
                }
            }
            if let Some(path) = cli.json {
                let doc = summary.to_json(&cli.ctx.suite_label, cli.ctx.total_uops(), cli.jobs);
                if let Err(e) = std::fs::write(&path, doc) {
                    eprintln!("{}", CliError::Run(ExperimentError::io_at(&path)(e)));
                    return ExitCode::FAILURE;
                }
                eprintln!("sweep JSON written to {}", path.display());
            }
            if let Some(path) = cli.bench_json {
                eprintln!("measuring batched vs per-point engine throughput…");
                let appended = trajectory::measure(&cli.ctx)
                    .and_then(|entry| trajectory::append(&path, &entry).map(|()| entry));
                match appended {
                    Ok(entry) => eprintln!(
                        "perf trajectory: ×{:.2} batched over per-point \
                         ({:.2} vs {:.2} Muops/s), appended to {}",
                        entry.speedup(),
                        entry.batched_uops_per_second() / 1e6,
                        entry.per_point_uops_per_second() / 1e6,
                        path.display()
                    ),
                    Err(e) => {
                        eprintln!("{}", CliError::Run(e));
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{}", CliError::Run(e));
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOptions, CliError> {
        parse_args(args.iter().map(|s| (*s).to_string()))
    }

    fn usage_of(args: &[&str]) -> String {
        match parse(args) {
            Err(CliError::Usage(msg)) => msg,
            Ok(o) => panic!("{args:?} accepted: {o:?}"),
            Err(CliError::Run(e)) => panic!("{args:?} ran: {e}"),
        }
    }

    #[test]
    fn defaults_are_standard_suite_all_threads() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.suite, SuiteChoice::Standard);
        assert_eq!(o.out, PathBuf::from("results"));
        assert_eq!(o.json, None);
        assert_eq!(o.cache, None);
        assert_eq!(o.bench_json, None);
        assert!(o.jobs >= 1);
        assert!(!o.help);
    }

    #[test]
    fn full_flag_set_parses() {
        let o = parse(&[
            "--suite",
            "3x50000",
            "--out",
            "r",
            "--jobs",
            "8",
            "--json",
            "s.json",
            "--cache",
            "c",
            "--bench-json",
            "BENCH_custom.json",
        ])
        .unwrap();
        assert_eq!(
            o.suite,
            SuiteChoice::Sized {
                per_family: 3,
                len: 50_000
            }
        );
        assert_eq!(o.jobs, 8);
        assert_eq!(o.cache, Some(PathBuf::from("c")));
        assert_eq!(o.json, Some(PathBuf::from("s.json")));
        assert_eq!(o.bench_json, Some(PathBuf::from("BENCH_custom.json")));
    }

    #[test]
    fn zero_traces_per_family_is_a_usage_error() {
        // "0x200000" is a suite spec (0 per family), not a hex literal —
        // and an empty suite has no defined speedups.
        let msg = usage_of(&["--suite", "0x200000"]);
        assert!(msg.contains("at least 1 trace"), "{msg}");
    }

    #[test]
    fn zero_length_traces_are_a_usage_error() {
        let msg = usage_of(&["--suite", "3x0"]);
        assert!(msg.contains("1 uop per trace"), "{msg}");
    }

    #[test]
    fn zero_jobs_is_a_usage_error() {
        let msg = usage_of(&["--jobs", "0"]);
        assert!(msg.contains("positive integer"), "{msg}");
        // Same for garbage and negative values.
        assert!(usage_of(&["--jobs", "-3"]).contains("positive integer"));
        assert!(usage_of(&["--jobs", "many"]).contains("positive integer"));
    }

    #[test]
    fn malformed_suite_specs_are_usage_errors() {
        assert!(usage_of(&["--suite", "banana"]).contains("bad suite spec"));
        assert!(usage_of(&["--suite", "x"]).contains("per-family count"));
        assert!(usage_of(&["--suite", "3x"]).contains("trace length"));
        assert!(usage_of(&["--suite", "99999999999999999999x5"]).contains("per-family count"));
    }

    #[test]
    fn dangling_values_and_unknown_flags_rejected() {
        assert!(usage_of(&["--suite"]).contains("--suite needs a value"));
        assert!(usage_of(&["--cache"]).contains("--cache needs a value"));
        assert!(usage_of(&["--bench-json"]).contains("--bench-json needs a value"));
        assert!(usage_of(&["--jobs"]).contains("--jobs needs a value"));
        assert!(usage_of(&["--frobnicate"]).contains("unknown argument"));
    }

    #[test]
    fn help_short_circuits_validation() {
        assert!(parse(&["--help"]).unwrap().help);
        assert!(parse(&["-h"]).unwrap().help);
    }
}
