//! Admin tool for the content-addressed result store.
//!
//! Usage:
//!
//! ```text
//! lowvcc-store stats DIR
//! lowvcc-store verify DIR
//! lowvcc-store vacuum --max-bytes N[k|m|g] DIR
//! lowvcc-store quarantine list DIR
//! lowvcc-store quarantine purge DIR
//! lowvcc-store export --out FILE [--since SECS] DIR
//! lowvcc-store import FILE DIR
//! ```
//!
//! `stats` sizes up the store (live entries/bytes, quarantine, orphan
//! sweep count). `verify` is a full checksum scrub: every record is read
//! and decoded, failures are moved to `quarantine/` — exit code 1 flags
//! that something was quarantined, so a cron'd scrub alerts on bit rot.
//! `vacuum` collects the store down to a byte budget, least recently
//! used records first. `quarantine list`/`purge` inspect and empty the
//! quarantine directory. `export` packs the store's live records into a
//! checksummed `LVCB` bundle (optionally only those touched within the
//! last `--since SECS`); `import` unpacks a bundle into a store root —
//! atomically, idempotently, quarantining bad records, exit code 1 if
//! any record was quarantined.
//!
//! Exit codes: 0 clean, 1 `verify` quarantined at least one record (or
//! `import` quarantined a bundle record), 2 usage or I/O errors.

use std::fmt;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use lowvcc_bench::{ResultStore, StoreError};

const USAGE: &str = "usage: lowvcc-store <stats|verify|quarantine list|quarantine purge> DIR\n\
                     \x20      lowvcc-store vacuum --max-bytes N[k|m|g] DIR\n\
                     \x20      lowvcc-store export --out FILE [--since SECS] DIR\n\
                     \x20      lowvcc-store import FILE DIR";

/// Binary-local error: either a usage problem or a store failure.
#[derive(Debug)]
enum CliError {
    Usage(String),
    Store(StoreError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Usage(msg) => f.write_str(msg),
            Self::Store(e) => write!(f, "store operation failed: {e}"),
        }
    }
}

impl From<StoreError> for CliError {
    fn from(e: StoreError) -> Self {
        Self::Store(e)
    }
}

fn usage<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError::Usage(msg.into()))
}

/// A validated command — pure function of the argument list, so the
/// grammar is unit-testable without touching a disk.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Command {
    Stats(PathBuf),
    Verify(PathBuf),
    Vacuum {
        dir: PathBuf,
        max_bytes: u64,
    },
    QuarantineList(PathBuf),
    QuarantinePurge(PathBuf),
    Export {
        dir: PathBuf,
        out: PathBuf,
        since: Option<Duration>,
    },
    Import {
        dir: PathBuf,
        file: PathBuf,
    },
    Help,
}

/// Parses a byte budget with an optional `k`/`m`/`g` suffix (powers of
/// 1024, case-insensitive): `500m` is 500 MiB.
fn parse_bytes(arg: &str) -> Result<u64, CliError> {
    let (digits, shift) = match arg.to_ascii_lowercase().strip_suffix(['k', 'm', 'g']) {
        Some(d) => (
            d.to_string(),
            match arg.chars().last().map(|c| c.to_ascii_lowercase()) {
                Some('k') => 10,
                Some('m') => 20,
                _ => 30,
            },
        ),
        None => (arg.to_string(), 0),
    };
    match digits.parse::<u64>() {
        // checked_mul, not a shift: bits shifted out the top must be an
        // error, not a silently tiny budget.
        Ok(n) => n
            .checked_mul(1u64 << shift)
            .ok_or(())
            .or_else(|()| usage(format!("bad byte budget {arg}: overflows u64"))),
        Err(_) => usage(format!(
            "bad byte budget {arg}; want e.g. 500m or 1073741824"
        )),
    }
}

/// Parses the argument list (everything after argv[0]).
fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Command, CliError> {
    let args: Vec<String> = args.into_iter().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(Command::Help);
    }
    match args.first().map(String::as_str) {
        Some("stats") => match &args[1..] {
            [dir] => Ok(Command::Stats(PathBuf::from(dir))),
            _ => usage(format!("stats takes exactly one DIR\n{USAGE}")),
        },
        Some("verify") => match &args[1..] {
            [dir] => Ok(Command::Verify(PathBuf::from(dir))),
            _ => usage(format!("verify takes exactly one DIR\n{USAGE}")),
        },
        Some("vacuum") => match &args[1..] {
            [flag, budget, dir] if flag == "--max-bytes" => Ok(Command::Vacuum {
                dir: PathBuf::from(dir),
                max_bytes: parse_bytes(budget)?,
            }),
            _ => usage(format!("vacuum needs --max-bytes N and a DIR\n{USAGE}")),
        },
        Some("quarantine") => match &args[1..] {
            [sub, dir] if sub == "list" => Ok(Command::QuarantineList(PathBuf::from(dir))),
            [sub, dir] if sub == "purge" => Ok(Command::QuarantinePurge(PathBuf::from(dir))),
            _ => usage(format!("quarantine takes list|purge and a DIR\n{USAGE}")),
        },
        Some("export") => match &args[1..] {
            [flag, out, dir] if flag == "--out" => Ok(Command::Export {
                dir: PathBuf::from(dir),
                out: PathBuf::from(out),
                since: None,
            }),
            [flag, out, since_flag, secs, dir] if flag == "--out" && since_flag == "--since" => {
                let secs: u64 = secs
                    .parse()
                    .or_else(|_| usage(format!("bad --since {secs}; want a number of seconds")))?;
                Ok(Command::Export {
                    dir: PathBuf::from(dir),
                    out: PathBuf::from(out),
                    since: Some(Duration::from_secs(secs)),
                })
            }
            _ => usage(format!(
                "export needs --out FILE [--since SECS] and a DIR\n{USAGE}"
            )),
        },
        Some("import") => match &args[1..] {
            [file, dir] => Ok(Command::Import {
                dir: PathBuf::from(dir),
                file: PathBuf::from(file),
            }),
            _ => usage(format!("import takes a FILE and a DIR\n{USAGE}")),
        },
        Some(other) => usage(format!("unknown command {other}\n{USAGE}")),
        None => usage(USAGE),
    }
}

/// Runs a validated command; returns the process exit code.
fn run(cmd: Command) -> Result<ExitCode, CliError> {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Command::Stats(dir) => {
            let store = ResultStore::open(dir)?;
            let s = store.summary()?;
            println!("entries:             {}", s.entries);
            println!("entry bytes:         {}", s.entry_bytes);
            println!("quarantined entries: {}", s.quarantined_entries);
            println!("quarantined bytes:   {}", s.quarantined_bytes);
            println!("orphans swept:       {}", s.orphans_swept);
            println!("degraded:            {}", s.degraded);
            Ok(ExitCode::SUCCESS)
        }
        Command::Verify(dir) => {
            let store = ResultStore::open(dir)?;
            let r = store.verify()?;
            println!(
                "scanned {} records: {} ok ({} bytes), {} quarantined",
                r.scanned, r.ok, r.ok_bytes, r.quarantined
            );
            Ok(if r.quarantined == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            })
        }
        Command::Vacuum { dir, max_bytes } => {
            let store = ResultStore::open(dir)?;
            let r = store.vacuum(max_bytes)?;
            println!(
                "kept {} records ({} bytes), removed {} ({} bytes) to fit {max_bytes} bytes",
                r.kept, r.kept_bytes, r.removed, r.removed_bytes
            );
            Ok(ExitCode::SUCCESS)
        }
        Command::QuarantineList(dir) => {
            let store = ResultStore::open(dir)?;
            let entries = store.quarantine_list()?;
            for e in &entries {
                println!("{}\t{}", e.bytes, e.path.display());
            }
            println!("{} quarantined record(s)", entries.len());
            Ok(ExitCode::SUCCESS)
        }
        Command::QuarantinePurge(dir) => {
            let store = ResultStore::open(dir)?;
            let purged = store.quarantine_purge()?;
            println!("purged {purged} quarantined record(s)");
            Ok(ExitCode::SUCCESS)
        }
        Command::Export { dir, out, since } => {
            let store = ResultStore::open(dir)?;
            let r = store.export_bundle(&out, since)?;
            println!(
                "bundled {} record(s) ({} bytes) into {} ({} corrupt skipped, {} outside --since)",
                r.records,
                r.bytes,
                out.display(),
                r.skipped_corrupt,
                r.skipped_stale
            );
            Ok(ExitCode::SUCCESS)
        }
        Command::Import { dir, file } => {
            let store = ResultStore::open(dir)?;
            let r = store.import_bundle(&file)?;
            println!(
                "imported {} record(s) from {} ({} already present, {} quarantined)",
                r.imported,
                file.display(),
                r.already_present,
                r.quarantined
            );
            Ok(if r.quarantined == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            })
        }
    }
}

fn main() -> ExitCode {
    match parse_args(std::env::args().skip(1)).and_then(run) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, CliError> {
        parse_args(args.iter().map(|s| (*s).to_string()))
    }

    fn usage_of(args: &[&str]) -> String {
        match parse(args) {
            Err(CliError::Usage(msg)) => msg,
            Ok(c) => panic!("{args:?} accepted: {c:?}"),
            Err(CliError::Store(e)) => panic!("{args:?} hit the store: {e}"),
        }
    }

    #[test]
    fn subcommands_parse() {
        assert_eq!(
            parse(&["stats", "d"]).unwrap(),
            Command::Stats(PathBuf::from("d"))
        );
        assert_eq!(
            parse(&["verify", "d"]).unwrap(),
            Command::Verify(PathBuf::from("d"))
        );
        assert_eq!(
            parse(&["vacuum", "--max-bytes", "2k", "d"]).unwrap(),
            Command::Vacuum {
                dir: PathBuf::from("d"),
                max_bytes: 2048
            }
        );
        assert_eq!(
            parse(&["quarantine", "list", "d"]).unwrap(),
            Command::QuarantineList(PathBuf::from("d"))
        );
        assert_eq!(
            parse(&["quarantine", "purge", "d"]).unwrap(),
            Command::QuarantinePurge(PathBuf::from("d"))
        );
        assert_eq!(
            parse(&["export", "--out", "warm.lvcb", "d"]).unwrap(),
            Command::Export {
                dir: PathBuf::from("d"),
                out: PathBuf::from("warm.lvcb"),
                since: None,
            }
        );
        assert_eq!(
            parse(&["export", "--out", "warm.lvcb", "--since", "3600", "d"]).unwrap(),
            Command::Export {
                dir: PathBuf::from("d"),
                out: PathBuf::from("warm.lvcb"),
                since: Some(Duration::from_secs(3600)),
            }
        );
        assert_eq!(
            parse(&["import", "warm.lvcb", "d"]).unwrap(),
            Command::Import {
                dir: PathBuf::from("d"),
                file: PathBuf::from("warm.lvcb"),
            }
        );
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
        assert_eq!(parse(&["-h"]).unwrap(), Command::Help);
    }

    #[test]
    fn byte_budgets_accept_binary_suffixes() {
        assert_eq!(parse_bytes("0").unwrap(), 0);
        assert_eq!(parse_bytes("123").unwrap(), 123);
        assert_eq!(parse_bytes("2k").unwrap(), 2 << 10);
        assert_eq!(parse_bytes("500m").unwrap(), 500 << 20);
        assert_eq!(parse_bytes("3G").unwrap(), 3u64 << 30);
        assert!(parse_bytes("banana").is_err());
        assert!(parse_bytes("9999999999999999999g").is_err());
        assert!(parse_bytes("").is_err());
    }

    #[test]
    fn malformed_invocations_are_usage_errors() {
        assert!(usage_of(&[]).contains("usage:"));
        assert!(usage_of(&["frobnicate", "d"]).contains("unknown command"));
        assert!(usage_of(&["stats"]).contains("exactly one DIR"));
        assert!(usage_of(&["stats", "a", "b"]).contains("exactly one DIR"));
        assert!(usage_of(&["verify"]).contains("exactly one DIR"));
        assert!(usage_of(&["vacuum", "d"]).contains("--max-bytes"));
        assert!(usage_of(&["vacuum", "--max-bytes", "x", "d"]).contains("bad byte budget"));
        assert!(usage_of(&["quarantine", "d"]).contains("list|purge"));
        assert!(usage_of(&["quarantine", "drop", "d"]).contains("list|purge"));
        assert!(usage_of(&["export", "d"]).contains("--out"));
        assert!(usage_of(&["export", "--out", "f", "--since", "soon", "d"]).contains("bad --since"));
        assert!(usage_of(&["import", "f"]).contains("FILE and a DIR"));
        assert!(usage_of(&["import", "f", "d", "x"]).contains("FILE and a DIR"));
    }
}
