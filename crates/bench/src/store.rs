//! The persistent, content-addressed simulation-result store.
//!
//! A [`ResultStore`] maps [`SimKey`]s (128-bit content addresses over the
//! canonical simulation inputs, see `lowvcc_core::canon`) to canonical
//! [`SimResult`] records. Layers:
//!
//! * an **in-memory LRU** (lock-protected, lazily-compacted recency
//!   queue) so hot keys — a daemon's popular operating points — never
//!   touch the filesystem;
//! * an optional **sharded on-disk map**: `root/<first-2-hex>/<32-hex>.sim`,
//!   written via fsynced tempfile + atomic rename + directory fsync so
//!   concurrent writers, crashes and power loss can never publish a torn
//!   record (every record carries a checksum).
//!
//! Invalidation is by construction: the engine-semantics version is
//! hashed into every key *and* embedded in every record, so results from
//! an older engine simply miss (and fail closed if a record is somehow
//! reached through a colliding path).
//!
//! **The disk is an optimization, never a dependency.** Every byte of
//! disk I/O goes through the [`StoreIo`] seam (injectable for chaos
//! tests), and the lookup/publish paths are *infallible*:
//!
//! * a read failure — corrupt bytes, checksum mismatch, EIO — moves the
//!   offending record into a `quarantine/` sibling directory (counted in
//!   [`StoreStats::quarantined`]) and reports a miss, so the caller
//!   falls back to deterministic re-simulation instead of erroring;
//! * a publish failure retries with bounded exponential backoff and
//!   deterministic jitter ([`RetryPolicy`]); if every attempt fails the
//!   store latches **degraded** (memory-only) mode — experiments still
//!   complete, the daemon keeps answering, and the condition is visible
//!   in [`StoreStats::degraded`].
//!
//! [`StoreError`] remains only for operations where failing is the right
//! answer: opening a store and the admin/scrub surface (`lowvcc-store`).
//!
//! For concurrent callers (the `lowvcc-serve` worker pool, parallel
//! `experiments` runs sharing one store) there is a **single-flight**
//! layer: [`ResultStore::lookup`] hands exactly one caller per key a
//! [`FlightGuard`] (the *leader*, who simulates and publishes) while
//! every other caller gets a [`FlightWaiter`] that blocks until the
//! leader finishes — so N identical concurrent cold queries trigger
//! exactly one engine invocation.

use std::cell::Cell;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use lowvcc_core::canon::fnv1a_64;
use lowvcc_core::{decode_sim_result, encode_sim_result, CanonError, SimKey, SimResult};

use crate::lockdep::{OrderedCondvar, OrderedMutex};
use crate::store_io::{RealIo, RetryPolicy, StoreIo};

/// Name of the sibling directory quarantined records are moved into.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Failure inside the result store.
#[derive(Debug)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// Path involved.
        path: PathBuf,
        /// Underlying error.
        source: io::Error,
    },
    /// An on-disk record failed validation (bad magic, truncation,
    /// checksum mismatch, foreign version…).
    Corrupt {
        /// Path of the offending record.
        path: PathBuf,
        /// The decoder's verdict.
        source: CanonError,
    },
}

impl StoreError {
    fn io_at(path: &Path) -> impl FnOnce(io::Error) -> Self + '_ {
        |source| Self::Io {
            path: path.to_path_buf(),
            source,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, source } => {
                write!(f, "result store I/O at {}: {source}", path.display())
            }
            Self::Corrupt { path, source } => {
                write!(f, "corrupt store entry {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            Self::Corrupt { source, .. } => Some(source),
        }
    }
}

/// Monotonic counters describing store traffic. `misses` is exactly the
/// number of engine invocations a cache-aware experiment performed — the
/// warm-run acceptance check asserts it is zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Lookups answered from memory or disk.
    pub hits: u64,
    /// Lookups that found nothing (each one becomes a simulation).
    pub misses: u64,
    /// Records inserted this session.
    pub stores: u64,
    /// Dynamic uops actually run through the engine on behalf of this
    /// store (cache hits contribute nothing) — the honest numerator for
    /// throughput figures on cached runs.
    pub simulated_uops: u64,
    /// Lookups that found another caller already simulating the same key
    /// and waited for its result instead of re-simulating (the
    /// single-flight layer at work).
    pub coalesced: u64,
    /// Records moved to `quarantine/` after a failed read or decode
    /// (each one became a miss and a re-simulation, not an error).
    pub quarantined: u64,
    /// Publish attempts beyond the first (the backoff loop at work).
    pub retries: u64,
    /// Publishes abandoned after exhausting every retry.
    pub write_failures: u64,
    /// Stale `*.tmp.*` publish leftovers removed at startup.
    pub orphans_swept: u64,
    /// Inserts for keys outside this store's owned slice (sharded
    /// daemons only): kept in memory, never published to disk.
    pub foreign_puts: u64,
    /// Local misses that consulted the read-through peer hook (sharded
    /// daemons only) before falling back to simulation.
    pub peer_fetches: u64,
    /// Peer fetches the key's ring owner answered — each one is a
    /// simulation this node did not have to run.
    pub peer_hits: u64,
    /// Whether the store has latched memory-only (degraded) mode after a
    /// publish exhausted its retries. Sticky until restart.
    pub degraded: bool,
}

/// Predicate deciding whether this store instance *owns* a key's disk
/// slot — the sharded serve tier's consistent-hash ring, closed over a
/// shard index. Stores without one (the default) own every key.
pub type KeyOwnership = Arc<dyn Fn(SimKey) -> bool + Send + Sync>;

/// Read-through hook consulted on a local miss before the caller
/// simulates: ask the key's ring owner for its copy (the sharded serve
/// tier dials the owning shard's `peer_get` endpoint). Must be
/// **non-cascading** — the hook is never invoked while *serving* a peer
/// request ([`ResultStore::peek_local`] skips it), so two shards missing
/// the same key cannot chase each other. Any failure maps to `None`:
/// peer trouble degrades to a local simulation, never to an error.
pub type RemoteFetch = Arc<dyn Fn(SimKey) -> Option<SimResult> + Send + Sync>;

thread_local! {
    // Per-thread miss tally across all stores. A serve worker handles a
    // whole request on one thread (simulation fans out, but every
    // store lookup happens here), so a before/after delta answers "did
    // *this* request simulate?" even while other connections miss
    // concurrently — the global counter cannot.
    static THREAD_MISSES: Cell<u64> = const { Cell::new(0) };
}

/// One in-flight simulation. Waiters block on `cv` until the leader
/// flips `done` — which its [`FlightGuard`] does on drop, so even a
/// panicking or erroring leader wakes everyone.
#[derive(Debug)]
struct FlightState {
    done: OrderedMutex<bool>,
    cv: OrderedCondvar,
}

/// Leadership of one in-flight key: the holder is the unique caller
/// responsible for simulating it. Publish by calling
/// [`ResultStore::put`] **before** dropping the guard; dropping it
/// (publish, error or panic alike) retires the flight and wakes every
/// [`FlightWaiter`]. A guard dropped without a `put` signals
/// abandonment — waiters re-probe and one of them claims leadership.
pub struct FlightGuard<'a> {
    store: &'a ResultStore,
    key: SimKey,
    state: Arc<FlightState>,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        let mut inflight = self.store.inflight.lock();
        if inflight
            .get(&self.key)
            .is_some_and(|s| Arc::ptr_eq(s, &self.state))
        {
            inflight.remove(&self.key);
        }
        drop(inflight);
        *self.state.done.lock() = true;
        self.state.cv.notify_all();
    }
}

impl fmt::Debug for FlightGuard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlightGuard")
            .field("key", &self.key.to_hex())
            .finish_non_exhaustive()
    }
}

/// A ticket for a simulation some other caller is already running.
/// [`wait`](Self::wait) blocks until that flight retires, after which a
/// fresh [`ResultStore::lookup`] either hits (the leader published) or
/// claims leadership (the leader abandoned).
#[derive(Debug)]
pub struct FlightWaiter {
    state: Arc<FlightState>,
}

impl FlightWaiter {
    /// Blocks until the in-flight simulation retires (publish or
    /// abandon). Re-`lookup` afterwards for the outcome.
    pub fn wait(self) {
        let mut done = self.state.done.lock();
        while !*done {
            done = self.state.cv.wait(done);
        }
    }
}

/// Outcome of a single-flight [`ResultStore::lookup`].
#[derive(Debug)]
pub enum Flight<'a> {
    /// The store had the result (memory or disk). Boxed: the other
    /// variants are small handles, and `Flight` values sit in per-key
    /// arbitration vectors.
    Hit(Box<SimResult>),
    /// This caller is the leader: simulate, [`ResultStore::put`], then
    /// drop the guard.
    Lead(FlightGuard<'a>),
    /// Another caller is simulating this key right now; `wait`, then
    /// `lookup` again.
    Pending(FlightWaiter),
}

/// In-memory LRU over decoded results: `HashMap` for lookup plus a
/// lazily-compacted recency queue (stale queue entries — superseded by a
/// later touch — are skipped at eviction time).
struct Lru {
    map: HashMap<SimKey, (SimResult, u64)>,
    recency: VecDeque<(SimKey, u64)>,
    tick: u64,
    capacity: usize,
}

impl Lru {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            recency: VecDeque::new(),
            tick: 0,
            capacity,
        }
    }

    fn touch(&mut self, key: SimKey) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.map.get_mut(&key) {
            entry.1 = tick;
            self.recency.push_back((key, tick));
        }
        // Hit-only workloads (a warmed daemon's steady state) never
        // insert, so the queue bound must apply on touches too.
        self.compact_if_bloated();
    }

    fn get(&mut self, key: SimKey) -> Option<SimResult> {
        let found = self.map.get(&key).map(|(r, _)| r.clone());
        if found.is_some() {
            self.touch(key);
        }
        found
    }

    fn insert(&mut self, key: SimKey, value: SimResult) {
        self.tick += 1;
        let tick = self.tick;
        self.map.insert(key, (value, tick));
        self.recency.push_back((key, tick));
        while self.map.len() > self.capacity {
            match self.recency.pop_front() {
                Some((k, t)) => {
                    // Only evict if this queue entry is the key's most
                    // recent touch; otherwise it is stale — skip it.
                    if self.map.get(&k).is_some_and(|&(_, cur)| cur == t) {
                        self.map.remove(&k);
                    }
                }
                None => break,
            }
        }
        self.compact_if_bloated();
    }

    /// Bounds queue growth independently of capacity: drop every stale
    /// entry (superseded by a later touch of the same key) once the
    /// queue exceeds 4× the live-entry budget.
    fn compact_if_bloated(&mut self) {
        if self.recency.len() > self.capacity.saturating_mul(4).max(64) {
            let map = &self.map;
            self.recency
                .retain(|&(k, t)| map.get(&k).is_some_and(|&(_, cur)| cur == t));
        }
    }
}

/// The layered key→result store. Cheap to share behind an `Arc`; all
/// methods take `&self`.
pub struct ResultStore {
    pub(crate) dir: Option<PathBuf>,
    pub(crate) io: Arc<dyn StoreIo>,
    retry: RetryPolicy,
    lru: OrderedMutex<Lru>,
    inflight: OrderedMutex<HashMap<SimKey, Arc<FlightState>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    simulated_uops: AtomicU64,
    coalesced: AtomicU64,
    pub(crate) quarantined: AtomicU64,
    retries: AtomicU64,
    write_failures: AtomicU64,
    pub(crate) orphans_swept: AtomicU64,
    foreign_puts: AtomicU64,
    peer_fetches: AtomicU64,
    peer_hits: AtomicU64,
    degraded: AtomicBool,
    /// `None` = this store owns every key (the single-daemon shape).
    owned: Option<KeyOwnership>,
    /// `None` = no read-through peer tier (the single-daemon shape).
    remote: Option<RemoteFetch>,
}

impl fmt::Debug for ResultStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResultStore")
            .field("dir", &self.dir)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// Default in-memory entry budget. A full paper-artefact regeneration on
/// the standard suite needs 13 voltages × 2 mechanisms × 49 traces plus
/// the Table 1 / stall-study configurations ≈ 1.6k entries; 4096 keeps
/// every figure warm with headroom while bounding a daemon's footprint.
const DEFAULT_LRU_CAPACITY: usize = 4096;

impl ResultStore {
    /// Opens (creating if necessary) an on-disk store rooted at `dir`,
    /// using the real filesystem and the default [`RetryPolicy`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the root cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Self::open_with(dir, Arc::new(RealIo), RetryPolicy::default())
    }

    /// Opens an on-disk store over an explicit [`StoreIo`] (chaos tests
    /// inject faults here) and [`RetryPolicy`]. Sweeps orphaned `*.tmp.*`
    /// publish leftovers from the shard directories before returning,
    /// counting them in [`StoreStats::orphans_swept`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the root cannot be created.
    pub fn open_with(
        dir: impl Into<PathBuf>,
        io: Arc<dyn StoreIo>,
        retry: RetryPolicy,
    ) -> Result<Self, StoreError> {
        let dir = dir.into();
        io.create_dir_all(&dir).map_err(StoreError::io_at(&dir))?;
        let swept = sweep_orphan_tmps(io.as_ref(), &dir);
        let store = Self {
            dir: Some(dir),
            io,
            retry,
            ..Self::ephemeral()
        };
        store.orphans_swept.store(swept, Ordering::Relaxed);
        Ok(store)
    }

    /// An in-memory-only store (no persistence): the LRU layer alone.
    #[must_use]
    pub fn ephemeral() -> Self {
        Self {
            dir: None,
            io: Arc::new(RealIo),
            retry: RetryPolicy::default(),
            lru: OrderedMutex::new("store.lru", Lru::new(DEFAULT_LRU_CAPACITY)),
            inflight: OrderedMutex::new("store.inflight", HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            simulated_uops: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            write_failures: AtomicU64::new(0),
            orphans_swept: AtomicU64::new(0),
            foreign_puts: AtomicU64::new(0),
            peer_fetches: AtomicU64::new(0),
            peer_hits: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
            owned: None,
            remote: None,
        }
    }

    /// Restricts disk ownership to the keys `owner` accepts (the
    /// sharded serve tier hands each shard its ring slice). Results for
    /// non-owned keys still land in this store's memory tier — they are
    /// valid, just another shard's to persist — and are tallied in
    /// [`StoreStats::foreign_puts`].
    #[must_use]
    pub fn with_key_owner(self, owner: KeyOwnership) -> Self {
        Self {
            owned: Some(owner),
            ..self
        }
    }

    /// Installs a read-through peer hook consulted on local (LRU + disk)
    /// misses before the caller simulates. A remote hit lands in this
    /// store's memory tier and counts as a hit plus
    /// [`StoreStats::peer_hits`]; any hook failure is a plain miss. See
    /// [`RemoteFetch`] for the no-cascade contract.
    #[must_use]
    pub fn with_remote_fetch(self, remote: RemoteFetch) -> Self {
        Self {
            remote: Some(remote),
            ..self
        }
    }

    /// Replaces the LRU capacity (entries, not bytes).
    #[must_use]
    pub fn with_lru_capacity(self, capacity: usize) -> Self {
        Self {
            lru: OrderedMutex::new("store.lru", Lru::new(capacity.max(1))),
            ..self
        }
    }

    /// The on-disk root, if this store persists.
    #[must_use]
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Traffic counters so far.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            simulated_uops: self.simulated_uops.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            write_failures: self.write_failures.load(Ordering::Relaxed),
            orphans_swept: self.orphans_swept.load(Ordering::Relaxed),
            foreign_puts: self.foreign_puts.load(Ordering::Relaxed),
            peer_fetches: self.peer_fetches.load(Ordering::Relaxed),
            peer_hits: self.peer_hits.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
        }
    }

    /// Whether the store has latched memory-only (degraded) mode.
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Misses recorded by the *calling thread* (against any store),
    /// monotone. Snapshot before and after serving a request to tell
    /// whether that request performed a simulation — accurate under
    /// concurrency, where the global `misses` counter mixes every
    /// connection's traffic.
    #[must_use]
    pub fn thread_misses() -> u64 {
        THREAD_MISSES.with(Cell::get)
    }

    fn count_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        THREAD_MISSES.with(|c| c.set(c.get() + 1));
    }

    /// Records that `uops` dynamic uops were simulated to fill misses
    /// (called by the cache-aware suite runner).
    pub fn note_simulated_uops(&self, uops: u64) {
        self.simulated_uops.fetch_add(uops, Ordering::Relaxed);
    }

    pub(crate) fn entry_path(&self, key: SimKey) -> Option<PathBuf> {
        let hex = key.to_hex();
        self.dir
            .as_ref()
            .map(|d| d.join(&hex[..2]).join(format!("{hex}.sim")))
    }

    /// Moves a record that failed to read or decode into the
    /// `quarantine/` sibling directory (falling back to deletion if even
    /// the rename fails), so the next lookup of its key is a clean miss
    /// that re-simulates and re-publishes. Never fails: quarantine is
    /// the degradation path, not another error source.
    pub(crate) fn quarantine(&self, path: &Path, why: &str) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        let moved = self.dir.as_ref().and_then(|dir| {
            let qdir = dir.join(QUARANTINE_DIR);
            let dest = qdir.join(path.file_name()?);
            self.io
                .create_dir_all(&qdir)
                .and_then(|()| self.io.rename(path, &dest))
                .ok()
        });
        if moved.is_none() {
            // Condemn in place: a record we can neither trust nor move
            // aside must not be read again.
            let _ = self.io.remove_file(path);
        }
        // lint: allow(no-print) -- operator-facing store log; also counted in stats
        eprintln!("lowvcc-store: quarantined {}: {why}", path.display());
    }

    /// Counter-free lookup: LRU, then disk, then — only here — the
    /// read-through peer hook. Infallible: every failure mode degrades
    /// to a miss.
    fn probe(&self, key: SimKey) -> Option<SimResult> {
        if let Some(hit) = self.peek_local(key) {
            return Some(hit);
        }
        self.probe_remote(key)
    }

    /// Local-tiers-only lookup (LRU, then disk, promoting a disk hit
    /// into the LRU), counter-free and **never** consulting the
    /// [`RemoteFetch`] hook. This is what a shard answers `peer_get`
    /// requests from — the no-cascade rule: serving a peer never
    /// triggers another peer fetch.
    #[must_use]
    pub fn peek_local(&self, key: SimKey) -> Option<SimResult> {
        if let Some(hit) = self.lru.lock().get(key) {
            return Some(hit);
        }
        self.probe_disk(key)
    }

    /// Asks the read-through hook (if any) for a key both local tiers
    /// missed. A remote hit is promoted into the LRU: it is a valid
    /// result, just another shard's to persist, so it never touches
    /// this store's disk slice.
    fn probe_remote(&self, key: SimKey) -> Option<SimResult> {
        let remote = self.remote.as_ref()?;
        self.peer_fetches.fetch_add(1, Ordering::Relaxed);
        let result = remote(key)?;
        self.peer_hits.fetch_add(1, Ordering::Relaxed);
        self.lru.lock().insert(key, result.clone());
        Some(result)
    }

    /// Disk tier of [`peek_local`](Self::peek_local). Infallible — a
    /// record that cannot be read or decoded is quarantined and
    /// reported as a miss.
    fn probe_disk(&self, key: SimKey) -> Option<SimResult> {
        let path = self.entry_path(key)?;
        let bytes = match self.io.read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
            Err(e) => {
                self.quarantine(&path, &format!("read failed: {e}"));
                return None;
            }
        };
        match decode_sim_result(&bytes) {
            Ok(result) => {
                self.lru.lock().insert(key, result.clone());
                Some(result)
            }
            Err(e) => {
                self.quarantine(&path, &format!("decode failed: {e}"));
                None
            }
        }
    }

    /// Looks `key` up: LRU first, then disk. Infallible: corrupt or
    /// unreadable records are quarantined (see
    /// [`StoreStats::quarantined`]) and reported as misses, so the
    /// caller re-simulates — the engine is deterministic, so the healed
    /// record is byte-identical to what was lost.
    pub fn get(&self, key: SimKey) -> Option<SimResult> {
        match self.probe(key) {
            Some(hit) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(hit)
            }
            None => {
                self.count_miss();
                None
            }
        }
    }

    /// Single-flight lookup: like [`get`](Self::get), but a miss
    /// additionally arbitrates *who simulates*. Exactly one concurrent
    /// caller per key receives [`Flight::Lead`] (and must simulate,
    /// [`put`](Self::put), then drop the guard); everyone else receives
    /// [`Flight::Pending`] and waits for the leader. A leader that
    /// errors or panics retires the flight on guard drop, so a waiter's
    /// retry claims leadership instead of deadlocking.
    ///
    /// Counter semantics: a `Lead` counts one miss (it becomes exactly
    /// one engine invocation), a `Hit` one hit, a `Pending` one
    /// `coalesced` wait (the eventual re-lookup then counts its own
    /// hit) — so N identical concurrent cold queries report 1 miss and
    /// N−1 hits/waits.
    ///
    /// Infallible like [`get`](Self::get): store trouble degrades to a
    /// miss (and a `Lead`), never to an error.
    pub fn lookup(&self, key: SimKey) -> Flight<'_> {
        if let Some(hit) = self.probe(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Flight::Hit(Box::new(hit));
        }
        let mut inflight = self.inflight.lock();
        if let Some(state) = inflight.get(&key) {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            return Flight::Pending(FlightWaiter {
                state: Arc::clone(state),
            });
        }
        // Re-probe under the in-flight lock: an in-process leader
        // publishes into the LRU (in `put`) *before* its guard takes
        // this lock to retire the entry, so any publish that beat us
        // here is visible and we must not claim leadership for a
        // filled key. Memory only — a disk read under this global lock
        // would serialize every cold lookup; the one race it would
        // close (a concurrent *cross-process* publish since the first
        // probe) merely costs one deterministic re-simulation.
        if let Some(hit) = self.lru.lock().get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Flight::Hit(Box::new(hit));
        }
        let state = Arc::new(FlightState {
            done: OrderedMutex::new("store.flight", false),
            cv: OrderedCondvar::new(),
        });
        inflight.insert(key, Arc::clone(&state));
        drop(inflight);
        self.count_miss();
        Flight::Lead(FlightGuard {
            store: self,
            key,
            state,
        })
    }

    /// Inserts into the memory tier only — the bundle importer's entry
    /// point for ephemeral stores, where there is no disk slot to
    /// publish into.
    pub(crate) fn insert_memory(&self, key: SimKey, result: &SimResult) {
        self.lru.lock().insert(key, result.clone());
    }

    /// One publish attempt: fsynced tempfile, atomic rename, directory
    /// fsync — all through the [`StoreIo`] seam.
    pub(crate) fn try_publish(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        // Entry paths are always `<dir>/<shard>/<key>.bin`, so a parent
        // exists; a path without one degrades like any other publish
        // failure instead of killing the caller.
        let Some(shard) = path.parent() else {
            return Err(io::Error::other("entry path has no shard parent"));
        };
        self.io.create_dir_all(shard)?;
        // Unique per process *and* per call, so concurrent writers of the
        // same key never share a tempfile.
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = shard.join(format!(
            ".{}.tmp.{}.{}",
            path.file_stem().and_then(|s| s.to_str()).unwrap_or("entry"),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        self.io.write_sync(&tmp, bytes).inspect_err(|_| {
            let _ = self.io.remove_file(&tmp);
        })?;
        self.io.rename(&tmp, path).inspect_err(|_| {
            let _ = self.io.remove_file(&tmp);
        })?;
        self.io.sync_dir(shard)
    }

    /// Inserts `result` under `key`: always into memory, and onto disk
    /// when persistent and not degraded.
    ///
    /// The disk write goes to an fsynced tempfile in the shard directory,
    /// is published with an atomic rename, and the shard directory is
    /// fsynced after — a reader either sees the full checksummed record
    /// or nothing, even across power loss. Publish failures are retried
    /// per this store's [`RetryPolicy`] (bounded exponential backoff,
    /// deterministic per-key jitter); exhausting every attempt latches
    /// degraded (memory-only) mode rather than failing the caller.
    pub fn put(&self, key: SimKey, result: &SimResult) {
        self.lru.lock().insert(key, result.clone());
        self.stores.fetch_add(1, Ordering::Relaxed);
        if let Some(owner) = &self.owned {
            if !owner(key) {
                // Another shard's slice: the result is still valid (and
                // cached in memory above), but its disk slot belongs to
                // the owning shard — publishing here would race it.
                self.foreign_puts.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let Some(path) = self.entry_path(key) else {
            return;
        };
        if self.degraded.load(Ordering::Relaxed) {
            return;
        }
        let bytes = encode_sim_result(result);
        let salt = fnv1a_64(key.to_hex().as_bytes());
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..self.retry.attempts.max(1) {
            if attempt > 0 {
                self.retries.fetch_add(1, Ordering::Relaxed);
                let backoff = self.retry.delay(attempt, salt);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
            match self.try_publish(&path, &bytes) {
                Ok(()) => return,
                Err(e) => last_err = Some(e),
            }
        }
        self.write_failures.fetch_add(1, Ordering::Relaxed);
        if !self.degraded.swap(true, Ordering::Relaxed) {
            // lint: allow(no-print) -- operator-facing store log; also counted in stats
            eprintln!(
                "lowvcc-store: publish of {} failed after {} attempts ({}); \
                 degrading to memory-only operation",
                path.display(),
                self.retry.attempts.max(1),
                last_err.map_or_else(|| "unknown error".into(), |e| e.to_string()),
            );
        }
    }

    /// Number of records currently on disk (0 for ephemeral stores,
    /// quarantined records excluded). Walks the shard directories;
    /// best-effort — an unlistable directory counts as empty. Intended
    /// for reporting, not hot paths.
    #[must_use]
    pub fn disk_entries(&self) -> u64 {
        let Some(dir) = &self.dir else { return 0 };
        let Ok(shards) = fs::read_dir(dir) else {
            return 0;
        };
        let mut n = 0;
        for shard in shards.flatten() {
            let shard = shard.path();
            if !shard.is_dir() || shard.file_name().is_some_and(|f| f == QUARANTINE_DIR) {
                continue;
            }
            let Ok(entries) = fs::read_dir(&shard) else {
                continue;
            };
            for entry in entries.flatten() {
                if entry.path().extension().is_some_and(|e| e == "sim") {
                    n += 1;
                }
            }
        }
        n
    }
}

/// Removes `*.tmp.*` leftovers a killed process abandoned mid-publish
/// from every shard directory (quarantine excluded). Best-effort by
/// design — startup must succeed on a half-broken disk.
fn sweep_orphan_tmps(io: &dyn StoreIo, dir: &Path) -> u64 {
    let Ok(shards) = fs::read_dir(dir) else {
        return 0;
    };
    let mut swept = 0;
    for shard in shards.flatten() {
        let shard = shard.path();
        if !shard.is_dir() || shard.file_name().is_some_and(|f| f == QUARANTINE_DIR) {
            continue;
        }
        let Ok(entries) = fs::read_dir(&shard) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            let is_tmp = p
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains(".tmp."));
            if is_tmp && io.remove_file(&p).is_ok() {
                swept += 1;
            }
        }
    }
    swept
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowvcc_core::{sim_key, CoreConfig, Mechanism, SimConfig, Simulator};
    use lowvcc_sram::voltage::mv;
    use lowvcc_sram::CycleTimeModel;
    use lowvcc_trace::{TraceSpec, WorkloadFamily};

    fn run_one() -> (SimKey, SimResult) {
        let timing = CycleTimeModel::silverthorne_45nm();
        let cfg = SimConfig::at_vcc(
            CoreConfig::silverthorne(),
            &timing,
            mv(500),
            Mechanism::Iraw,
        );
        let spec = TraceSpec::new(WorkloadFamily::Kernel, 0, 3_000);
        let result = Simulator::new(cfg.clone())
            .unwrap()
            .run(&spec.build().unwrap())
            .unwrap();
        (sim_key(&cfg, &spec), result)
    }

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lowvcc_store_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn round_trips_through_disk_and_memory() {
        let dir = tmpdir("roundtrip");
        let (key, result) = run_one();
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.get(key), None);
        store.put(key, &result);
        assert_eq!(store.get(key), Some(result.clone()));

        // A fresh store over the same directory reads it from disk.
        let cold = ResultStore::open(&dir).unwrap();
        assert_eq!(cold.get(key), Some(result));
        assert_eq!(cold.stats().hits, 1);
        assert_eq!(cold.stats().misses, 0);
        assert_eq!(cold.disk_entries(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ephemeral_store_caches_in_memory_only() {
        let (key, result) = run_one();
        let store = ResultStore::ephemeral();
        assert_eq!(store.get(key), None);
        store.put(key, &result);
        assert_eq!(store.get(key), Some(result));
        assert_eq!(store.dir(), None);
        assert_eq!(store.disk_entries(), 0);
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.stores), (1, 1, 1));
        assert!(!s.degraded);
    }

    #[test]
    fn remote_fetch_fills_local_misses_but_peek_never_cascades() {
        let (key, result) = run_one();
        let calls = Arc::new(AtomicU64::new(0));
        let hook_calls = Arc::clone(&calls);
        let remote_result = result.clone();
        let store = ResultStore::ephemeral().with_remote_fetch(Arc::new(move |k| {
            hook_calls.fetch_add(1, Ordering::Relaxed);
            (k == key).then(|| remote_result.clone())
        }));
        // peek_local (what serves peer_get) never consults the hook —
        // the no-cascade rule.
        assert!(store.peek_local(key).is_none());
        assert_eq!(calls.load(Ordering::Relaxed), 0);
        // A real lookup misses locally, fetches from the peer, and
        // promotes the result into the memory tier.
        assert_eq!(store.get(key), Some(result.clone()));
        let s = store.stats();
        assert_eq!((s.peer_fetches, s.peer_hits, s.hits), (1, 1, 1));
        // Promoted: the second lookup answers without dialing again.
        assert_eq!(store.get(key), Some(result));
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        // A hook miss is a plain miss.
        let other = SimKey::from_value(key.value() ^ 1);
        assert_eq!(store.get(other), None);
        let s = store.stats();
        assert_eq!((s.peer_fetches, s.peer_hits, s.misses), (2, 1, 1));
    }

    #[test]
    fn corrupt_entries_quarantine_and_self_heal() {
        let dir = tmpdir("corrupt");
        let (key, result) = run_one();
        {
            let store = ResultStore::open(&dir).unwrap();
            store.put(key, &result);
        }
        // Flip one payload byte on disk.
        let hex = key.to_hex();
        let path = dir.join(&hex[..2]).join(format!("{hex}.sim"));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        // The corrupt record reads as a miss, is moved to quarantine/,
        // and the key is free to be re-simulated and re-published.
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.get(key), None);
        assert_eq!(store.stats().quarantined, 1);
        assert_eq!(store.stats().misses, 1);
        assert!(!path.exists(), "corrupt record must leave the shard");
        assert!(
            dir.join(QUARANTINE_DIR).join(format!("{hex}.sim")).exists(),
            "corrupt record must land in quarantine/"
        );
        assert_eq!(store.disk_entries(), 0, "quarantine is not an entry");

        // Self-heal: publish again, and a cold reopen sees a good record.
        store.put(key, &result);
        let cold = ResultStore::open(&dir).unwrap();
        assert_eq!(cold.get(key), Some(result));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_evicts_oldest_under_pressure() {
        let (key, result) = run_one();
        let store = ResultStore::ephemeral().with_lru_capacity(2);
        // Three distinct keys from three voltages.
        let timing = CycleTimeModel::silverthorne_45nm();
        let keys: Vec<SimKey> = [450u32, 500, 550]
            .iter()
            .map(|&v| {
                let cfg =
                    SimConfig::at_vcc(CoreConfig::silverthorne(), &timing, mv(v), Mechanism::Iraw);
                sim_key(&cfg, &TraceSpec::new(WorkloadFamily::Kernel, 0, 3_000))
            })
            .collect();
        let _ = key;
        for &k in &keys {
            store.put(k, &result);
        }
        // Capacity 2: the first key fell out, the last two stayed.
        assert_eq!(store.get(keys[0]), None);
        assert!(store.get(keys[1]).is_some());
        assert!(store.get(keys[2]).is_some());
    }

    #[test]
    fn hit_only_traffic_keeps_the_recency_queue_bounded() {
        // A warmed daemon's steady state is gets with no inserts; the
        // recency queue must stay bounded anyway.
        let (key, result) = run_one();
        let mut lru = Lru::new(2);
        lru.insert(key, result);
        for _ in 0..10_000 {
            assert!(lru.get(key).is_some());
        }
        let bound = 2usize.saturating_mul(4).max(64) + 1;
        assert!(
            lru.recency.len() <= bound,
            "queue grew to {} entries on a hit-only workload",
            lru.recency.len()
        );
    }

    #[test]
    fn poisoned_lru_lock_recovers_instead_of_cascading() {
        let (key, result) = run_one();
        let store = ResultStore::ephemeral();
        store.put(key, &result);
        // Poison the inner mutex: panic while holding the guard (the
        // same poisoning a worker-thread panic mid-operation causes).
        let poisoned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = store.lru.raw().lock().unwrap();
            panic!("worker died mid-operation");
        }));
        assert!(poisoned.is_err());
        assert!(store.lru.raw().lock().is_err(), "lock really is poisoned");
        // Every path over the lock must keep working: the Lru holds
        // only cache state, so it is recovered, not propagated.
        assert_eq!(store.get(key), Some(result.clone()));
        store.put(key, &result);
        assert!(matches!(store.lookup(key), Flight::Hit(_)));
    }

    #[test]
    fn single_flight_coalesces_concurrent_identical_queries() {
        let (key, result) = run_one();
        let store = ResultStore::ephemeral();
        let workers = 8;
        let barrier = std::sync::Barrier::new(workers);
        let leads = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    barrier.wait();
                    loop {
                        match store.lookup(key) {
                            Flight::Hit(r) => {
                                assert_eq!(*r, result);
                                break;
                            }
                            Flight::Lead(guard) => {
                                leads.fetch_add(1, Ordering::Relaxed);
                                // Hold the flight open long enough that
                                // every other thread must coalesce.
                                std::thread::sleep(std::time::Duration::from_millis(100));
                                store.put(key, &result);
                                drop(guard);
                                break;
                            }
                            Flight::Pending(waiter) => waiter.wait(),
                        }
                    }
                });
            }
        });
        assert_eq!(leads.load(Ordering::Relaxed), 1, "exactly one leader");
        let s = store.stats();
        assert_eq!(s.misses, 1, "one engine invocation for 8 queries");
        assert_eq!(s.hits, 7, "everyone else reuses the published result");
        assert_eq!(s.coalesced, 7, "everyone else waited on the flight");
    }

    #[test]
    fn abandoned_flight_hands_leadership_to_a_waiter() {
        let (key, result) = run_one();
        let store = ResultStore::ephemeral();
        let Flight::Lead(first) = store.lookup(key) else {
            panic!("cold lookup must lead");
        };
        std::thread::scope(|s| {
            let worker = s.spawn(|| loop {
                match store.lookup(key) {
                    Flight::Hit(r) => break *r,
                    Flight::Lead(guard) => {
                        store.put(key, &result);
                        drop(guard);
                    }
                    Flight::Pending(waiter) => waiter.wait(),
                }
            });
            std::thread::sleep(std::time::Duration::from_millis(50));
            // Abandon without publishing — an erroring leader. The
            // waiter must wake, claim leadership and finish the job.
            drop(first);
            assert_eq!(worker.join().unwrap(), result);
        });
        assert_eq!(store.stats().misses, 2, "both leadership claims count");
        assert_eq!(store.get(key), Some(result));
    }

    #[test]
    fn thread_misses_track_only_the_calling_thread() {
        let (key, _) = run_one();
        let store = ResultStore::ephemeral();
        let before = ResultStore::thread_misses();
        std::thread::scope(|s| {
            s.spawn(|| {
                assert_eq!(store.get(key), None);
            });
        });
        assert_eq!(store.stats().misses, 1, "global counter sees the miss");
        assert_eq!(
            ResultStore::thread_misses(),
            before,
            "another thread's miss must not leak into this thread's tally"
        );
        assert_eq!(store.get(key), None);
        assert_eq!(ResultStore::thread_misses(), before + 1);
    }

    #[test]
    fn concurrent_writers_never_publish_torn_records() {
        let dir = tmpdir("concurrent");
        let (key, result) = run_one();
        let store = ResultStore::open(&dir).unwrap();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..20 {
                        store.put(key, &result);
                        assert!(store.get(key).is_some());
                    }
                });
            }
        });
        let cold = ResultStore::open(&dir).unwrap();
        assert_eq!(cold.get(key), Some(result));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn startup_sweeps_orphaned_tmp_files() {
        let dir = tmpdir("orphans");
        let (key, result) = run_one();
        {
            let store = ResultStore::open(&dir).unwrap();
            store.put(key, &result);
        }
        // Simulate a crash mid-publish: leftover tempfiles in a shard.
        let hex = key.to_hex();
        let shard = dir.join(&hex[..2]);
        fs::write(shard.join(format!(".{hex}.tmp.999.0")), b"partial").unwrap();
        fs::write(shard.join(format!(".{hex}.tmp.999.1")), b"x").unwrap();

        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.stats().orphans_swept, 2);
        assert_eq!(store.disk_entries(), 1, "the real record survives");
        assert_eq!(store.get(key), Some(result));
        assert!(!shard.join(format!(".{hex}.tmp.999.0")).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_write_faults_are_retried_through() {
        use crate::store_io::{FaultKind, FaultPlan, FaultyIo};
        let dir = tmpdir("retry");
        let (key, result) = run_one();
        // Op 0 = shard-create is unfaulted but counted; plan pins faults
        // onto the first write and the following rename *retry* cycle:
        // attempt 1: write(0 torn) → fail; attempt 2: write(1 ok),
        // rename(2 fail) → fail; attempt 3: write(3), rename(4),
        // sync(5) all clean → published.
        let io = Arc::new(FaultyIo::new(
            FaultPlan::none()
                .with_fault(0, FaultKind::TornWrite)
                .with_fault(2, FaultKind::RenameFail),
        ));
        let store = ResultStore::open_with(
            &dir,
            Arc::clone(&io) as Arc<dyn StoreIo>,
            RetryPolicy::immediate(),
        )
        .unwrap();
        store.put(key, &result);
        let s = store.stats();
        assert_eq!(s.retries, 2, "two backoff cycles");
        assert_eq!(s.write_failures, 0);
        assert!(!s.degraded);
        assert_eq!(io.injected().torn_writes, 1);
        assert_eq!(io.injected().rename_fails, 1);
        // The record really was published despite the faults.
        let cold = ResultStore::open(&dir).unwrap();
        assert_eq!(cold.get(key), Some(result));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhausted_write_retries_degrade_to_memory_only() {
        use crate::store_io::{FaultPlan, FaultyIo};
        let dir = tmpdir("degrade");
        let (key, result) = run_one();
        // Every operation faults: no publish can ever succeed.
        let io = Arc::new(FaultyIo::new(FaultPlan::seeded(42, 1024)));
        let store = ResultStore::open_with(
            &dir,
            Arc::clone(&io) as Arc<dyn StoreIo>,
            RetryPolicy::immediate(),
        )
        .unwrap();
        store.put(key, &result);
        let s = store.stats();
        assert!(s.degraded, "exhausted retries must latch degraded mode");
        assert_eq!(s.write_failures, 1);
        assert_eq!(s.retries, 3, "attempts-1 backoff cycles");
        // Memory-only operation continues: the key still answers.
        assert_eq!(store.get(key), Some(result.clone()));
        // Further puts skip the disk entirely (op count stops growing).
        let ops_before = io.ops();
        store.put(key, &result);
        assert_eq!(io.ops(), ops_before, "degraded puts must not touch disk");
        assert_eq!(store.stats().write_failures, 1, "and are not failures");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_faults_quarantine_and_hand_leadership_back() {
        use crate::store_io::{FaultKind, FaultPlan, FaultyIo};
        let dir = tmpdir("readfault");
        let (key, result) = run_one();
        {
            let store = ResultStore::open(&dir).unwrap();
            store.put(key, &result);
        }
        // Op 0 is the cold read: inject EIO. The quarantine rename that
        // follows is op 1 (clean). The re-simulation path then leads.
        let io = Arc::new(FaultyIo::new(
            FaultPlan::none().with_fault(0, FaultKind::ReadEio),
        ));
        let store = ResultStore::open_with(
            &dir,
            Arc::clone(&io) as Arc<dyn StoreIo>,
            RetryPolicy::immediate(),
        )
        .unwrap();
        let Flight::Lead(guard) = store.lookup(key) else {
            panic!("a quarantined read must degrade to a leading miss");
        };
        assert_eq!(store.stats().quarantined, 1);
        assert!(
            dir.join(QUARANTINE_DIR).is_dir(),
            "unreadable record must be moved aside"
        );
        // The leader republishes; the store is healed.
        store.put(key, &result);
        drop(guard);
        assert_eq!(store.get(key), Some(result));
        assert!(!store.degraded());
        let _ = fs::remove_dir_all(&dir);
    }
}
