//! The machine-readable perf trajectory (`BENCH_*.json`): every PR
//! appends one measurement of the batched sweep engine against the
//! legacy per-point path, so a regression in either execution model
//! shows up as a kink in the committed series instead of a shrug.
//!
//! A document is `{"schema": "lowvcc-bench-trajectory-v1", "entries":
//! [...]}`. Each entry records the suite, the sweep grid shape,
//! wall-clock seconds and simulated uops/s for both execution models —
//! in total and per workload family — and the batched-over-per-point
//! speedup. Documents round-trip through the strict parser in
//! [`crate::json`]; the `bench_json_check` binary fails CI the moment a
//! committed document stops parsing.

use std::path::Path;
use std::time::Instant;

use lowvcc_core::{run_batch, EngineWorkspace, Mechanism, SimConfig, SimError, Simulator};
use lowvcc_sram::PAPER_SWEEP;
use lowvcc_trace::TraceArena;

use crate::context::ExperimentContext;
use crate::error::ExperimentError;
use crate::json::{self, Value};

/// Schema identifier of a trajectory document.
pub const TRAJECTORY_SCHEMA: &str = "lowvcc-bench-trajectory-v1";

/// Batched-vs-per-point timings for one workload family.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyThroughput {
    /// Family label (e.g. `specint`).
    pub family: String,
    /// Dynamic uops each execution model simulated for this family
    /// (family trace uops × grid configurations).
    pub uops: u64,
    /// Wall-clock seconds of the batched pass.
    pub batched_seconds: f64,
    /// Wall-clock seconds of the legacy per-point pass.
    pub per_point_seconds: f64,
}

fn rate(uops: u64, secs: f64) -> f64 {
    if secs > 0.0 && secs.is_finite() {
        uops as f64 / secs
    } else {
        0.0
    }
}

fn ratio(per_point: f64, batched: f64) -> f64 {
    if batched > 0.0 && per_point.is_finite() {
        per_point / batched
    } else {
        1.0
    }
}

impl FamilyThroughput {
    /// Simulated uops per second of the batched pass (`0.0` on
    /// degenerate timing, never `inf`/`NaN`).
    #[must_use]
    pub fn batched_uops_per_second(&self) -> f64 {
        rate(self.uops, self.batched_seconds)
    }

    /// Simulated uops per second of the per-point pass.
    #[must_use]
    pub fn per_point_uops_per_second(&self) -> f64 {
        rate(self.uops, self.per_point_seconds)
    }

    /// Batched speedup over per-point (`1.0` on degenerate timing).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        ratio(self.per_point_seconds, self.batched_seconds)
    }

    fn to_json(&self) -> String {
        json::object(&[
            ("family", json::string(&self.family)),
            ("uops", self.uops.to_string()),
            ("batched_seconds", json::number(self.batched_seconds)),
            ("per_point_seconds", json::number(self.per_point_seconds)),
            (
                "batched_uops_per_second",
                json::number(self.batched_uops_per_second()),
            ),
            (
                "per_point_uops_per_second",
                json::number(self.per_point_uops_per_second()),
            ),
            ("speedup", json::number(self.speedup())),
        ])
    }
}

/// One appended trajectory measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryEntry {
    /// Suite label the measurement ran on.
    pub suite: String,
    /// Voltage points in the sweep grid (13 — the paper's grid).
    pub voltage_points: usize,
    /// Mechanisms per voltage point (3: baseline, IRAW, ideal logic).
    pub mechanisms: usize,
    /// Per-family timings, in first-appearance suite order.
    pub families: Vec<FamilyThroughput>,
}

impl TrajectoryEntry {
    /// Dynamic uops each execution model simulated in total.
    #[must_use]
    pub fn total_uops(&self) -> u64 {
        self.families.iter().map(|f| f.uops).sum()
    }

    /// Total wall-clock seconds of the batched pass.
    #[must_use]
    pub fn batched_seconds(&self) -> f64 {
        self.families.iter().map(|f| f.batched_seconds).sum()
    }

    /// Total wall-clock seconds of the per-point pass.
    #[must_use]
    pub fn per_point_seconds(&self) -> f64 {
        self.families.iter().map(|f| f.per_point_seconds).sum()
    }

    /// Overall batched throughput (simulated uops per second).
    #[must_use]
    pub fn batched_uops_per_second(&self) -> f64 {
        rate(self.total_uops(), self.batched_seconds())
    }

    /// Overall per-point throughput.
    #[must_use]
    pub fn per_point_uops_per_second(&self) -> f64 {
        rate(self.total_uops(), self.per_point_seconds())
    }

    /// Overall batched speedup over per-point.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        ratio(self.per_point_seconds(), self.batched_seconds())
    }

    /// Renders the entry as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let families: Vec<String> = self
            .families
            .iter()
            .map(FamilyThroughput::to_json)
            .collect();
        json::object(&[
            ("suite", json::string(&self.suite)),
            ("voltage_points", self.voltage_points.to_string()),
            ("mechanisms", self.mechanisms.to_string()),
            (
                "grid_configs",
                (self.voltage_points * self.mechanisms).to_string(),
            ),
            ("total_uops", self.total_uops().to_string()),
            ("batched_seconds", json::number(self.batched_seconds())),
            ("per_point_seconds", json::number(self.per_point_seconds())),
            (
                "batched_uops_per_second",
                json::number(self.batched_uops_per_second()),
            ),
            (
                "per_point_uops_per_second",
                json::number(self.per_point_uops_per_second()),
            ),
            ("speedup", json::number(self.speedup())),
            ("families", json::array(&families)),
        ])
    }
}

/// The paper's full sweep grid: 13 voltage points × all 3 mechanisms.
#[must_use]
pub fn paper_grid(ctx: &ExperimentContext) -> Vec<SimConfig> {
    PAPER_SWEEP
        .iter()
        .flat_map(|vcc| {
            [Mechanism::Baseline, Mechanism::Iraw, Mechanism::IdealLogic]
                .map(|m| SimConfig::at_vcc(ctx.core, &ctx.timing, vcc, m))
        })
        .collect()
}

/// Measures the batched engine against the legacy per-point path over
/// the context's suite under the full [`paper_grid`], one accumulated
/// timing per workload family.
///
/// Both passes run sequentially in the calling thread, so entries stay
/// comparable across machines with different core counts — the
/// trajectory tracks the *engine*, not the runner. Each pass pays
/// exactly its production costs inside the timed region: the batched
/// pass one arena decode per trace plus reset-reuse of a single
/// workspace; the per-point pass a fresh engine and a fresh decode per
/// (configuration, trace) pair.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn measure(ctx: &ExperimentContext) -> Result<TrajectoryEntry, ExperimentError> {
    let grid = paper_grid(ctx);
    let mut families: Vec<FamilyThroughput> = Vec::new();
    let mut ws = EngineWorkspace::new();
    for (spec, trace) in ctx.specs.iter().zip(&ctx.suite) {
        let label = spec.family.name();

        let started = Instant::now();
        let arena = TraceArena::from_trace(trace);
        let mut batched_committed = 0u64;
        for r in run_batch(&grid, &arena, &mut ws)? {
            batched_committed += r.stats.instructions;
        }
        let batched_seconds = started.elapsed().as_secs_f64();

        let started = Instant::now();
        let mut per_point_committed = 0u64;
        for cfg in &grid {
            per_point_committed += Simulator::new(cfg.clone())
                .map_err(SimError::from)?
                .run(trace)?
                .stats
                .instructions;
        }
        let per_point_seconds = started.elapsed().as_secs_f64();
        debug_assert_eq!(batched_committed, per_point_committed);

        match families.iter_mut().find(|f| f.family == label) {
            Some(f) => {
                f.uops += batched_committed;
                f.batched_seconds += batched_seconds;
                f.per_point_seconds += per_point_seconds;
            }
            None => families.push(FamilyThroughput {
                family: label.to_string(),
                uops: batched_committed,
                batched_seconds,
                per_point_seconds,
            }),
        }
    }
    Ok(TrajectoryEntry {
        suite: ctx.suite_label.clone(),
        voltage_points: PAPER_SWEEP.iter().count(),
        mechanisms: 3,
        families,
    })
}

/// Why a trajectory document failed validation. The `Display` form is
/// what `bench_json_check` prints (after the file path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrajectoryFormatError {
    /// The document is not strictly valid JSON.
    Json(json::JsonError),
    /// The document has no string `"schema"` tag.
    MissingSchema,
    /// The schema tag is not [`TRAJECTORY_SCHEMA`].
    UnknownSchema(String),
    /// The document has no `"entries"` array.
    MissingEntries,
    /// One entry is malformed.
    Entry {
        /// Index of the offending entry.
        index: usize,
        /// What is wrong with it.
        problem: String,
    },
}

impl std::fmt::Display for TrajectoryFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Json(e) => write!(f, "{e}"),
            Self::MissingSchema => write!(f, "missing schema tag"),
            Self::UnknownSchema(schema) => write!(f, "unknown schema {schema:?}"),
            Self::MissingEntries => write!(f, "missing entries array"),
            Self::Entry { index, problem } => write!(f, "entry {index}: {problem}"),
        }
    }
}

impl std::error::Error for TrajectoryFormatError {}

/// Validates a trajectory document, returning its entry count.
///
/// # Errors
///
/// Returns a [`TrajectoryFormatError`] describing the first problem
/// found: a strict-parse failure, a missing/unknown schema tag, or a
/// malformed entry.
pub fn validate(text: &str) -> Result<usize, TrajectoryFormatError> {
    let entry = |index, problem: &str| TrajectoryFormatError::Entry {
        index,
        problem: problem.to_string(),
    };
    let doc = json::parse(text).map_err(TrajectoryFormatError::Json)?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or(TrajectoryFormatError::MissingSchema)?;
    if schema != TRAJECTORY_SCHEMA {
        return Err(TrajectoryFormatError::UnknownSchema(schema.to_string()));
    }
    let entries = doc
        .get("entries")
        .and_then(Value::as_array)
        .ok_or(TrajectoryFormatError::MissingEntries)?;
    for (i, e) in entries.iter().enumerate() {
        if e.get("suite").and_then(Value::as_str).is_none() {
            return Err(entry(i, "suite must be a string"));
        }
        for key in [
            "batched_seconds",
            "per_point_seconds",
            "batched_uops_per_second",
            "per_point_uops_per_second",
            "speedup",
        ] {
            if e.get(key).and_then(Value::as_f64).is_none() {
                return Err(entry(i, &format!("{key} must be a number")));
            }
        }
        let families = e
            .get("families")
            .and_then(Value::as_array)
            .ok_or_else(|| entry(i, "families must be an array"))?;
        if families.is_empty() {
            return Err(entry(i, "families is empty"));
        }
        for (j, f) in families.iter().enumerate() {
            if f.get("family").and_then(Value::as_str).is_none() {
                return Err(entry(i, &format!("family {j}: family must be a string")));
            }
            if f.get("uops").and_then(Value::as_u64).is_none() {
                return Err(entry(
                    i,
                    &format!("family {j}: uops must be a whole number"),
                ));
            }
        }
    }
    Ok(entries.len())
}

fn invalid(path: &Path, reason: TrajectoryFormatError) -> ExperimentError {
    ExperimentError::io_at(path)(std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        reason.to_string(),
    ))
}

fn rendered_entries(text: &str) -> Result<Vec<String>, TrajectoryFormatError> {
    validate(text)?;
    let doc = json::parse(text).expect("validated above");
    let entries = doc
        .get("entries")
        .and_then(Value::as_array)
        .expect("validated above");
    Ok(entries.iter().map(json::render).collect())
}

/// Appends `entry` to the trajectory document at `path`, creating the
/// document when absent. An existing document must strictly parse and
/// carry the expected schema — a corrupt trajectory fails loudly here
/// instead of being silently overwritten.
///
/// # Errors
///
/// Returns an I/O-flavored [`ExperimentError`] (path attached) on read,
/// parse/validation, or write failure.
pub fn append(path: &Path, entry: &TrajectoryEntry) -> Result<(), ExperimentError> {
    let mut entries = match std::fs::read_to_string(path) {
        Ok(text) => rendered_entries(&text).map_err(|reason| invalid(path, reason))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(ExperimentError::io_at(path)(e)),
    };
    entries.push(entry.to_json());
    let mut doc = json::object(&[
        ("schema", json::string(TRAJECTORY_SCHEMA)),
        ("entries", json::array(&entries)),
    ]);
    doc.push('\n');
    std::fs::write(path, doc).map_err(ExperimentError::io_at(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("lowvcc_traj_{}_{name}.json", std::process::id()))
    }

    #[test]
    fn measure_covers_every_family_and_grid_config() {
        let ctx = ExperimentContext::sized(1, 500).unwrap();
        let entry = measure(&ctx).unwrap();
        assert_eq!(entry.voltage_points, 13);
        assert_eq!(entry.mechanisms, 3);
        assert_eq!(entry.families.len(), 7, "one timing per family");
        // Every (config, trace) run commits the whole trace in both
        // execution models.
        assert_eq!(entry.total_uops(), 7 * 500 * 39);
        assert!(entry.batched_seconds() > 0.0);
        assert!(entry.per_point_seconds() > 0.0);
        let doc = format!(
            "{{\"schema\": {}, \"entries\": [{}]}}",
            json::string(TRAJECTORY_SCHEMA),
            entry.to_json()
        );
        assert_eq!(validate(&doc), Ok(1));
    }

    #[test]
    fn append_accumulates_and_round_trips() {
        let path = tmp("append");
        let _ = std::fs::remove_file(&path);
        let entry = TrajectoryEntry {
            suite: "quick (7×10k)".to_string(),
            voltage_points: 13,
            mechanisms: 3,
            families: vec![FamilyThroughput {
                family: "specint".to_string(),
                uops: 3_900_000,
                batched_seconds: 0.5,
                per_point_seconds: 0.75,
            }],
        };
        append(&path, &entry).unwrap();
        append(&path, &entry).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(validate(&text), Ok(2), "{text}");
        let doc = json::parse(&text).unwrap();
        let first = &doc.get("entries").unwrap().as_array().unwrap()[0];
        assert_eq!(first.get("speedup").unwrap().as_f64(), Some(1.5));
        assert_eq!(first.get("total_uops").unwrap().as_u64(), Some(3_900_000));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_refuses_corrupt_documents() {
        let path = tmp("corrupt");
        std::fs::write(&path, "{\"schema\": \"wrong\"").unwrap();
        let entry = TrajectoryEntry {
            suite: "s".to_string(),
            voltage_points: 13,
            mechanisms: 3,
            families: Vec::new(),
        };
        let err = append(&path, &entry).unwrap_err();
        assert!(err.to_string().contains("invalid JSON"), "{err}");
        // The corrupt document is left untouched for inspection.
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "{\"schema\": \"wrong\""
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn degenerate_timings_stay_finite() {
        let f = FamilyThroughput {
            family: "specint".to_string(),
            uops: 1_000,
            batched_seconds: 0.0,
            per_point_seconds: 0.0,
        };
        assert_eq!(f.batched_uops_per_second(), 0.0);
        assert_eq!(f.per_point_uops_per_second(), 0.0);
        assert_eq!(f.speedup(), 1.0);
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        for (doc, want) in [
            ("{", "invalid JSON"),
            ("{\"entries\": []}", "missing schema"),
            ("{\"schema\": \"nope\", \"entries\": []}", "unknown schema"),
            (
                "{\"schema\": \"lowvcc-bench-trajectory-v1\"}",
                "missing entries",
            ),
            (
                "{\"schema\": \"lowvcc-bench-trajectory-v1\", \"entries\": [{}]}",
                "suite must be a string",
            ),
        ] {
            let err = validate(doc).unwrap_err();
            assert!(err.to_string().contains(want), "{doc} -> {err}");
        }
    }
}
