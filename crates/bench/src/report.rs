//! Text tables and CSV emission for experiment results.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned text table.
///
/// ```
/// use lowvcc_bench::TextTable;
///
/// let mut t = TextTable::new(vec!["Vcc", "gain"]);
/// t.row(vec!["500 mV".into(), "1.59".into()]);
/// let s = t.render();
/// assert!(s.contains("500 mV"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<&str>) -> Self {
        Self {
            headers: headers.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}", cell, width = widths[i] + 2);
                let _ = i;
            }
            out.push('\n');
        };
        emit(&mut out, &self.headers);
        let rule: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(rule.min(120)));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        let _ = cols;
        out
    }

    /// Writes the table as CSV to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            out.push_str(&escaped.join(","));
            out.push('\n');
        }
        fs::write(path, out)
    }
}

/// Formats a float with `digits` decimals.
#[must_use]
pub fn fnum(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "longheader"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("longheader"));
        assert!(lines[2].starts_with("xxxxxx"));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let dir = std::env::temp_dir().join("lowvcc_csv_test");
        let path = dir.join("t.csv");
        let mut t = TextTable::new(vec!["name", "v"]);
        t.row(vec!["a,b".into(), "say \"hi\"".into()]);
        t.write_csv(&path).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert!(s.contains("\"a,b\""));
        assert!(s.contains("\"say \"\"hi\"\"\""));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(1.23456, 3), "1.235");
        assert_eq!(fnum(2.0, 0), "2");
    }
}
