//! The store's disk-I/O seam: every filesystem operation the result
//! store performs goes through a [`StoreIo`] implementation.
//!
//! Production uses [`RealIo`] (plain `std::fs` plus the fsync discipline
//! an atomic-rename publish needs to survive power loss). Chaos tests
//! swap in [`FaultyIo`], which injects a *deterministic* schedule of
//! faults — torn writes, rename failures, EIO/ENOSPC, read bit-flips,
//! truncations — decided per operation index from a seed, so a failing
//! chaos run replays exactly.
//!
//! [`RetryPolicy`] lives here too: bounded exponential backoff with
//! deterministic jitter for transient publish failures, the write-side
//! half of the store's self-healing story (the read side is quarantine
//! plus re-simulation; see `store.rs`).

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use lowvcc_core::canon::fnv1a_64;

/// The store's view of the filesystem. Implementations must be safe to
/// share across the serve workers (`Send + Sync`).
pub trait StoreIo: Send + Sync + fmt::Debug {
    /// Reads a whole file.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) filesystem failures; `NotFound` is the
    /// one kind the store treats as a plain miss.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Writes `bytes` to `path` and fsyncs the *file* before returning,
    /// so a subsequent rename publishes fully-durable contents.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) filesystem failures; a torn write may
    /// leave a partial file behind.
    fn write_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Atomically renames `from` to `to`.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) filesystem failures.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Fsyncs a *directory*, making a rename inside it durable across
    /// power loss (the second half of the publish fsync discipline).
    ///
    /// # Errors
    ///
    /// Propagates (or injects) filesystem failures.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;

    /// Creates `dir` and any missing parents.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures (never injected: directory
    /// creation is also the quarantine fallback path).
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Removes a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures (never injected: removal is the
    /// last-resort cleanup for condemned or leftover files).
    fn remove_file(&self, path: &Path) -> io::Result<()>;
}

/// The production [`StoreIo`]: `std::fs` plus full fsync discipline.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl StoreIo for RealIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = fs::File::create(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // POSIX: fsync on a read-only directory handle persists the
        // directory entries themselves — without it, an atomic rename
        // can vanish on power loss even though both files were synced.
        fs::File::open(dir)?.sync_all()
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }
}

/// One injectable fault. Read-class and write-class kinds apply to the
/// matching operations only; see [`FaultPlan`] for how a seeded schedule
/// picks a kind compatible with the operation it lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A write persists only a prefix of the bytes, then fails with EIO
    /// (the classic torn write a crash mid-`write(2)` leaves behind).
    TornWrite,
    /// A write fails with EIO before writing anything.
    WriteEio,
    /// A write fails with ENOSPC (disk full) before writing anything.
    WriteEnospc,
    /// A rename fails with EIO.
    RenameFail,
    /// A read fails with EIO.
    ReadEio,
    /// A read succeeds but one bit of the returned bytes is flipped
    /// (bit rot; the record checksum is what catches it).
    ReadBitFlip,
    /// A read succeeds but returns a strict prefix of the file.
    ReadTruncate,
}

impl FaultKind {
    /// Short stable name (used in logs and fault-count reports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::TornWrite => "torn_write",
            Self::WriteEio => "write_eio",
            Self::WriteEnospc => "write_enospc",
            Self::RenameFail => "rename_fail",
            Self::ReadEio => "read_eio",
            Self::ReadBitFlip => "read_bit_flip",
            Self::ReadTruncate => "read_truncate",
        }
    }
}

/// Operation class an injected fault must be compatible with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpClass {
    Read,
    Write,
    Rename,
    Sync,
}

impl OpClass {
    /// Kinds a seeded schedule may pick for this class. Directory syncs
    /// fail like writes (EIO) — there is no "torn fsync".
    fn kinds(self) -> &'static [FaultKind] {
        match self {
            Self::Read => &[
                FaultKind::ReadEio,
                FaultKind::ReadBitFlip,
                FaultKind::ReadTruncate,
            ],
            Self::Write => &[
                FaultKind::TornWrite,
                FaultKind::WriteEio,
                FaultKind::WriteEnospc,
            ],
            Self::Rename => &[FaultKind::RenameFail],
            Self::Sync => &[FaultKind::WriteEio],
        }
    }
}

/// Deterministic mixing of `(seed, op_index)` into fault decisions.
fn mix(seed: u64, op: u64) -> u64 {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&seed.to_le_bytes());
    bytes[8..].copy_from_slice(&op.to_le_bytes());
    fnv1a_64(&bytes)
}

/// A reproducible schedule of I/O faults.
///
/// Two layers, both deterministic:
///
/// * **explicit** injections pin one [`FaultKind`] to one operation
///   index (unit tests that know the exact op sequence);
/// * a **seeded** schedule faults roughly `rate_per_1024 / 1024` of all
///   operations, picking a kind compatible with each operation from a
///   hash of `(seed, op_index)` — aggressive chaos runs that replay
///   bit-identically for a given seed.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    rate_per_1024: u32,
    explicit: HashMap<u64, FaultKind>,
}

impl FaultPlan {
    /// The empty plan: no faults ever fire.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// A seeded schedule faulting ~`rate_per_1024/1024` of operations.
    #[must_use]
    pub fn seeded(seed: u64, rate_per_1024: u32) -> Self {
        Self {
            seed,
            rate_per_1024: rate_per_1024.min(1024),
            explicit: HashMap::new(),
        }
    }

    /// Pins `kind` to operation index `op` (0-based, in call order).
    /// An explicit fault whose class does not match the operation that
    /// actually lands on that index is skipped.
    #[must_use]
    pub fn with_fault(mut self, op: u64, kind: FaultKind) -> Self {
        self.explicit.insert(op, kind);
        self
    }

    /// Decides whether operation `op` of `class` faults, returning the
    /// kind plus deterministic parameter entropy (bit positions,
    /// truncation lengths).
    fn decide(&self, op: u64, class: OpClass) -> Option<(FaultKind, u64)> {
        let h = mix(self.seed, op);
        if let Some(&kind) = self.explicit.get(&op) {
            return class.kinds().contains(&kind).then_some((kind, h));
        }
        if u64::from(self.rate_per_1024) > h % 1024 {
            let kinds = class.kinds();
            // `% kinds.len()` always fits usize; the fallback keeps the
            // fault injector itself panic-free.
            let kind = kinds[usize::try_from((h >> 10) % kinds.len() as u64).unwrap_or(0)];
            return Some((kind, h >> 13));
        }
        None
    }
}

/// Per-kind tally of faults actually injected (the chaos gate asserts
/// every injection point was exercised).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounts {
    /// Torn (prefix-then-EIO) writes injected.
    pub torn_writes: u64,
    /// Plain EIO write failures injected.
    pub write_eio: u64,
    /// ENOSPC write failures injected.
    pub write_enospc: u64,
    /// Rename failures injected.
    pub rename_fails: u64,
    /// EIO read failures injected.
    pub read_eio: u64,
    /// Read bit-flips injected.
    pub read_bit_flips: u64,
    /// Read truncations injected.
    pub read_truncations: u64,
}

impl FaultCounts {
    /// Sum over every kind.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.torn_writes
            + self.write_eio
            + self.write_enospc
            + self.rename_fails
            + self.read_eio
            + self.read_bit_flips
            + self.read_truncations
    }
}

fn injected_eio(what: &str) -> io::Error {
    io::Error::other(format!("injected EIO ({what})"))
}

/// ENOSPC via the raw OS errno, so `ErrorKind` classification behaves
/// like the real thing without raising the crate's MSRV for
/// `ErrorKind::StorageFull`.
fn injected_enospc() -> io::Error {
    io::Error::from_raw_os_error(28)
}

/// A [`StoreIo`] that wraps [`RealIo`] and injects the faults of a
/// [`FaultPlan`], counting every injection per kind. The operation
/// index increments on every `read`/`write_sync`/`rename`/`sync_dir`
/// call (in call order), so single-threaded chaos runs are exactly
/// reproducible from the seed.
#[derive(Debug, Default)]
pub struct FaultyIo {
    inner: RealIo,
    plan: FaultPlan,
    ops: AtomicU64,
    torn_writes: AtomicU64,
    write_eio: AtomicU64,
    write_enospc: AtomicU64,
    rename_fails: AtomicU64,
    read_eio: AtomicU64,
    read_bit_flips: AtomicU64,
    read_truncations: AtomicU64,
}

impl FaultyIo {
    /// Wraps the real filesystem with `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            ..Self::default()
        }
    }

    /// Operations seen so far.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Faults injected so far, per kind.
    #[must_use]
    pub fn injected(&self) -> FaultCounts {
        FaultCounts {
            torn_writes: self.torn_writes.load(Ordering::Relaxed),
            write_eio: self.write_eio.load(Ordering::Relaxed),
            write_enospc: self.write_enospc.load(Ordering::Relaxed),
            rename_fails: self.rename_fails.load(Ordering::Relaxed),
            read_eio: self.read_eio.load(Ordering::Relaxed),
            read_bit_flips: self.read_bit_flips.load(Ordering::Relaxed),
            read_truncations: self.read_truncations.load(Ordering::Relaxed),
        }
    }

    fn next_fault(&self, class: OpClass) -> Option<(FaultKind, u64)> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        let decision = self.plan.decide(op, class)?;
        let counter = match decision.0 {
            FaultKind::TornWrite => &self.torn_writes,
            FaultKind::WriteEio => &self.write_eio,
            FaultKind::WriteEnospc => &self.write_enospc,
            FaultKind::RenameFail => &self.rename_fails,
            FaultKind::ReadEio => &self.read_eio,
            FaultKind::ReadBitFlip => &self.read_bit_flips,
            FaultKind::ReadTruncate => &self.read_truncations,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        Some(decision)
    }
}

impl StoreIo for FaultyIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.next_fault(OpClass::Read) {
            Some((FaultKind::ReadEio, _)) => Err(injected_eio("read")),
            Some((FaultKind::ReadBitFlip, entropy)) => {
                let mut bytes = self.inner.read(path)?;
                if !bytes.is_empty() {
                    let bit = entropy % (bytes.len() as u64 * 8);
                    bytes[usize::try_from(bit / 8).unwrap_or(0)] ^= 1 << (bit % 8);
                }
                Ok(bytes)
            }
            Some((FaultKind::ReadTruncate, entropy)) => {
                let mut bytes = self.inner.read(path)?;
                if !bytes.is_empty() {
                    bytes.truncate(usize::try_from(entropy % bytes.len() as u64).unwrap_or(0));
                }
                Ok(bytes)
            }
            _ => self.inner.read(path),
        }
    }

    fn write_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.next_fault(OpClass::Write) {
            Some((FaultKind::TornWrite, entropy)) => {
                // Persist a strict prefix, then report failure — what a
                // crash mid-write leaves on disk.
                let keep = usize::try_from(entropy % bytes.len().max(1) as u64).unwrap_or(0);
                let _ = self.inner.write_sync(path, &bytes[..keep]);
                Err(injected_eio("torn write"))
            }
            Some((FaultKind::WriteEio, _)) => Err(injected_eio("write")),
            Some((FaultKind::WriteEnospc, _)) => Err(injected_enospc()),
            _ => self.inner.write_sync(path, bytes),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.next_fault(OpClass::Rename) {
            Some((FaultKind::RenameFail, _)) => Err(injected_eio("rename")),
            _ => self.inner.rename(from, to),
        }
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        match self.next_fault(OpClass::Sync) {
            Some((FaultKind::WriteEio, _)) => Err(injected_eio("dir fsync")),
            _ => self.inner.sync_dir(dir),
        }
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }
}

/// Bounded exponential backoff with deterministic jitter for transient
/// publish failures. `attempts` counts *total* tries (first one
/// included); the delay before retry `n` (1-based) is
/// `min(base · 2ⁿ⁻¹, cap)` scaled by a jitter factor in `[½, 1)`
/// derived from `(salt, n)` — deterministic, so chaos runs replay, yet
/// decorrelated across keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total publish tries (min 1).
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Upper bound on any single backoff.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 4,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(80),
        }
    }
}

impl RetryPolicy {
    /// The default retry count with zero sleeps — for tests, where the
    /// schedule (not the wall clock) is what matters.
    #[must_use]
    pub fn immediate() -> Self {
        Self {
            base: Duration::ZERO,
            cap: Duration::ZERO,
            ..Self::default()
        }
    }

    /// A single try, no retries.
    #[must_use]
    pub fn none() -> Self {
        Self {
            attempts: 1,
            ..Self::immediate()
        }
    }

    /// The backoff to sleep before retry `attempt` (1-based), salted by
    /// the key being published.
    #[must_use]
    pub fn delay(&self, attempt: u32, salt: u64) -> Duration {
        if attempt == 0 || self.base.is_zero() {
            return Duration::ZERO;
        }
        let exp = self
            .base
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.cap);
        // Jitter factor in [512, 1023]/1024 ≈ [0.5, 1).
        let jitter = 512 + u32::try_from(mix(salt, u64::from(attempt)) % 512).unwrap_or(0);
        exp * jitter / 1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_io_round_trips_with_fsync() {
        let dir = std::env::temp_dir().join(format!("lowvcc_io_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let io = RealIo;
        io.create_dir_all(&dir).unwrap();
        let p = dir.join("x.bin");
        io.write_sync(&p, b"hello").unwrap();
        io.sync_dir(&dir).unwrap();
        assert_eq!(io.read(&p).unwrap(), b"hello");
        let q = dir.join("y.bin");
        io.rename(&p, &q).unwrap();
        assert_eq!(io.read(&q).unwrap(), b"hello");
        io.remove_file(&q).unwrap();
        assert_eq!(
            io.read(&q).unwrap_err().kind(),
            io::ErrorKind::NotFound,
            "removed file reads as NotFound"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn explicit_faults_fire_on_their_op_index_only() {
        let dir = std::env::temp_dir().join(format!("lowvcc_io_explicit_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("x.bin");
        let io = FaultyIo::new(
            FaultPlan::none()
                .with_fault(1, FaultKind::WriteEio)
                .with_fault(2, FaultKind::ReadBitFlip),
        );
        io.write_sync(&p, b"abc").unwrap(); // op 0: clean
        assert!(io.write_sync(&p, b"abc").is_err()); // op 1: injected
        let flipped = io.read(&p).unwrap(); // op 2: one bit flipped
        assert_ne!(flipped, b"abc");
        assert_eq!(flipped.len(), 3);
        assert_eq!(io.read(&p).unwrap(), b"abc"); // op 3: clean again
        let counts = io.injected();
        assert_eq!(counts.write_eio, 1);
        assert_eq!(counts.read_bit_flips, 1);
        assert_eq!(counts.total(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn explicit_fault_of_the_wrong_class_is_skipped() {
        let dir = std::env::temp_dir().join(format!("lowvcc_io_class_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("x.bin");
        let io = FaultyIo::new(FaultPlan::none().with_fault(0, FaultKind::ReadEio));
        // Op 0 is a write; the pinned read fault cannot apply to it.
        io.write_sync(&p, b"abc").unwrap();
        assert_eq!(io.injected().total(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeded_schedules_are_deterministic_and_class_compatible() {
        let a = FaultPlan::seeded(7, 512);
        let b = FaultPlan::seeded(7, 512);
        let mut faulted = 0u32;
        for op in 0..2_000 {
            let da = a.decide(op, OpClass::Write);
            assert_eq!(da, b.decide(op, OpClass::Write), "same seed, same plan");
            if let Some((kind, _)) = da {
                assert!(OpClass::Write.kinds().contains(&kind));
                faulted += 1;
            }
            if let Some((kind, _)) = a.decide(op, OpClass::Read) {
                assert!(OpClass::Read.kinds().contains(&kind));
            }
        }
        // rate 512/1024 ≈ half of all ops.
        assert!((600..1_400).contains(&faulted), "got {faulted}");
        assert_ne!(
            FaultPlan::seeded(8, 512).decide(0, OpClass::Write),
            FaultPlan::seeded(7, 512)
                .decide(0, OpClass::Write)
                .or(Some((FaultKind::TornWrite, u64::MAX))),
            "different seeds give different schedules somewhere"
        );
    }

    #[test]
    fn torn_write_leaves_a_strict_prefix() {
        let dir = std::env::temp_dir().join(format!("lowvcc_io_torn_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("x.bin");
        let io = FaultyIo::new(FaultPlan::none().with_fault(0, FaultKind::TornWrite));
        assert!(io.write_sync(&p, b"0123456789").is_err());
        let on_disk = fs::read(&p).unwrap_or_default();
        assert!(
            on_disk.len() < 10,
            "torn write kept {} bytes",
            on_disk.len()
        );
        assert_eq!(&on_disk[..], &b"0123456789"[..on_disk.len()]);
        assert_eq!(io.injected().torn_writes, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_is_classified_as_a_real_errno() {
        let e = injected_enospc();
        assert_eq!(e.raw_os_error(), Some(28));
    }

    #[test]
    fn retry_delays_are_deterministic_bounded_and_jittered() {
        let p = RetryPolicy::default();
        for attempt in 1..6 {
            for salt in [0u64, 1, 0xdead_beef] {
                let d = p.delay(attempt, salt);
                assert_eq!(d, p.delay(attempt, salt), "deterministic");
                assert!(d <= p.cap, "bounded by cap");
                // Jitter keeps at least half the exponential step.
                let full = p.base.saturating_mul(1 << (attempt - 1)).min(p.cap);
                assert!(d >= full / 2, "at least half the step");
            }
        }
        // Jitter decorrelates keys: not every salt maps to one delay.
        let spread: std::collections::HashSet<Duration> =
            (0..32u64).map(|salt| p.delay(3, salt)).collect();
        assert!(spread.len() > 1, "jitter must vary with the salt");
        assert_eq!(RetryPolicy::immediate().delay(3, 9), Duration::ZERO);
        assert_eq!(RetryPolicy::none().attempts, 1);
    }
}
