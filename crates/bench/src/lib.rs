//! Experiment harness: regenerates every table and figure of the HPCA 2010
//! low-Vcc paper from the reproduction stack.
//!
//! Each experiment module produces plain data rows plus formatted text
//! tables and CSV files, so the same code backs the `experiments` binary,
//! the integration tests and the criterion benches. The experiment IDs
//! match DESIGN.md §4:
//!
//! | ID | module | paper artefact |
//! |----|--------|----------------|
//! | F1 | [`experiments::fig1`] | Figure 1 — delay vs Vcc |
//! | F11a | [`experiments::fig11a`] | Figure 11a — cycle time vs Vcc |
//! | F11b | [`experiments::fig11b`] | Figure 11b — frequency & performance gains |
//! | F12 | [`experiments::fig12`] | Figure 12 — energy / delay / EDP |
//! | T1 | [`experiments::table1`] | Table 1 — technique comparison |
//! | S2 | [`experiments::stalls`] | §5.2 stall attribution at 575 mV |
//! | S1/S3/S4 | [`experiments::scalars`] | §5.2/§4.5/§5.3 scalar results |
//!
//! Figure 11b and Figure 12 share one measurement (a single baseline-vs-
//! IRAW sweep in [`experiments::sweep`]); their modules are thin aliases
//! over it. Every fallible API returns the typed [`ExperimentError`].
//! See the repository README for how to run the `experiments` binary.

pub mod admin;
pub mod bundle;
pub mod context;
pub mod error;
pub mod experiments;
pub mod json;
pub mod lockdep;
pub mod report;
pub mod store;
pub mod store_io;
pub mod trajectory;

pub use admin::{
    BundleExportReport, BundleImportReport, QuarantineEntry, ScrubReport, StoreSummary,
    VacuumReport,
};
pub use bundle::{BundleRecord, BUNDLE_FORMAT_VERSION, BUNDLE_MAGIC};
pub use context::{ExperimentContext, SuiteChoice, SuiteSpecError};
pub use error::ExperimentError;
pub use lockdep::{OrderedCondvar, OrderedGuard, OrderedMutex};
pub use report::TextTable;
pub use store::{
    Flight, FlightGuard, FlightWaiter, KeyOwnership, RemoteFetch, ResultStore, StoreError,
    StoreStats, QUARANTINE_DIR,
};
pub use store_io::{FaultCounts, FaultKind, FaultPlan, FaultyIo, RealIo, RetryPolicy, StoreIo};
pub use trajectory::{FamilyThroughput, TrajectoryEntry, TrajectoryFormatError, TRAJECTORY_SCHEMA};
