//! The experiment harness's boundary error type.
//!
//! Every fallible public API of this crate returns [`ExperimentError`];
//! `From` impls lift the upstream crates' typed errors
//! ([`TraceError`](lowvcc_trace::TraceError) from workload generation,
//! [`SimError`](lowvcc_core::SimError) from simulation) so experiment code
//! can use `?` at each seam, and CSV emission failures carry the offending
//! path.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use lowvcc_core::SimError;
use lowvcc_trace::TraceError;

use crate::store::StoreError;

/// Error running an experiment to completion.
#[derive(Debug)]
pub enum ExperimentError {
    /// Building a workload trace failed.
    Trace(TraceError),
    /// A simulation failed.
    Sim(SimError),
    /// Writing a result file failed.
    Io {
        /// Path of the file being written.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A sweep result lacks one of the paper's anchor voltages.
    MissingSweepPoint {
        /// The absent voltage in millivolts.
        mv: u32,
    },
    /// The result cache failed to *open* or an admin operation (scrub,
    /// vacuum) failed. Lookups and publishes never produce this:
    /// corrupt or unreadable records are quarantined and re-simulated,
    /// failed publishes degrade the store to memory-only (DESIGN.md §9).
    Store(StoreError),
}

impl ExperimentError {
    /// Adapter for `map_err` on file writes: attaches `path` to the
    /// underlying I/O error.
    pub fn io_at(path: &Path) -> impl FnOnce(io::Error) -> Self + '_ {
        |source| Self::Io {
            path: path.to_path_buf(),
            source,
        }
    }
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Trace(e) => write!(f, "trace generation failed: {e}"),
            Self::Sim(e) => write!(f, "simulation failed: {e}"),
            Self::Io { path, source } => {
                write!(f, "writing {} failed: {source}", path.display())
            }
            Self::MissingSweepPoint { mv } => {
                write!(f, "sweep missing the {mv} mV anchor point")
            }
            Self::Store(e) => write!(f, "result cache failed: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Trace(e) => Some(e),
            Self::Sim(e) => Some(e),
            Self::Io { source, .. } => Some(source),
            Self::MissingSweepPoint { .. } => None,
            Self::Store(e) => Some(e),
        }
    }
}

impl From<TraceError> for ExperimentError {
    fn from(e: TraceError) -> Self {
        Self::Trace(e)
    }
}

impl From<SimError> for ExperimentError {
    fn from(e: SimError) -> Self {
        Self::Sim(e)
    }
}

impl From<StoreError> for ExperimentError {
    fn from(e: StoreError) -> Self {
        Self::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn lifts_upstream_errors() {
        let e: ExperimentError = TraceError::Empty {
            name: "branch_biases",
        }
        .into();
        assert!(matches!(e, ExperimentError::Trace(_)));
        assert!(e.source().is_some());

        let e: ExperimentError = SimError::NoProgress {
            cycles: 1,
            committed: 0,
            total: 1,
        }
        .into();
        assert!(e.to_string().starts_with("simulation failed:"));
    }

    #[test]
    fn io_carries_the_path() {
        let path = Path::new("/tmp/out.csv");
        let e = ExperimentError::io_at(path)(io::Error::other("disk full"));
        assert!(e.to_string().contains("/tmp/out.csv"));
        assert!(e.source().is_some());
    }
}
