//! The Vcc sweep behind Figures 11b and 12: baseline vs IRAW simulation at
//! every voltage, with the energy model applied on top. Every measurement
//! goes through [`ExperimentContext::run_suite`]'s result cache when one
//! is configured, so a warm sweep performs zero simulations.

use lowvcc_core::{speedup, MechanismComparison, SimConfig, SuiteResult};
use lowvcc_energy::{EdpPoint, IrawOverhead};
use lowvcc_sram::{Millivolts, PAPER_SWEEP};

use crate::context::ExperimentContext;
use crate::error::ExperimentError;
use crate::json;
use crate::report::{fnum, TextTable};

/// Measured baseline-vs-IRAW numbers at one supply voltage.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Supply voltage.
    pub vcc: Millivolts,
    /// Clock-frequency gain of IRAW.
    pub frequency_gain: f64,
    /// Measured performance speedup (suite total time).
    pub speedup: f64,
    /// Fraction of instructions delayed by the RF IRAW mechanism.
    pub delayed_fraction: f64,
    /// IRAW execution time relative to the baseline (lower is better).
    pub relative_delay: f64,
    /// IRAW total energy relative to the baseline.
    pub relative_energy: f64,
    /// IRAW EDP relative to the baseline.
    pub relative_edp: f64,
    /// Baseline leakage fraction of total energy at this voltage.
    pub baseline_leakage_fraction: f64,
    /// Average per-trace stall-cycle fractions `(rf, iq, dl0, other)`.
    pub stall_fractions: (f64, f64, f64, f64),
    /// Potential BP corruption rate (paper §4.5).
    pub bp_corruption_rate: f64,
    /// Potential RSB corruptions (paper §4.5: expected 0).
    pub rsb_corruptions: u64,
    /// Instructions committed by the baseline suite run.
    pub baseline_instructions: u64,
    /// Instructions committed by the IRAW suite run.
    pub iraw_instructions: u64,
}

fn suite_energy(
    ctx: &ExperimentContext,
    vcc: Millivolts,
    suite: &SuiteResult,
    overhead: f64,
) -> lowvcc_energy::EnergyBreakdown {
    suite
        .per_trace
        .iter()
        .map(|(_, r)| {
            ctx.energy
                .breakdown(vcc, r.stats.instructions, r.seconds(), overhead)
        })
        .fold(lowvcc_energy::EnergyBreakdown::default(), |a, b| a + b)
}

/// Measures the baseline-vs-IRAW point at one supply voltage (through
/// the context's result cache when configured). The unit of work
/// `lowvcc-serve` answers per query.
///
/// # Errors
///
/// Propagates simulation and cache failures.
pub fn point(ctx: &ExperimentContext, vcc: Millivolts) -> Result<SweepPoint, ExperimentError> {
    Ok(point_from(ctx, &ctx.compare_mechanisms(vcc)?))
}

/// Derives one sweep point's measurements from a completed baseline-vs-
/// IRAW comparison — the single assembly site shared by the per-point
/// [`point`] and the batched [`run_sweep`].
#[must_use]
pub fn point_from(ctx: &ExperimentContext, cmp: &MechanismComparison) -> SweepPoint {
    let vcc = cmp.vcc;
    let iraw_overhead = IrawOverhead::silverthorne().dynamic_energy_factor();
    let base_energy = suite_energy(ctx, vcc, &cmp.baseline, 1.0);
    // The IRAW hardware is present (and clocking) at every Vcc, so its
    // ~0.6% dynamic overhead applies even where the mechanism is off —
    // the paper's "slightly worse at high Vcc" effect.
    let iraw_energy = suite_energy(ctx, vcc, &cmp.iraw, iraw_overhead);
    let base_point = EdpPoint::new(cmp.baseline.total_seconds(), base_energy);
    let iraw_point = EdpPoint::new(cmp.iraw.total_seconds(), iraw_energy);
    let rel = iraw_point.relative_to(&base_point);

    let n = cmp.iraw.per_trace.len() as f64;
    let mut stall = (0.0, 0.0, 0.0, 0.0);
    let mut bp_reads = 0u64;
    let mut bp_corrupt = 0u64;
    let mut rsb_corrupt = 0u64;
    for (_, r) in &cmp.iraw.per_trace {
        let f = r.stats.stall_fractions();
        stall.0 += f.0 / n;
        stall.1 += f.1 / n;
        stall.2 += f.2 / n;
        stall.3 += f.3 / n;
        bp_reads += r.stats.branches.branches;
        bp_corrupt += r.stats.branches.bp_potential_corruptions;
        rsb_corrupt += r.stats.branches.rsb_potential_corruptions;
    }

    SweepPoint {
        vcc,
        frequency_gain: cmp.frequency_gain,
        speedup: cmp.speedup.total_time,
        delayed_fraction: cmp.iraw.delayed_instruction_fraction(),
        relative_delay: rel.delay,
        relative_energy: rel.energy,
        relative_edp: rel.edp,
        baseline_leakage_fraction: base_energy.leakage_fraction(),
        stall_fractions: stall,
        bp_corruption_rate: if bp_reads == 0 {
            0.0
        } else {
            bp_corrupt as f64 / bp_reads as f64
        },
        rsb_corruptions: rsb_corrupt,
        baseline_instructions: cmp.baseline.total_instructions(),
        iraw_instructions: cmp.iraw.total_instructions(),
    }
}

/// Runs the full baseline-vs-IRAW sweep over the paper's voltage grid in
/// one batched pass: all 26 configurations (13 voltages × 2 mechanisms)
/// go through [`ExperimentContext::run_suite_batch`], so every trace is
/// decoded once for the whole grid and each worker's engine workspace is
/// reused across all sweep points. Byte-identical to the legacy
/// [`run_sweep_per_point`] for any worker count — the `batch_vs_perpoint`
/// suite asserts it.
///
/// # Errors
///
/// Propagates simulation and cache failures.
pub fn run_sweep(ctx: &ExperimentContext) -> Result<Vec<SweepPoint>, ExperimentError> {
    let cfgs: Vec<SimConfig> = PAPER_SWEEP
        .iter()
        .flat_map(|vcc| {
            let (base, iraw) = SimConfig::mechanism_pair(ctx.core, &ctx.timing, vcc);
            [base, iraw]
        })
        .collect();
    let mut suites = ctx.run_suite_batch(&cfgs)?.into_iter();
    PAPER_SWEEP
        .iter()
        .map(|vcc| {
            let baseline = suites.next().expect("one suite per config");
            let iraw = suites.next().expect("one suite per config");
            let speedup = speedup(&iraw, &baseline);
            let cmp = MechanismComparison {
                vcc,
                baseline,
                iraw,
                frequency_gain: ctx.timing.frequency_gain(vcc),
                speedup,
            };
            Ok(point_from(ctx, &cmp))
        })
        .collect()
}

/// The legacy per-point sweep: one [`point`] call (two suite runs) per
/// voltage. Kept as the equivalence reference for the batched
/// [`run_sweep`], and for callers that want per-voltage incremental
/// progress over raw throughput.
///
/// # Errors
///
/// Propagates simulation and cache failures.
pub fn run_sweep_per_point(ctx: &ExperimentContext) -> Result<Vec<SweepPoint>, ExperimentError> {
    PAPER_SWEEP.iter().map(|vcc| point(ctx, vcc)).collect()
}

/// Renders one sweep point as a JSON object — shared by the `--json`
/// document and the `lowvcc-serve` response body.
#[must_use]
pub fn point_json(p: &SweepPoint) -> String {
    json::object(&[
        ("vcc_mv", p.vcc.millivolts().to_string()),
        ("frequency_gain", json::number(p.frequency_gain)),
        ("speedup", json::number(p.speedup)),
        ("delayed_fraction", json::number(p.delayed_fraction)),
        ("relative_delay", json::number(p.relative_delay)),
        ("relative_energy", json::number(p.relative_energy)),
        ("relative_edp", json::number(p.relative_edp)),
        (
            "baseline_leakage_fraction",
            json::number(p.baseline_leakage_fraction),
        ),
        ("bp_corruption_rate", json::number(p.bp_corruption_rate)),
        ("rsb_corruptions", p.rsb_corruptions.to_string()),
    ])
}

/// Formats the Figure 11b table (frequency increase & performance gains).
#[must_use]
pub fn fig11b_table(points: &[SweepPoint]) -> TextTable {
    let mut t = TextTable::new(vec![
        "vcc_mv",
        "frequency_increase",
        "performance_gain",
        "delayed_instr_frac",
    ]);
    for p in points {
        t.row(vec![
            p.vcc.millivolts().to_string(),
            fnum(p.frequency_gain, 3),
            fnum(p.speedup, 3),
            fnum(p.delayed_fraction, 4),
        ]);
    }
    t
}

/// Formats the Figure 12 table (relative delay, energy, EDP).
#[must_use]
pub fn fig12_table(points: &[SweepPoint]) -> TextTable {
    let mut t = TextTable::new(vec![
        "vcc_mv",
        "relative_delay",
        "relative_energy",
        "relative_edp",
        "baseline_leakage_frac",
    ]);
    for p in points {
        t.row(vec![
            p.vcc.millivolts().to_string(),
            fnum(p.relative_delay, 3),
            fnum(p.relative_energy, 3),
            fnum(p.relative_edp, 3),
            fnum(p.baseline_leakage_fraction, 3),
        ]);
    }
    t
}

/// Convenience: the sweep point at `mv`, if present.
#[must_use]
pub fn at(points: &[SweepPoint], mv: u32) -> Option<&SweepPoint> {
    points.iter().find(|p| p.vcc.millivolts() == mv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reproduces_paper_shape_on_quick_suite() {
        let ctx = ExperimentContext::quick().unwrap();
        let points = run_sweep(&ctx).unwrap();
        assert_eq!(points.len(), 13);

        // High Vcc: no gain, EDP slightly above 1 (hardware overhead).
        let p700 = at(&points, 700).unwrap();
        assert!((p700.speedup - 1.0).abs() < 0.01);
        assert!(p700.relative_edp >= 1.0);

        // 500 mV: the headline band (paper: ×1.48 perf, 0.61 EDP).
        let p500 = at(&points, 500).unwrap();
        assert!(p500.frequency_gain > 1.5);
        assert!(p500.speedup > 1.2 && p500.speedup < p500.frequency_gain);
        assert!(p500.relative_edp < 0.75, "EDP {:.3}", p500.relative_edp);

        // 400 mV: the extreme point (paper: ×1.90 perf, 0.33 EDP).
        let p400 = at(&points, 400).unwrap();
        assert!(p400.speedup > 1.6);
        assert!(p400.relative_edp < p500.relative_edp);

        // Monotone speedup as Vcc falls.
        for pair in points.windows(2) {
            assert!(
                pair[1].speedup >= pair[0].speedup - 0.02,
                "speedup must grow as Vcc falls"
            );
        }

        // Prediction-only blocks: corruption rates negligible, as §4.5.
        for p in &points {
            assert!(p.bp_corruption_rate < 0.01);
        }

        let t = fig11b_table(&points);
        assert_eq!(t.len(), 13);
        let t = fig12_table(&points);
        assert_eq!(t.len(), 13);
    }
}
