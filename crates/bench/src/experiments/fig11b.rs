//! F11b — Figure 11b: frequency increase and performance gains vs Vcc.
//!
//! The measurement lives in [`sweep`](super::sweep): one baseline-vs-IRAW
//! sweep produces both Figure 11b and Figure 12, so this module is a thin
//! alias exposing the Figure 11b surface under the experiment ID the
//! crate-level table documents.

pub use super::sweep::{at, run_sweep, SweepPoint};

use crate::report::TextTable;

/// Formats the Figure 11b table from an already-run sweep.
///
/// Alias for [`sweep::fig11b_table`](super::sweep::fig11b_table).
#[must_use]
pub fn table(points: &[SweepPoint]) -> TextTable {
    super::sweep::fig11b_table(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentContext;

    #[test]
    fn alias_produces_the_sweep_table() {
        let ctx = ExperimentContext::sized(1, 2_000).unwrap();
        let points = run_sweep(&ctx).unwrap();
        let t = table(&points);
        assert_eq!(t.len(), points.len());
    }
}
