//! F1 — the paper's Figure 1: logic, read and write delay versus Vcc.

use lowvcc_sram::Figure1Series;

use crate::context::ExperimentContext;
use crate::report::{fnum, TextTable};

/// Builds the Figure 1 table over the paper sweep.
#[must_use]
pub fn table(ctx: &ExperimentContext) -> TextTable {
    let series = Figure1Series::generate(&ctx.timing);
    let mut t = TextTable::new(vec![
        "vcc_mv",
        "12fo4_phase",
        "bitcell_write",
        "bitcell_read",
        "write_plus_wl",
        "read_plus_wl",
    ]);
    for r in series.rows() {
        t.row(vec![
            r.vcc.millivolts().to_string(),
            fnum(r.phase_12fo4, 3),
            fnum(r.bitcell_write, 3),
            fnum(r.bitcell_read, 3),
            fnum(r.write_plus_wl, 3),
            fnum(r.read_plus_wl, 3),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_rows_on_the_paper_grid() {
        let ctx = ExperimentContext::quick().unwrap();
        let t = table(&ctx);
        assert_eq!(t.len(), 13);
        let s = t.render();
        assert!(s.contains("700"));
        assert!(s.contains("400"));
    }
}
