//! S1/S3/S4 — the paper's scalar results: delayed-instruction fraction,
//! prediction-only corruption rates, and hardware overheads.

use lowvcc_energy::{ExtraBypassOverhead, FaultyBitsOverhead, IrawOverhead};

use crate::context::ExperimentContext;
use crate::error::ExperimentError;
use crate::experiments::sweep::{at, SweepPoint};
use crate::report::TextTable;

/// Builds the scalar-results table from an already-run sweep.
///
/// # Errors
///
/// Returns an error if the sweep lacks the anchor voltages.
pub fn table(
    _ctx: &ExperimentContext,
    points: &[SweepPoint],
) -> Result<TextTable, ExperimentError> {
    let p500 = at(points, 500).ok_or(ExperimentError::MissingSweepPoint { mv: 500 })?;
    let p400 = at(points, 400).ok_or(ExperimentError::MissingSweepPoint { mv: 400 })?;
    let p575 = at(points, 575).ok_or(ExperimentError::MissingSweepPoint { mv: 575 })?;

    let iraw = IrawOverhead::silverthorne();
    let fb = FaultyBitsOverhead::silverthorne();
    let eb = ExtraBypassOverhead::silverthorne();

    let mut t = TextTable::new(vec!["quantity", "measured", "paper"]);
    t.row(vec![
        "frequency increase @500 mV".into(),
        format!("+{:.0}%", (p500.frequency_gain - 1.0) * 100.0),
        "+57%".into(),
    ]);
    t.row(vec![
        "frequency increase @400 mV".into(),
        format!("+{:.0}%", (p400.frequency_gain - 1.0) * 100.0),
        "+99%".into(),
    ]);
    t.row(vec![
        "performance gain @500 mV".into(),
        format!("+{:.0}%", (p500.speedup - 1.0) * 100.0),
        "+48%".into(),
    ]);
    t.row(vec![
        "performance gain @400 mV".into(),
        format!("+{:.0}%", (p400.speedup - 1.0) * 100.0),
        "+90%".into(),
    ]);
    t.row(vec![
        "relative EDP @500 mV".into(),
        format!("{:.2}", p500.relative_edp),
        "0.61".into(),
    ]);
    t.row(vec![
        "relative EDP @400 mV".into(),
        format!("{:.2}", p400.relative_edp),
        "0.33".into(),
    ]);
    t.row(vec![
        "instructions delayed @575 mV".into(),
        format!("{:.1}%", p575.delayed_fraction * 100.0),
        "13.2%".into(),
    ]);
    t.row(vec![
        "BP potential corruption rate".into(),
        format!("{:.5}%", p575.bp_corruption_rate * 100.0),
        "0.0017%".into(),
    ]);
    t.row(vec![
        "RSB potential corruptions".into(),
        p575.rsb_corruptions.to_string(),
        "0 (none found)".into(),
    ]);
    t.row(vec![
        "IRAW extra area".into(),
        format!("{:.3}%", iraw.area_fraction() * 100.0),
        "~0.03% (<0.1%)".into(),
    ]);
    t.row(vec![
        "IRAW extra energy".into(),
        format!("+{:.2}%", (iraw.dynamic_energy_factor() - 1.0) * 100.0),
        "<1%".into(),
    ]);
    t.row(vec![
        "Faulty Bits fault-map area".into(),
        format!("{:.2}%", fb.area_fraction() * 100.0),
        "\"may not be negligible\"".into(),
    ]);
    t.row(vec![
        "Extra Bypass latches vs datapath".into(),
        format!("{:.0}%", eb.datapath_area_fraction() * 100.0),
        "\"prohibitive\"".into(),
    ]);
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::sweep::run_sweep;

    #[test]
    fn scalar_table_builds_from_sweep() {
        let ctx = ExperimentContext::quick().unwrap();
        let points = run_sweep(&ctx).unwrap();
        let t = table(&ctx, &points).unwrap();
        assert!(t.len() >= 12);
        let s = t.render();
        assert!(s.contains("13.2%"));
        assert!(s.contains("0.61"));
    }
}
