//! S2 — the paper's §5.2 stall attribution at 575 mV.
//!
//! The paper: "performance drop at 575 mV is 8.86% and distributes as
//! follows: 8.52% due to issue stalls required to avoid IRAW in the
//! register file, 0.30% due to DL0 IRAW avoidance, and the remaining
//! 0.04% due to IRAW avoidance in the remaining blocks."
//!
//! Measured the same way here: the IRAW run is compared against a
//! *stall-free* run at the identical (IRAW) clock — the difference is the
//! total degradation due to IRAW stalls, which the per-block stall-cycle
//! counters then apportion.

use lowvcc_core::{Mechanism, SimConfig};
use lowvcc_sram::Millivolts;

use crate::context::ExperimentContext;
use crate::error::ExperimentError;
use crate::report::{fnum, TextTable};

/// The measured attribution at one voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallReport {
    /// Voltage of the measurement.
    pub vcc: Millivolts,
    /// Total performance degradation from IRAW stalls (time ratio − 1,
    /// against a stall-free run at the same clock).
    pub total_degradation: f64,
    /// Degradation share attributed to RF issue stalls.
    pub rf_share: f64,
    /// …to the IQ occupancy gate.
    pub iq_share: f64,
    /// …to the DL0 (Store Table + post-fill guard).
    pub dl0_share: f64,
    /// …to the remaining blocks' fill guards.
    pub other_share: f64,
    /// Fraction of instructions delayed (paper: 13.2%).
    pub delayed_fraction: f64,
}

/// Measures the attribution at 575 mV (the paper's reference point).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn measure(ctx: &ExperimentContext) -> Result<StallReport, ExperimentError> {
    // Compile-time-validated grid anchor: the paper's 575 mV reference.
    const STALL_REFERENCE: Millivolts = Millivolts::literal(575);
    measure_at(ctx, STALL_REFERENCE)
}

/// Measures the attribution at an arbitrary voltage.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn measure_at(
    ctx: &ExperimentContext,
    vcc: Millivolts,
) -> Result<StallReport, ExperimentError> {
    let iraw_cfg = SimConfig::at_vcc(ctx.core, &ctx.timing, vcc, Mechanism::Iraw);
    // Stall-free reference: identical clock, all IRAW mechanisms off.
    // Keys differently from the IRAW run — `stabilization_cycles` is
    // part of the canonical SimKey encoding — so the cache serves both.
    let mut free_cfg = iraw_cfg.clone();
    free_cfg.stabilization_cycles = 0;

    let iraw = ctx.run_suite(&iraw_cfg)?;
    let free = ctx.run_suite(&free_cfg)?;
    let total_degradation = iraw.total_seconds() / free.total_seconds() - 1.0;

    let mut rf = 0u64;
    let mut iq = 0u64;
    let mut dl0 = 0u64;
    let mut other = 0u64;
    for (_, r) in &iraw.per_trace {
        rf += r.stats.stalls.rf_iraw;
        iq += r.stats.stalls.iq_iraw;
        dl0 += r.stats.stalls.dl0_total();
        other += r.stats.stalls.other_fill;
    }
    let total_cycles = (rf + iq + dl0 + other).max(1) as f64;
    let share = |x: u64| total_degradation * x as f64 / total_cycles;

    Ok(StallReport {
        vcc,
        total_degradation,
        rf_share: share(rf),
        iq_share: share(iq),
        dl0_share: share(dl0),
        other_share: share(other),
        delayed_fraction: iraw.delayed_instruction_fraction(),
    })
}

/// Formats the report as a table (and returns the raw report too).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn table(ctx: &ExperimentContext) -> Result<(TextTable, StallReport), ExperimentError> {
    let r = measure(ctx)?;
    let mut t = TextTable::new(vec!["quantity", "measured", "paper"]);
    t.row(vec![
        "total degradation from IRAW stalls".into(),
        format!("{:.2}%", r.total_degradation * 100.0),
        "8.86%".into(),
    ]);
    t.row(vec![
        "  register file issue stalls".into(),
        format!("{:.2}%", r.rf_share * 100.0),
        "8.52%".into(),
    ]);
    t.row(vec![
        "  IQ occupancy gate".into(),
        format!("{:.2}%", r.iq_share * 100.0),
        "(in 0.04%)".into(),
    ]);
    t.row(vec![
        "  DL0 (STable + fill guard)".into(),
        format!("{:.2}%", r.dl0_share * 100.0),
        "0.30%".into(),
    ]);
    t.row(vec![
        "  remaining blocks".into(),
        format!("{:.2}%", r.other_share * 100.0),
        "0.04%".into(),
    ]);
    t.row(vec![
        "instructions delayed by IRAW".into(),
        fnum(r.delayed_fraction * 100.0, 2) + "%",
        "13.2%".into(),
    ]);
    Ok((t, r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_orders_like_the_paper() {
        let ctx = ExperimentContext::quick().unwrap();
        let (_, r) = table(&ctx).unwrap();
        // Degradation present and single-digit-percent scale.
        assert!(r.total_degradation > 0.0 && r.total_degradation < 0.35);
        // RF dominates, as the paper reports.
        assert!(r.rf_share >= r.dl0_share);
        assert!(r.rf_share >= r.other_share);
        // Shares sum to the total.
        let sum = r.rf_share + r.iq_share + r.dl0_share + r.other_share;
        assert!((sum - r.total_degradation).abs() < 1e-9);
        // A meaningful fraction of instructions gets delayed.
        assert!(r.delayed_fraction > 0.03 && r.delayed_fraction < 0.3);
    }
}
