//! T1 — the paper's Table 1 and its measured companion.

use lowvcc_baselines::{qualitative_table, rows_from_results, technique_configs, QuantRow};
use lowvcc_core::SimConfig;
use lowvcc_sram::Millivolts;

use crate::context::ExperimentContext;
use crate::error::ExperimentError;
use crate::report::{fnum, TextTable};

fn yes_no(b: bool) -> String {
    if b { "YES" } else { "NO" }.to_string()
}

/// The published qualitative Table 1 (plus the IRAW row).
#[must_use]
pub fn qualitative() -> TextTable {
    let mut t = TextTable::new(vec![
        "technique",
        "works_for_all_blocks",
        "adapts_to_multiple_vcc",
        "hw_overhead",
        "large_ipc_impact",
        "hard_to_test",
    ]);
    for r in qualitative_table() {
        t.row(vec![
            r.technique.to_string(),
            yes_no(r.works_for_all_blocks),
            yes_no(r.adapts_to_multiple_vcc),
            r.hw_overhead.to_string(),
            yes_no(r.large_ipc_impact),
            yes_no(r.hard_to_test),
        ]);
    }
    t
}

/// Measured rows at `vcc` over the context suite, as **one batch**: all
/// technique configurations replay each trace behind a single decode via
/// [`ExperimentContext::run_suite_batch`]. Through the result cache each
/// technique's `SimConfig` still keys its own suite run, so a warm
/// Table 1 performs zero simulations (and shares the baseline run with
/// the sweep at the same voltage).
///
/// # Errors
///
/// Propagates simulation and cache failures.
pub fn quantitative_rows_at(
    ctx: &ExperimentContext,
    vcc: Millivolts,
) -> Result<Vec<QuantRow>, ExperimentError> {
    let configs = technique_configs(ctx.core, &ctx.timing, vcc);
    let cfgs: Vec<SimConfig> = configs.iter().map(|tc| tc.cfg.clone()).collect();
    let suites = ctx.run_suite_batch(&cfgs)?;
    Ok(rows_from_results(&configs, &suites))
}

/// Formats measured rows as the Table 1 companion — the single rendering
/// site shared by [`quantitative`] and the batched-vs-legacy equivalence
/// suite.
#[must_use]
pub fn rows_table(rows: &[QuantRow]) -> TextTable {
    let mut t = TextTable::new(vec![
        "technique",
        "freq_gain",
        "speedup",
        "relative_ipc",
        "area_frac",
        "energy_factor",
        "hard_to_test",
    ]);
    for r in rows {
        t.row(vec![
            r.technique.clone(),
            fnum(r.frequency_gain, 3),
            fnum(r.speedup, 3),
            fnum(r.relative_ipc, 3),
            format!("{:.5}", r.area_fraction),
            fnum(r.energy_factor, 4),
            yes_no(r.hard_to_test),
        ]);
    }
    t
}

/// Measured comparison at 500 mV over the context suite.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn quantitative(ctx: &ExperimentContext) -> Result<TextTable, ExperimentError> {
    const VCC: Millivolts = Millivolts::literal(500);
    let vcc = VCC;
    Ok(rows_table(&quantitative_rows_at(ctx, vcc)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualitative_has_three_techniques() {
        let t = qualitative();
        assert_eq!(t.len(), 3);
        let s = t.render();
        assert!(s.contains("Faulty Bits"));
        assert!(s.contains("Extra Bypass"));
        assert!(s.contains("IRAW"));
    }

    #[test]
    fn quantitative_runs_on_quick_suite() {
        let ctx = ExperimentContext::quick().unwrap();
        let t = quantitative(&ctx).unwrap();
        assert_eq!(t.len(), 6);
    }
}
