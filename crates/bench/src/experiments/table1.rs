//! T1 — the paper's Table 1 and its measured companion.

use lowvcc_baselines::{qualitative_table, rows_from_results, technique_configs, QuantRow};
use lowvcc_sram::Millivolts;

use crate::context::ExperimentContext;
use crate::error::ExperimentError;
use crate::report::{fnum, TextTable};

fn yes_no(b: bool) -> String {
    if b { "YES" } else { "NO" }.to_string()
}

/// The published qualitative Table 1 (plus the IRAW row).
#[must_use]
pub fn qualitative() -> TextTable {
    let mut t = TextTable::new(vec![
        "technique",
        "works_for_all_blocks",
        "adapts_to_multiple_vcc",
        "hw_overhead",
        "large_ipc_impact",
        "hard_to_test",
    ]);
    for r in qualitative_table() {
        t.row(vec![
            r.technique.to_string(),
            yes_no(r.works_for_all_blocks),
            yes_no(r.adapts_to_multiple_vcc),
            r.hw_overhead.to_string(),
            yes_no(r.large_ipc_impact),
            yes_no(r.hard_to_test),
        ]);
    }
    t
}

/// Measured rows at `vcc` over the context suite, through the result
/// cache when one is configured — each technique's `SimConfig` keys its
/// suite run, so a warm Table 1 performs zero simulations (and shares
/// the baseline run with the sweep at the same voltage).
///
/// # Errors
///
/// Propagates simulation and cache failures.
pub fn quantitative_rows_at(
    ctx: &ExperimentContext,
    vcc: Millivolts,
) -> Result<Vec<QuantRow>, ExperimentError> {
    let configs = technique_configs(ctx.core, &ctx.timing, vcc);
    let mut suites = Vec::with_capacity(configs.len());
    for tc in &configs {
        suites.push(ctx.run_suite(&tc.cfg)?);
    }
    Ok(rows_from_results(&configs, &suites))
}

/// Measured comparison at 500 mV over the context suite.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn quantitative(ctx: &ExperimentContext) -> Result<TextTable, ExperimentError> {
    let vcc = Millivolts::new(500).expect("500 mV on the grid");
    let rows = quantitative_rows_at(ctx, vcc)?;
    let mut t = TextTable::new(vec![
        "technique",
        "freq_gain",
        "speedup",
        "relative_ipc",
        "area_frac",
        "energy_factor",
        "hard_to_test",
    ]);
    for r in rows {
        t.row(vec![
            r.technique,
            fnum(r.frequency_gain, 3),
            fnum(r.speedup, 3),
            fnum(r.relative_ipc, 3),
            format!("{:.5}", r.area_fraction),
            fnum(r.energy_factor, 4),
            yes_no(r.hard_to_test),
        ]);
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualitative_has_three_techniques() {
        let t = qualitative();
        assert_eq!(t.len(), 3);
        let s = t.render();
        assert!(s.contains("Faulty Bits"));
        assert!(s.contains("Extra Bypass"));
        assert!(s.contains("IRAW"));
    }

    #[test]
    fn quantitative_runs_on_quick_suite() {
        let ctx = ExperimentContext::quick().unwrap();
        let t = quantitative(&ctx).unwrap();
        assert_eq!(t.len(), 6);
    }
}
