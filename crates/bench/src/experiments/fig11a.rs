//! F11a — the paper's Figure 11a: normalized cycle time of the 24-FO4
//! ideal, the write-limited baseline, and the IRAW clock.

use lowvcc_sram::{TimingLimiter, PAPER_SWEEP};

use crate::context::ExperimentContext;
use crate::report::{fnum, TextTable};

/// Builds the Figure 11a table over the paper sweep.
#[must_use]
pub fn table(ctx: &ExperimentContext) -> TextTable {
    let mut t = TextTable::new(vec![
        "vcc_mv",
        "24fo4_cycle",
        "baseline_write_limited",
        "iraw_cycle",
        "stabilization_cycles",
    ]);
    for v in PAPER_SWEEP.iter() {
        t.row(vec![
            v.millivolts().to_string(),
            fnum(ctx.timing.normalized_cycle(v, TimingLimiter::Logic), 3),
            fnum(
                ctx.timing.normalized_cycle(v, TimingLimiter::WriteLimited),
                3,
            ),
            fnum(ctx.timing.normalized_cycle(v, TimingLimiter::Iraw), 3),
            ctx.timing.stabilization_cycles(v).to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_sweep_with_sane_ordering() {
        let ctx = ExperimentContext::quick().unwrap();
        let t = table(&ctx);
        assert_eq!(t.len(), 13);
    }
}
