//! The experiment implementations, one module per paper artefact.

pub mod fig1;
pub mod fig11a;
pub mod fig11b;
pub mod fig12;
pub mod scalars;
pub mod stalls;
pub mod sweep;
pub mod table1;

use std::path::Path;
use std::time::{Duration, Instant};

use crate::context::ExperimentContext;
use crate::error::ExperimentError;
use crate::report::TextTable;

/// Re-exported for Figure 11b / Figure 12 consumers.
pub use sweep::{point, point_from, point_json, run_sweep, run_sweep_per_point, SweepPoint};

fn save(table: &TextTable, path: &Path) -> Result<(), ExperimentError> {
    table.write_csv(path).map_err(ExperimentError::io_at(path))
}

/// Everything `run_all` produced: the rendered report plus the raw sweep
/// measurements and their throughput, for machine-readable emission.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// The combined human-readable report.
    pub report: String,
    /// The baseline-vs-IRAW sweep behind Figures 11b/12.
    pub sweep: Vec<SweepPoint>,
    /// Wall-clock time of the sweep alone.
    pub sweep_elapsed: Duration,
    /// Dynamic uops the *engine actually simulated* during the sweep
    /// (all voltages × both mechanisms), the numerator of the
    /// throughput figure. Cache hits contribute nothing: a fully warm
    /// cached sweep reports 0, not a fictitious engine throughput.
    pub sweep_uops: u64,
}

impl RunSummary {
    /// Simulated uops per wall-clock second over the sweep — the repo's
    /// perf-trajectory number (BENCH_*.json). Zero-duration sweeps (an
    /// empty suite, a fully-cached warm run on a coarse clock) yield
    /// `0.0`, never `inf`/`NaN` — the JSON writer would otherwise have
    /// nothing valid to emit.
    #[must_use]
    pub fn uops_per_second(&self) -> f64 {
        let secs = self.sweep_elapsed.as_secs_f64();
        if secs > 0.0 && secs.is_finite() {
            self.sweep_uops as f64 / secs
        } else {
            0.0
        }
    }

    /// Machine-readable sweep results: suite metadata, throughput, and
    /// one record per voltage point. Always a single line of valid JSON:
    /// every float goes through [`json::number`], which renders
    /// non-finite values as `null` instead of emitting them verbatim.
    #[must_use]
    pub fn to_json(&self, suite_label: &str, suite_uops: usize, jobs: usize) -> String {
        use crate::json;
        let points: Vec<String> = self.sweep.iter().map(sweep::point_json).collect();
        let mut out = json::object(&[
            ("suite", json::string(suite_label)),
            ("suite_uops", suite_uops.to_string()),
            ("jobs", jobs.to_string()),
            (
                "sweep_elapsed_seconds",
                json::number(self.sweep_elapsed.as_secs_f64()),
            ),
            ("sweep_simulated_uops", self.sweep_uops.to_string()),
            ("uops_per_second", json::number(self.uops_per_second())),
            ("points", json::array(&points)),
        ]);
        out.push('\n');
        out
    }
}

/// Runs every experiment, writing CSVs under `out_dir` and returning the
/// report plus the raw sweep data.
///
/// # Errors
///
/// Propagates simulation failures and CSV I/O failures (with the
/// offending path attached).
pub fn run_all(ctx: &ExperimentContext, out_dir: &Path) -> Result<RunSummary, ExperimentError> {
    let mut report = String::new();

    report.push_str(&format!(
        "# lowvcc experiment report — suite: {} ({} uops total)\n\n",
        ctx.suite_label,
        ctx.total_uops()
    ));

    report.push_str("## Figure 1 — delay vs Vcc (normalized to 12 FO4 @ 700 mV)\n");
    let t = fig1::table(ctx);
    save(&t, &out_dir.join("fig1.csv"))?;
    report.push_str(&t.render());
    report.push('\n');

    report.push_str("## Figure 11a — cycle time vs Vcc (normalized to 24 FO4 @ 700 mV)\n");
    let t = fig11a::table(ctx);
    save(&t, &out_dir.join("fig11a.csv"))?;
    report.push_str(&t.render());
    report.push('\n');

    let cached_uops_before = ctx.cache.as_ref().map(|s| s.stats().simulated_uops);
    // lint: allow(no-wallclock) -- report metadata only; never feeds a simulated result
    let sweep_started = Instant::now();
    let points = sweep::run_sweep(ctx)?;
    let sweep_elapsed = sweep_started.elapsed();
    // Throughput numerator: engine work only. With a cache, the store
    // counted exactly what was simulated; without one, every committed
    // instruction came from the engine.
    let sweep_uops: u64 = match (&ctx.cache, cached_uops_before) {
        (Some(store), Some(before)) => store.stats().simulated_uops - before,
        _ => points
            .iter()
            .map(|p| p.baseline_instructions + p.iraw_instructions)
            .sum(),
    };

    report.push_str("## Figure 11b — frequency increase and performance gains\n");
    let t = sweep::fig11b_table(&points);
    save(&t, &out_dir.join("fig11b.csv"))?;
    report.push_str(&t.render());
    report.push('\n');

    report.push_str("## Figure 12 — IRAW-relative energy, delay and EDP\n");
    let t = sweep::fig12_table(&points);
    save(&t, &out_dir.join("fig12.csv"))?;
    report.push_str(&t.render());
    report.push('\n');

    report.push_str("## Table 1 — technique comparison (qualitative)\n");
    let t = table1::qualitative();
    save(&t, &out_dir.join("table1_qualitative.csv"))?;
    report.push_str(&t.render());
    report.push('\n');

    report.push_str("## Table 1 companion — measured at 500 mV\n");
    let t = table1::quantitative(ctx)?;
    save(&t, &out_dir.join("table1_quantitative.csv"))?;
    report.push_str(&t.render());
    report.push('\n');

    report.push_str("## §5.2 — stall attribution at 575 mV\n");
    let (t, _) = stalls::table(ctx)?;
    save(&t, &out_dir.join("stalls_575mv.csv"))?;
    report.push_str(&t.render());
    report.push('\n');

    report.push_str("## Scalar results (paper §5.2, §4.5, §5.3)\n");
    let t = scalars::table(ctx, &points)?;
    save(&t, &out_dir.join("scalars.csv"))?;
    report.push_str(&t.render());
    report.push('\n');

    Ok(RunSummary {
        report,
        sweep: points,
        sweep_elapsed,
        sweep_uops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn zero_duration_summary() -> RunSummary {
        RunSummary {
            report: String::new(),
            sweep: Vec::new(),
            sweep_elapsed: Duration::ZERO,
            sweep_uops: 1_000_000,
        }
    }

    #[test]
    fn zero_duration_throughput_is_zero_not_nan() {
        let s = zero_duration_summary();
        assert_eq!(s.uops_per_second(), 0.0);
        assert!(s.uops_per_second().is_finite());
    }

    #[test]
    fn zero_duration_json_is_still_valid() {
        let s = zero_duration_summary();
        let doc = s.to_json("smoke (0×0)", 0, 1);
        let v = json::parse(&doc).expect("valid JSON even with degenerate timing");
        assert_eq!(v.get("uops_per_second").unwrap().as_f64(), Some(0.0));
        assert_eq!(v.get("points").unwrap().as_array().unwrap().len(), 0);
    }
}
