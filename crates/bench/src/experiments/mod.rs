//! The experiment implementations, one module per paper artefact.

pub mod fig1;
pub mod fig11a;
pub mod fig11b;
pub mod fig12;
pub mod scalars;
pub mod stalls;
pub mod sweep;
pub mod table1;

use std::path::Path;

use crate::context::ExperimentContext;
use crate::error::ExperimentError;
use crate::report::TextTable;

/// Re-exported for Figure 11b / Figure 12 consumers.
pub use sweep::{run_sweep, SweepPoint};

fn save(table: &TextTable, path: &Path) -> Result<(), ExperimentError> {
    table.write_csv(path).map_err(ExperimentError::io_at(path))
}

/// Runs every experiment, writing CSVs under `out_dir` and returning the
/// combined text report.
///
/// # Errors
///
/// Propagates simulation failures and CSV I/O failures (with the
/// offending path attached).
pub fn run_all(ctx: &ExperimentContext, out_dir: &Path) -> Result<String, ExperimentError> {
    let mut report = String::new();

    report.push_str(&format!(
        "# lowvcc experiment report — suite: {} ({} uops total)\n\n",
        ctx.suite_label,
        ctx.total_uops()
    ));

    report.push_str("## Figure 1 — delay vs Vcc (normalized to 12 FO4 @ 700 mV)\n");
    let t = fig1::table(ctx);
    save(&t, &out_dir.join("fig1.csv"))?;
    report.push_str(&t.render());
    report.push('\n');

    report.push_str("## Figure 11a — cycle time vs Vcc (normalized to 24 FO4 @ 700 mV)\n");
    let t = fig11a::table(ctx);
    save(&t, &out_dir.join("fig11a.csv"))?;
    report.push_str(&t.render());
    report.push('\n');

    let points = sweep::run_sweep(ctx)?;

    report.push_str("## Figure 11b — frequency increase and performance gains\n");
    let t = sweep::fig11b_table(&points);
    save(&t, &out_dir.join("fig11b.csv"))?;
    report.push_str(&t.render());
    report.push('\n');

    report.push_str("## Figure 12 — IRAW-relative energy, delay and EDP\n");
    let t = sweep::fig12_table(&points);
    save(&t, &out_dir.join("fig12.csv"))?;
    report.push_str(&t.render());
    report.push('\n');

    report.push_str("## Table 1 — technique comparison (qualitative)\n");
    let t = table1::qualitative();
    save(&t, &out_dir.join("table1_qualitative.csv"))?;
    report.push_str(&t.render());
    report.push('\n');

    report.push_str("## Table 1 companion — measured at 500 mV\n");
    let t = table1::quantitative(ctx)?;
    save(&t, &out_dir.join("table1_quantitative.csv"))?;
    report.push_str(&t.render());
    report.push('\n');

    report.push_str("## §5.2 — stall attribution at 575 mV\n");
    let (t, _) = stalls::table(ctx)?;
    save(&t, &out_dir.join("stalls_575mv.csv"))?;
    report.push_str(&t.render());
    report.push('\n');

    report.push_str("## Scalar results (paper §5.2, §4.5, §5.3)\n");
    let t = scalars::table(ctx, &points)?;
    save(&t, &out_dir.join("scalars.csv"))?;
    report.push_str(&t.render());
    report.push('\n');

    Ok(report)
}
