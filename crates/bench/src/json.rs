//! Minimal JSON emission *and* strict parsing — the repo is offline (no
//! serde), and the schemas involved (sweep documents, cache-daemon
//! requests/responses) are small and flat enough that a hand-rolled,
//! dependency-free implementation is the simpler choice.
//!
//! The emitter produces canonical one-line documents with proper string
//! escaping and `null` for non-finite floats. The parser is *strict*: a
//! single complete JSON value, full escape handling (including surrogate
//! pairs), a recursion-depth limit, and nothing but whitespace allowed
//! after the value. Every `--json` artefact and every `lowvcc-serve`
//! request round-trips through it in the integration tests.

use std::fmt;
use std::fmt::Write as _;

/// Escapes `s` as a JSON string literal (with quotes).
#[must_use]
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON value (`null` when not finite — JSON has no
/// `inf`/`NaN` literals, and emitting them verbatim would corrupt the
/// document).
#[must_use]
pub fn number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Renders an object body from `(key, rendered-value)` pairs.
#[must_use]
pub fn object(fields: &[(&str, String)]) -> String {
    let body: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("{}: {v}", string(k)))
        .collect();
    format!("{{{}}}", body.join(", "))
}

/// Renders an array from rendered elements.
#[must_use]
pub fn array(items: &[String]) -> String {
    format!("[{}]", items.join(", "))
}

/// Renders a bool.
#[must_use]
pub fn boolean(b: bool) -> String {
    if b { "true" } else { "false" }.to_string()
}

/// Renders a parsed [`Value`] back to the same canonical one-line form
/// the emitters above produce (round-trips with [`parse`]) — how the
/// perf-trajectory appender rewrites a document's existing entries.
#[must_use]
pub fn render(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => boolean(*b),
        Value::Num(x) => number(*x),
        Value::Str(s) => string(s),
        Value::Arr(items) => array(&items.iter().map(render).collect::<Vec<_>>()),
        Value::Obj(fields) => {
            let body: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("{}: {}", string(k), render(v)))
                .collect();
            format!("{{{}}}", body.join(", "))
        }
    }
}

// --- strict parser --------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order (duplicate keys rejected).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Self::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // 2^53 bounds the exactly-representable integers.
            Self::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 9_007_199_254_740_992.0 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse failure: byte offset plus a static reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub reason: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, reason: &'static str) -> Result<T, JsonError> {
        Err(JsonError {
            offset: self.pos,
            reason,
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, reason: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(reason)
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err("invalid literal")
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return self.err("nesting too deep");
        }
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => self.err("unexpected character"),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Value::Arr(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return self.err("expected ',' or ']'");
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return self.err("expected object key");
            }
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return self.err("duplicate object key");
            }
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            let v = self.value(depth + 1)?;
            fields.push((key, v));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Value::Obj(fields)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return self.err("expected ',' or '}'");
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => b - b'0',
                Some(b @ b'a'..=b'f') => b - b'a' + 10,
                Some(b @ b'A'..=b'F') => b - b'A' + 10,
                _ => return self.err("invalid \\u escape"),
            };
            v = v << 4 | u16::from(d);
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return self.err("unterminated string"),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require the low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return self.err("unpaired surrogate");
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return self.err("invalid low surrogate");
                            }
                            let code = 0x10000
                                + (u32::from(hi) - 0xD800) * 0x400
                                + (u32::from(lo) - 0xDC00);
                            char::from_u32(code).ok_or(JsonError {
                                offset: self.pos,
                                reason: "invalid surrogate pair",
                            })?
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return self.err("unpaired low surrogate");
                        } else {
                            char::from_u32(u32::from(hi)).ok_or(JsonError {
                                offset: self.pos,
                                reason: "invalid \\u escape",
                            })?
                        };
                        out.push(c);
                    }
                    _ => return self.err("invalid escape"),
                },
                Some(b) if b < 0x20 => return self.err("control character in string"),
                Some(b) => {
                    // Re-decode UTF-8 multibyte sequences from the raw input.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            0xF0..=0xF7 => 4,
                            _ => return self.err("invalid UTF-8"),
                        };
                        if start + len > self.bytes.len() {
                            return self.err("invalid UTF-8");
                        }
                        let s =
                            std::str::from_utf8(&self.bytes[start..start + len]).map_err(|_| {
                                JsonError {
                                    offset: start,
                                    reason: "invalid UTF-8",
                                }
                            })?;
                        out.push_str(s);
                        self.pos = start + len;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one digit, or a non-zero digit followed by more.
        match self.bump() {
            Some(b'0') => {}
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => {
                self.pos = start;
                return self.err("invalid number");
            }
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return self.err("digits required after decimal point");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return self.err("digits required in exponent");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        text.parse::<f64>().map(Value::Num).map_err(|_| JsonError {
            offset: start,
            reason: "number out of range",
        })
    }
}

/// Strictly parses exactly one JSON value from `input`.
///
/// # Errors
///
/// Returns a [`JsonError`] (offset + reason) on any deviation from the
/// JSON grammar, on duplicate object keys, on nesting deeper than 128,
/// and on trailing non-whitespace after the value.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters after value");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_and_reparses_objects() {
        let doc = object(&[
            ("name", string("trace \"a\"\n")),
            ("x", number(1.5)),
            ("bad", number(f64::INFINITY)),
            ("nan", number(f64::NAN)),
            ("flag", boolean(true)),
            ("items", array(&[number(1.0), number(2.0)])),
        ]);
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("trace \"a\"\n"));
        assert_eq!(v.get("x").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("bad"), Some(&Value::Null));
        assert_eq!(v.get("nan"), Some(&Value::Null));
        assert_eq!(v.get("flag").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("items").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn render_round_trips_documents() {
        let doc = object(&[
            ("name", string("a \"quoted\" name")),
            ("x", number(1.5)),
            ("missing", "null".to_string()),
            ("flag", boolean(false)),
            ("items", array(&[number(1.0), string("two")])),
            ("nested", object(&[("k", number(-3.25))])),
        ]);
        let v = parse(&doc).unwrap();
        let rendered = render(&v);
        assert_eq!(parse(&rendered).unwrap(), v, "render must round-trip");
        // Canonical form is stable: rendering the emitter's own output
        // reproduces it byte for byte.
        assert_eq!(rendered, doc);
    }

    #[test]
    fn number_emission_round_trips_exactly() {
        for x in [0.0, -1.0, 1.5, 1e300, 1e-300, 0.1, 123_456_789.123_456_7] {
            let v = parse(&number(x)).unwrap();
            assert_eq!(v.as_f64(), Some(x), "{x}");
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""a\u00e9b\ud83d\ude00c\td""#).unwrap();
        assert_eq!(v.as_str(), Some("aéb😀c\td"));
        // Raw multibyte UTF-8 passes through.
        let v = parse("\"héllo — ok\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo — ok"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "01",
            "1.",
            "1e",
            "+1",
            "nul",
            "\"unterminated",
            "\"\\q\"",
            "\"\\ud800x\"",
            "{\"a\":1 \"b\":2}",
            "1 2",
            "{\"a\":1,\"a\":2}",
            "[1] []",
            "'single'",
            "{\"a\"}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = parse(&deep).unwrap_err();
        assert_eq!(err.reason, "nesting too deep");
        let ok = "[".repeat(50) + "1" + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn strictness_allows_surrounding_whitespace_only() {
        assert!(parse("  {\"a\": [1, 2, 3]}  \n").is_ok());
        assert!(parse("  {} x").is_err());
    }

    #[test]
    fn error_display_carries_offset() {
        let e = parse("[1, x]").unwrap_err();
        assert!(e.to_string().contains("byte 4"), "{e}");
    }
}
