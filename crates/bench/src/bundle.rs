//! `LVCB` warm-cache bundle codec: a single-file, checksummed shipping
//! container for result-store records.
//!
//! A bundle is how a warm cache travels between machines: `lowvcc-store
//! export` walks a store root into one file, `import` (or `lowvcc-serve
//! --warm-bundle`) unpacks it into another store — after which a full
//! paper-artefact run reports zero simulations. The codec here is pure
//! and deterministic; all filesystem work lives in the admin layer
//! (`ResultStore::export_bundle` / `import_bundle`).
//!
//! Layout (all integers little-endian, mirroring `canon.rs`):
//!
//! ```text
//! "LVCB"                      4-byte magic
//! u32   bundle format version (1)
//! u32   engine semantics version
//! u64   record count
//! count × {
//!     u128  SimKey value
//!     u64   record length
//!     ...   LVCR record bytes (opaque here; validated at import)
//! }
//! u128  FNV-1a-128 digest over every preceding byte
//! ```
//!
//! The decoder fails closed exactly like the LVCR decoder: the digest
//! is verified **before any field is trusted**, version mismatches are
//! typed errors (a bundle produced under different engine semantics
//! must never seed a cache — its keys would alias fresh simulations
//! with stale physics), and trailing bytes are rejected. Individual
//! records are deliberately opaque at this layer; the importer decodes
//! each one and quarantines failures without abandoning the rest.

use lowvcc_core::canon::{fnv1a_128, CanonError, ENGINE_SEMANTICS_VERSION};

/// Magic prefix of a bundle file.
pub const BUNDLE_MAGIC: &[u8; 4] = b"LVCB";

/// Bundle container format version. Bump on any layout change.
pub const BUNDLE_FORMAT_VERSION: u32 = 1;

/// Digest width (FNV-1a-128) at the bundle tail.
const DIGEST_LEN: usize = 16;

/// Fixed header bytes before the first record: magic + format version
/// + engine version + record count.
const HEADER_LEN: usize = 4 + 4 + 4 + 8;

/// One shipped store record: the key's raw value and its encoded LVCR
/// bytes, exactly as they sit in a store's disk slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleRecord {
    /// Raw [`lowvcc_core::SimKey`] value.
    pub key: u128,
    /// Encoded LVCR record (`encode_sim_result` output).
    pub bytes: Vec<u8>,
}

/// Encodes `records` into a complete bundle file image. Deterministic:
/// the same records in the same order produce identical bytes (the
/// exporter sorts by key so two exports of one store compare equal).
#[must_use]
pub fn encode_bundle(records: &[BundleRecord]) -> Vec<u8> {
    let payload: usize = records.iter().map(|r| 16 + 8 + r.bytes.len()).sum();
    let mut out = Vec::with_capacity(HEADER_LEN + payload + DIGEST_LEN);
    out.extend_from_slice(BUNDLE_MAGIC);
    out.extend_from_slice(&BUNDLE_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&ENGINE_SEMANTICS_VERSION.to_le_bytes());
    out.extend_from_slice(&(records.len() as u64).to_le_bytes());
    for r in records {
        out.extend_from_slice(&r.key.to_le_bytes());
        out.extend_from_slice(&(r.bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(&r.bytes);
    }
    let digest = fnv1a_128(&out);
    out.extend_from_slice(&digest.to_le_bytes());
    out
}

/// Strict little-endian reader over the digest-verified body.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CanonError> {
        let have = self.buf.len() - self.pos;
        if n > have {
            return Err(CanonError::Truncated { needed: n, have });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CanonError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, CanonError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn u128(&mut self) -> Result<u128, CanonError> {
        Ok(u128::from_le_bytes(
            self.take(16)?.try_into().expect("16 bytes"),
        ))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Decodes a bundle file image, failing closed on any damage.
///
/// # Errors
///
/// [`CanonError::Truncated`] if the file ends early,
/// [`CanonError::ChecksumMismatch`] if the tail digest does not cover
/// the body (verified before anything else is read),
/// [`CanonError::BadMagic`] / [`CanonError::UnsupportedFormat`] /
/// [`CanonError::EngineVersionMismatch`] on header mismatches, and
/// [`CanonError::TrailingBytes`] if bytes follow the last record.
pub fn decode_bundle(bytes: &[u8]) -> Result<Vec<BundleRecord>, CanonError> {
    if bytes.len() < HEADER_LEN + DIGEST_LEN {
        return Err(CanonError::Truncated {
            needed: HEADER_LEN + DIGEST_LEN,
            have: bytes.len(),
        });
    }
    let (body, tail) = bytes.split_at(bytes.len() - DIGEST_LEN);
    let expect = u128::from_le_bytes(tail.try_into().expect("16 bytes"));
    if fnv1a_128(body) != expect {
        return Err(CanonError::ChecksumMismatch);
    }
    let mut r = Reader { buf: body, pos: 0 };
    if r.take(4)? != BUNDLE_MAGIC {
        return Err(CanonError::BadMagic);
    }
    let format = r.u32()?;
    if format != BUNDLE_FORMAT_VERSION {
        return Err(CanonError::UnsupportedFormat { found: format });
    }
    let engine = r.u32()?;
    if engine != ENGINE_SEMANTICS_VERSION {
        return Err(CanonError::EngineVersionMismatch {
            found: engine,
            expected: ENGINE_SEMANTICS_VERSION,
        });
    }
    let count = r.u64()?;
    // The digest already vouches for `count`, but cap the preallocation
    // anyway: trust bounds, not arithmetic.
    let mut records = Vec::with_capacity(usize::try_from(count.min(4096)).unwrap_or(0));
    for _ in 0..count {
        let key = r.u128()?;
        let len = usize::try_from(r.u64()?).map_err(|_| CanonError::Truncated {
            needed: usize::MAX,
            have: r.remaining(),
        })?;
        records.push(BundleRecord {
            key,
            bytes: r.take(len)?.to_vec(),
        });
    }
    if r.remaining() != 0 {
        return Err(CanonError::TrailingBytes {
            extra: r.remaining(),
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<BundleRecord> {
        vec![
            BundleRecord {
                key: 0x0123_4567_89ab_cdef_0011_2233_4455_6677,
                bytes: b"first record".to_vec(),
            },
            BundleRecord {
                key: u128::MAX,
                bytes: Vec::new(),
            },
            BundleRecord {
                key: 7,
                bytes: vec![0xAA; 300],
            },
        ]
    }

    #[test]
    fn round_trips_and_is_deterministic() {
        let records = sample();
        let a = encode_bundle(&records);
        let b = encode_bundle(&records);
        assert_eq!(a, b, "same records, same bytes");
        assert_eq!(decode_bundle(&a).unwrap(), records);
        assert_eq!(decode_bundle(&encode_bundle(&[])).unwrap(), Vec::new());
    }

    #[test]
    fn every_flipped_bit_in_the_header_or_body_is_caught() {
        let good = encode_bundle(&sample());
        for pos in 0..good.len() {
            let mut bad = good.clone();
            bad[pos] ^= 0x40;
            assert!(
                decode_bundle(&bad).is_err(),
                "flip at byte {pos} must not decode"
            );
        }
    }

    #[test]
    fn header_mismatches_are_typed() {
        // Version fields sit after the magic; rebuild bundles with the
        // digest recomputed so only the tested field is wrong.
        let rebuild = |mutate: &dyn Fn(&mut Vec<u8>)| {
            let full = encode_bundle(&sample());
            let mut body = full[..full.len() - 16].to_vec();
            mutate(&mut body);
            let digest = fnv1a_128(&body);
            body.extend_from_slice(&digest.to_le_bytes());
            body
        };
        let bad_magic = rebuild(&|b| b[0] = b'X');
        assert_eq!(decode_bundle(&bad_magic), Err(CanonError::BadMagic));
        let bad_format = rebuild(&|b| b[4..8].copy_from_slice(&99u32.to_le_bytes()));
        assert_eq!(
            decode_bundle(&bad_format),
            Err(CanonError::UnsupportedFormat { found: 99 })
        );
        let bad_engine = rebuild(&|b| b[8..12].copy_from_slice(&77u32.to_le_bytes()));
        assert_eq!(
            decode_bundle(&bad_engine),
            Err(CanonError::EngineVersionMismatch {
                found: 77,
                expected: ENGINE_SEMANTICS_VERSION,
            })
        );
        let trailing = rebuild(&|b| b.push(0));
        assert_eq!(
            decode_bundle(&trailing),
            Err(CanonError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn truncation_fails_closed_at_every_length() {
        let good = encode_bundle(&sample());
        for keep in 0..good.len() {
            assert!(
                decode_bundle(&good[..keep]).is_err(),
                "prefix of {keep} bytes must not decode"
            );
        }
    }
}
