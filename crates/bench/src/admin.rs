//! Operator surface of the result store: summaries, a full checksum
//! scrub, byte-budget garbage collection and quarantine management.
//!
//! Everything here backs the `lowvcc-store` admin binary. Unlike the
//! lookup/publish hot path (which is infallible by design — see
//! `store.rs`), admin operations return [`StoreError`]: an operator
//! running a scrub wants to *hear* that the root is unlistable, not have
//! it papered over.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::time::SystemTime;

use lowvcc_core::decode_sim_result;

use crate::store::{ResultStore, StoreError, QUARANTINE_DIR};

/// A point-in-time picture of what is on disk under a store root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreSummary {
    /// Live `.sim` records across all shards.
    pub entries: u64,
    /// Bytes held by live records.
    pub entry_bytes: u64,
    /// Records currently sitting in `quarantine/`.
    pub quarantined_entries: u64,
    /// Bytes held by quarantined records.
    pub quarantined_bytes: u64,
    /// Stale `*.tmp.*` publish leftovers swept when this handle opened.
    pub orphans_swept: u64,
    /// Whether this handle has latched memory-only (degraded) mode.
    pub degraded: bool,
}

/// Outcome of a full checksum scrub ([`ResultStore::verify`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScrubReport {
    /// Records examined.
    pub scanned: u64,
    /// Records that read and decoded cleanly.
    pub ok: u64,
    /// Records that failed and were moved to `quarantine/`.
    pub quarantined: u64,
    /// Bytes held by the clean records.
    pub ok_bytes: u64,
}

/// Outcome of a byte-budget collection ([`ResultStore::vacuum`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VacuumReport {
    /// Records kept.
    pub kept: u64,
    /// Records removed (least recently used first).
    pub removed: u64,
    /// Bytes remaining after the collection.
    pub kept_bytes: u64,
    /// Bytes reclaimed.
    pub removed_bytes: u64,
}

/// One record in `quarantine/`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// Full path of the quarantined file.
    pub path: PathBuf,
    /// Its size in bytes.
    pub bytes: u64,
}

/// A live on-disk record: path, size, and the recency used for LRU
/// collection.
struct DiskRecord {
    path: PathBuf,
    bytes: u64,
    touched: SystemTime,
}

fn io_err(path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// Lists every live `.sim` record under `dir` (quarantine excluded).
fn disk_records(dir: &Path) -> Result<Vec<DiskRecord>, StoreError> {
    let mut records = Vec::new();
    for shard in fs::read_dir(dir).map_err(|e| io_err(dir, e))? {
        let shard = shard.map_err(|e| io_err(dir, e))?.path();
        if !shard.is_dir() || shard.file_name().is_some_and(|f| f == QUARANTINE_DIR) {
            continue;
        }
        for entry in fs::read_dir(&shard).map_err(|e| io_err(&shard, e))? {
            let entry = entry.map_err(|e| io_err(&shard, e))?;
            let path = entry.path();
            if !path.extension().is_some_and(|e| e == "sim") {
                continue;
            }
            let meta = entry.metadata().map_err(|e| io_err(&path, e))?;
            // Access time where the filesystem tracks it (noatime and
            // relatime mounts are common), else modification time —
            // either way "least recently useful" for the vacuum order.
            let touched = meta
                .accessed()
                .or_else(|_| meta.modified())
                .unwrap_or(SystemTime::UNIX_EPOCH);
            records.push(DiskRecord {
                path,
                bytes: meta.len(),
                touched,
            });
        }
    }
    Ok(records)
}

impl ResultStore {
    /// Sizes up the store root: live entries, quarantine, sweep count,
    /// degradation flag. Ephemeral stores summarize as all-zero.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if a directory cannot be listed.
    pub fn summary(&self) -> Result<StoreSummary, StoreError> {
        let Some(dir) = self.dir() else {
            return Ok(StoreSummary::default());
        };
        let live = disk_records(dir)?;
        let quarantine = self.quarantine_list()?;
        Ok(StoreSummary {
            entries: live.len() as u64,
            entry_bytes: live.iter().map(|r| r.bytes).sum(),
            quarantined_entries: quarantine.len() as u64,
            quarantined_bytes: quarantine.iter().map(|q| q.bytes).sum(),
            orphans_swept: self.orphans_swept.load(Ordering::Relaxed),
            degraded: self.degraded(),
        })
    }

    /// Full checksum scrub: reads and decodes every live record through
    /// the I/O seam, quarantining each failure. A second `verify` right
    /// after therefore reports zero new quarantines — scrub-clean.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if a directory cannot be listed (individual
    /// record failures are quarantined, not errors).
    pub fn verify(&self) -> Result<ScrubReport, StoreError> {
        let Some(dir) = self.dir() else {
            return Ok(ScrubReport::default());
        };
        let mut report = ScrubReport::default();
        for record in disk_records(dir)? {
            report.scanned += 1;
            let healthy = match self.io.read(&record.path) {
                Ok(bytes) => decode_sim_result(&bytes)
                    .map(|_| ())
                    .map_err(|e| e.to_string()),
                Err(e) => Err(e.to_string()),
            };
            match healthy {
                Ok(()) => {
                    report.ok += 1;
                    report.ok_bytes += record.bytes;
                }
                Err(why) => {
                    self.quarantine(&record.path, &format!("scrub failed: {why}"));
                    report.quarantined += 1;
                }
            }
        }
        Ok(report)
    }

    /// Collects the store down to `max_bytes` of live records, removing
    /// the least recently used (by access time, falling back to mtime)
    /// first. Quarantined records are not counted against the budget —
    /// purge them separately.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if a directory cannot be listed or a victim
    /// cannot be removed.
    pub fn vacuum(&self, max_bytes: u64) -> Result<VacuumReport, StoreError> {
        let Some(dir) = self.dir() else {
            return Ok(VacuumReport::default());
        };
        let mut records = disk_records(dir)?;
        // Oldest first; path as a tiebreak so equal timestamps (coarse
        // filesystem clocks) still collect in a stable order.
        records.sort_by(|a, b| (a.touched, &a.path).cmp(&(b.touched, &b.path)));
        let total: u64 = records.iter().map(|r| r.bytes).sum();
        let mut report = VacuumReport {
            kept: records.len() as u64,
            kept_bytes: total,
            ..VacuumReport::default()
        };
        let mut over = total.saturating_sub(max_bytes);
        for victim in &records {
            if over == 0 {
                break;
            }
            self.io
                .remove_file(&victim.path)
                .map_err(|e| io_err(&victim.path, e))?;
            over = over.saturating_sub(victim.bytes);
            report.removed += 1;
            report.removed_bytes += victim.bytes;
            report.kept -= 1;
            report.kept_bytes -= victim.bytes;
        }
        Ok(report)
    }

    /// Lists the records currently in `quarantine/`, sorted by path.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the quarantine directory exists but cannot
    /// be listed.
    pub fn quarantine_list(&self) -> Result<Vec<QuarantineEntry>, StoreError> {
        let Some(dir) = self.dir() else {
            return Ok(Vec::new());
        };
        let qdir = dir.join(QUARANTINE_DIR);
        let listing = match fs::read_dir(&qdir) {
            Ok(l) => l,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(io_err(&qdir, e)),
        };
        let mut entries = Vec::new();
        for entry in listing {
            let entry = entry.map_err(|e| io_err(&qdir, e))?;
            let path = entry.path();
            if path.is_file() {
                let bytes = entry.metadata().map_err(|e| io_err(&path, e))?.len();
                entries.push(QuarantineEntry { path, bytes });
            }
        }
        entries.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(entries)
    }

    /// Deletes everything in `quarantine/`, returning how many records
    /// were purged.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if a quarantined record cannot be removed.
    pub fn quarantine_purge(&self) -> Result<u64, StoreError> {
        let entries = self.quarantine_list()?;
        for entry in &entries {
            self.io
                .remove_file(&entry.path)
                .map_err(|e| io_err(&entry.path, e))?;
        }
        Ok(entries.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Flight;
    use lowvcc_core::{sim_key, CoreConfig, Mechanism, SimConfig, SimKey, SimResult, Simulator};
    use lowvcc_sram::voltage::mv;
    use lowvcc_sram::CycleTimeModel;
    use lowvcc_trace::{TraceSpec, WorkloadFamily};

    fn run_at(vcc: u32) -> (SimKey, SimResult) {
        let timing = CycleTimeModel::silverthorne_45nm();
        let cfg = SimConfig::at_vcc(
            CoreConfig::silverthorne(),
            &timing,
            mv(vcc),
            Mechanism::Iraw,
        );
        let spec = TraceSpec::new(WorkloadFamily::Kernel, 0, 3_000);
        let result = Simulator::new(cfg.clone())
            .unwrap()
            .run(&spec.build().unwrap())
            .unwrap();
        (sim_key(&cfg, &spec), result)
    }

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lowvcc_admin_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn verify_quarantines_exactly_the_corrupt_records() {
        let dir = tmpdir("verify");
        let store = ResultStore::open(&dir).unwrap();
        let keys: Vec<SimKey> = [450u32, 500, 550]
            .iter()
            .map(|&v| {
                let (key, result) = run_at(v);
                store.put(key, &result);
                key
            })
            .collect();
        // Corrupt one of the three on disk.
        let hex = keys[1].to_hex();
        let victim = dir.join(&hex[..2]).join(format!("{hex}.sim"));
        let mut bytes = fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x80;
        fs::write(&victim, &bytes).unwrap();

        let report = store.verify().unwrap();
        assert_eq!(report.scanned, 3);
        assert_eq!(report.ok, 2);
        assert_eq!(report.quarantined, 1);
        // Scrub-clean: a second pass finds nothing left to quarantine.
        let again = store.verify().unwrap();
        assert_eq!(again.scanned, 2);
        assert_eq!(again.quarantined, 0);
        let summary = store.summary().unwrap();
        assert_eq!(summary.entries, 2);
        assert_eq!(summary.quarantined_entries, 1);
        assert_eq!(store.quarantine_list().unwrap().len(), 1);
        assert_eq!(store.quarantine_purge().unwrap(), 1);
        assert_eq!(store.quarantine_list().unwrap().len(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn vacuum_collects_down_to_the_byte_budget() {
        let dir = tmpdir("vacuum");
        let store = ResultStore::open(&dir).unwrap();
        let mut per_entry = 0;
        for v in [450u32, 475, 500, 525, 550] {
            let (key, result) = run_at(v);
            store.put(key, &result);
            per_entry = lowvcc_core::encode_sim_result(&result).len() as u64;
        }
        let before = store.summary().unwrap();
        assert_eq!(before.entries, 5);
        // Budget for two records: three oldest go.
        let report = store.vacuum(2 * per_entry).unwrap();
        assert_eq!(report.removed, 3);
        assert_eq!(report.kept, 2);
        assert!(report.kept_bytes <= 2 * per_entry);
        assert_eq!(store.summary().unwrap().entries, 2);
        // A roomy budget removes nothing.
        let noop = store.vacuum(u64::MAX).unwrap();
        assert_eq!(noop.removed, 0);
        // The survivors still verify clean.
        let scrub = store.verify().unwrap();
        assert_eq!((scrub.scanned, scrub.quarantined), (2, 0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn vacuumed_keys_resimulate_cleanly() {
        let dir = tmpdir("revive");
        let store = ResultStore::open(&dir).unwrap();
        let (key, result) = run_at(500);
        store.put(key, &result);
        store.vacuum(0).unwrap();
        assert_eq!(store.summary().unwrap().entries, 0);
        // The LRU may still answer; a cold handle must miss and lead.
        let cold = ResultStore::open(&dir).unwrap();
        assert!(matches!(cold.lookup(key), Flight::Lead(_)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ephemeral_admin_surface_is_all_zero() {
        let store = ResultStore::ephemeral();
        assert_eq!(store.summary().unwrap(), StoreSummary::default());
        assert_eq!(store.verify().unwrap(), ScrubReport::default());
        assert_eq!(store.vacuum(0).unwrap(), VacuumReport::default());
        assert_eq!(store.quarantine_list().unwrap(), Vec::new());
        assert_eq!(store.quarantine_purge().unwrap(), 0);
    }
}
