//! Operator surface of the result store: summaries, a full checksum
//! scrub, byte-budget garbage collection and quarantine management.
//!
//! Everything here backs the `lowvcc-store` admin binary. Unlike the
//! lookup/publish hot path (which is infallible by design — see
//! `store.rs`), admin operations return [`StoreError`]: an operator
//! running a scrub wants to *hear* that the root is unlistable, not have
//! it papered over.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::time::{Duration, SystemTime};

use lowvcc_core::{decode_sim_result, SimKey};

use crate::bundle::{decode_bundle, encode_bundle, BundleRecord};
use crate::store::{ResultStore, StoreError, QUARANTINE_DIR};

/// A point-in-time picture of what is on disk under a store root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreSummary {
    /// Live `.sim` records across all shards.
    pub entries: u64,
    /// Bytes held by live records.
    pub entry_bytes: u64,
    /// Records currently sitting in `quarantine/`.
    pub quarantined_entries: u64,
    /// Bytes held by quarantined records.
    pub quarantined_bytes: u64,
    /// Stale `*.tmp.*` publish leftovers swept when this handle opened.
    pub orphans_swept: u64,
    /// Whether this handle has latched memory-only (degraded) mode.
    pub degraded: bool,
}

/// Outcome of a full checksum scrub ([`ResultStore::verify`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScrubReport {
    /// Records examined.
    pub scanned: u64,
    /// Records that read and decoded cleanly.
    pub ok: u64,
    /// Records that failed and were moved to `quarantine/`.
    pub quarantined: u64,
    /// Bytes held by the clean records.
    pub ok_bytes: u64,
}

/// Outcome of a byte-budget collection ([`ResultStore::vacuum`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VacuumReport {
    /// Records kept.
    pub kept: u64,
    /// Records removed (least recently used first).
    pub removed: u64,
    /// Bytes remaining after the collection.
    pub kept_bytes: u64,
    /// Bytes reclaimed.
    pub removed_bytes: u64,
}

/// Outcome of packing a store into an `LVCB` bundle
/// ([`ResultStore::export_bundle`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BundleExportReport {
    /// Records shipped.
    pub records: u64,
    /// Size of the written bundle file.
    pub bytes: u64,
    /// Live records skipped because they failed to read, decode, or
    /// carry a parsable key — export never ships damage.
    pub skipped_corrupt: u64,
    /// Records filtered out by the `--since` window.
    pub skipped_stale: u64,
}

/// Outcome of unpacking an `LVCB` bundle ([`ResultStore::import_bundle`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BundleImportReport {
    /// Records newly landed in this store.
    pub imported: u64,
    /// Records whose disk slot was already filled (re-import is
    /// idempotent: same key, deterministically the same bytes).
    pub already_present: u64,
    /// Records that failed LVCR validation and were parked in
    /// `quarantine/` instead of entering the store.
    pub quarantined: u64,
}

/// One record in `quarantine/`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// Full path of the quarantined file.
    pub path: PathBuf,
    /// Its size in bytes.
    pub bytes: u64,
}

/// A live on-disk record: path, size, and the recency used for LRU
/// collection.
struct DiskRecord {
    path: PathBuf,
    bytes: u64,
    touched: SystemTime,
}

fn io_err(path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// Lists every live `.sim` record under `dir` (quarantine excluded).
fn disk_records(dir: &Path) -> Result<Vec<DiskRecord>, StoreError> {
    let mut records = Vec::new();
    for shard in fs::read_dir(dir).map_err(|e| io_err(dir, e))? {
        let shard = shard.map_err(|e| io_err(dir, e))?.path();
        if !shard.is_dir() || shard.file_name().is_some_and(|f| f == QUARANTINE_DIR) {
            continue;
        }
        for entry in fs::read_dir(&shard).map_err(|e| io_err(&shard, e))? {
            let entry = entry.map_err(|e| io_err(&shard, e))?;
            let path = entry.path();
            if !path.extension().is_some_and(|e| e == "sim") {
                continue;
            }
            let meta = entry.metadata().map_err(|e| io_err(&path, e))?;
            // Access time where the filesystem tracks it (noatime and
            // relatime mounts are common), else modification time —
            // either way "least recently useful" for the vacuum order.
            let touched = meta
                .accessed()
                .or_else(|_| meta.modified())
                .unwrap_or(SystemTime::UNIX_EPOCH);
            records.push(DiskRecord {
                path,
                bytes: meta.len(),
                touched,
            });
        }
    }
    Ok(records)
}

impl ResultStore {
    /// Sizes up the store root: live entries, quarantine, sweep count,
    /// degradation flag. Ephemeral stores summarize as all-zero.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if a directory cannot be listed.
    pub fn summary(&self) -> Result<StoreSummary, StoreError> {
        let Some(dir) = self.dir() else {
            return Ok(StoreSummary::default());
        };
        let live = disk_records(dir)?;
        let quarantine = self.quarantine_list()?;
        Ok(StoreSummary {
            entries: live.len() as u64,
            entry_bytes: live.iter().map(|r| r.bytes).sum(),
            quarantined_entries: quarantine.len() as u64,
            quarantined_bytes: quarantine.iter().map(|q| q.bytes).sum(),
            orphans_swept: self.orphans_swept.load(Ordering::Relaxed),
            degraded: self.degraded(),
        })
    }

    /// Full checksum scrub: reads and decodes every live record through
    /// the I/O seam, quarantining each failure. A second `verify` right
    /// after therefore reports zero new quarantines — scrub-clean.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if a directory cannot be listed (individual
    /// record failures are quarantined, not errors).
    pub fn verify(&self) -> Result<ScrubReport, StoreError> {
        let Some(dir) = self.dir() else {
            return Ok(ScrubReport::default());
        };
        let mut report = ScrubReport::default();
        for record in disk_records(dir)? {
            report.scanned += 1;
            let healthy = match self.io.read(&record.path) {
                Ok(bytes) => decode_sim_result(&bytes)
                    .map(|_| ())
                    .map_err(|e| e.to_string()),
                Err(e) => Err(e.to_string()),
            };
            match healthy {
                Ok(()) => {
                    report.ok += 1;
                    report.ok_bytes += record.bytes;
                }
                Err(why) => {
                    self.quarantine(&record.path, &format!("scrub failed: {why}"));
                    report.quarantined += 1;
                }
            }
        }
        Ok(report)
    }

    /// Collects the store down to `max_bytes` of live records, removing
    /// the least recently used (by access time, falling back to mtime)
    /// first. Quarantined records are not counted against the budget —
    /// purge them separately.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if a directory cannot be listed or a victim
    /// cannot be removed.
    pub fn vacuum(&self, max_bytes: u64) -> Result<VacuumReport, StoreError> {
        let Some(dir) = self.dir() else {
            return Ok(VacuumReport::default());
        };
        let mut records = disk_records(dir)?;
        // Oldest first; path as a tiebreak so equal timestamps (coarse
        // filesystem clocks) still collect in a stable order.
        records.sort_by(|a, b| (a.touched, &a.path).cmp(&(b.touched, &b.path)));
        let total: u64 = records.iter().map(|r| r.bytes).sum();
        let mut report = VacuumReport {
            kept: records.len() as u64,
            kept_bytes: total,
            ..VacuumReport::default()
        };
        let mut over = total.saturating_sub(max_bytes);
        for victim in &records {
            if over == 0 {
                break;
            }
            self.io
                .remove_file(&victim.path)
                .map_err(|e| io_err(&victim.path, e))?;
            over = over.saturating_sub(victim.bytes);
            report.removed += 1;
            report.removed_bytes += victim.bytes;
            report.kept -= 1;
            report.kept_bytes -= victim.bytes;
        }
        Ok(report)
    }

    /// Packs this store's live records into an `LVCB` bundle at `out`,
    /// written atomically (fsynced sibling tempfile, rename). Records
    /// are sorted by key, so two exports of identical content are
    /// byte-identical files. `since` keeps only records touched within
    /// that window (access time, falling back to mtime — the same
    /// recency the vacuum uses). Records that fail to read or decode
    /// are skipped and counted, never shipped. Ephemeral stores export
    /// an empty (but valid) bundle.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the root cannot be listed or the bundle
    /// cannot be written.
    pub fn export_bundle(
        &self,
        out: &Path,
        since: Option<Duration>,
    ) -> Result<BundleExportReport, StoreError> {
        let mut report = BundleExportReport::default();
        let mut shipped = Vec::new();
        if let Some(dir) = self.dir() {
            let cutoff = since.and_then(|window| SystemTime::now().checked_sub(window));
            for record in disk_records(dir)? {
                if cutoff.is_some_and(|c| record.touched < c) {
                    report.skipped_stale += 1;
                    continue;
                }
                let key = record
                    .path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .and_then(SimKey::from_hex);
                let Some(key) = key else {
                    report.skipped_corrupt += 1;
                    continue;
                };
                let Ok(bytes) = self.io.read(&record.path) else {
                    report.skipped_corrupt += 1;
                    continue;
                };
                if decode_sim_result(&bytes).is_err() {
                    report.skipped_corrupt += 1;
                    continue;
                }
                shipped.push(BundleRecord {
                    key: key.value(),
                    bytes,
                });
            }
        }
        shipped.sort_by_key(|r| r.key);
        report.records = shipped.len() as u64;
        let image = encode_bundle(&shipped);
        report.bytes = image.len() as u64;
        let name = out
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("bundle.lvcb");
        let tmp = out.with_file_name(format!(".{name}.tmp.{}", std::process::id()));
        self.io.write_sync(&tmp, &image).map_err(|e| {
            let _ = self.io.remove_file(&tmp);
            io_err(&tmp, e)
        })?;
        self.io.rename(&tmp, out).map_err(|e| {
            let _ = self.io.remove_file(&tmp);
            io_err(out, e)
        })?;
        if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
            // Durability of the rename itself; failure here does not
            // un-write the bundle.
            let _ = self.io.sync_dir(parent);
        }
        Ok(report)
    }

    /// Unpacks an `LVCB` bundle into this store. The bundle envelope is
    /// verified fail-closed first (digest, magic, versions) — a damaged
    /// or foreign-engine bundle imports nothing. Each record is then
    /// LVCR-decoded: valid ones are published atomically into their
    /// disk slot (skipping slots already filled, so re-import after a
    /// partial failure is idempotent), invalid ones are parked in
    /// `quarantine/` and counted rather than aborting the rest.
    /// Ephemeral stores import into the memory tier.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] if the bundle envelope fails validation;
    /// [`StoreError::Io`] if the bundle cannot be read or a record
    /// cannot be published.
    pub fn import_bundle(&self, file: &Path) -> Result<BundleImportReport, StoreError> {
        let image = self.io.read(file).map_err(|e| io_err(file, e))?;
        let records = decode_bundle(&image).map_err(|source| StoreError::Corrupt {
            path: file.to_path_buf(),
            source,
        })?;
        let mut report = BundleImportReport::default();
        for rec in records {
            let key = SimKey::from_value(rec.key);
            match decode_sim_result(&rec.bytes) {
                Err(_) => {
                    if let Some(dir) = self.dir() {
                        let qdir = dir.join(QUARANTINE_DIR);
                        let dest = qdir.join(format!("bundle-{}.rec", key.to_hex()));
                        // Best-effort parking; the count is the record
                        // of what happened even if the write fails.
                        let _ = self
                            .io
                            .create_dir_all(&qdir)
                            .and_then(|()| self.io.write_sync(&dest, &rec.bytes));
                    }
                    self.quarantined.fetch_add(1, Ordering::Relaxed);
                    report.quarantined += 1;
                }
                Ok(result) => match self.entry_path(key) {
                    Some(path) => {
                        if path.exists() {
                            report.already_present += 1;
                        } else {
                            self.try_publish(&path, &rec.bytes)
                                .map_err(|e| io_err(&path, e))?;
                            report.imported += 1;
                        }
                    }
                    None => {
                        self.insert_memory(key, &result);
                        report.imported += 1;
                    }
                },
            }
        }
        Ok(report)
    }

    /// Lists the records currently in `quarantine/`, sorted by path.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the quarantine directory exists but cannot
    /// be listed.
    pub fn quarantine_list(&self) -> Result<Vec<QuarantineEntry>, StoreError> {
        let Some(dir) = self.dir() else {
            return Ok(Vec::new());
        };
        let qdir = dir.join(QUARANTINE_DIR);
        let listing = match fs::read_dir(&qdir) {
            Ok(l) => l,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(io_err(&qdir, e)),
        };
        let mut entries = Vec::new();
        for entry in listing {
            let entry = entry.map_err(|e| io_err(&qdir, e))?;
            let path = entry.path();
            if path.is_file() {
                let bytes = entry.metadata().map_err(|e| io_err(&path, e))?.len();
                entries.push(QuarantineEntry { path, bytes });
            }
        }
        entries.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(entries)
    }

    /// Deletes everything in `quarantine/`, returning how many records
    /// were purged.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if a quarantined record cannot be removed.
    pub fn quarantine_purge(&self) -> Result<u64, StoreError> {
        let entries = self.quarantine_list()?;
        for entry in &entries {
            self.io
                .remove_file(&entry.path)
                .map_err(|e| io_err(&entry.path, e))?;
        }
        Ok(entries.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Flight;
    use lowvcc_core::{sim_key, CoreConfig, Mechanism, SimConfig, SimKey, SimResult, Simulator};
    use lowvcc_sram::voltage::mv;
    use lowvcc_sram::CycleTimeModel;
    use lowvcc_trace::{TraceSpec, WorkloadFamily};

    fn run_at(vcc: u32) -> (SimKey, SimResult) {
        let timing = CycleTimeModel::silverthorne_45nm();
        let cfg = SimConfig::at_vcc(
            CoreConfig::silverthorne(),
            &timing,
            mv(vcc),
            Mechanism::Iraw,
        );
        let spec = TraceSpec::new(WorkloadFamily::Kernel, 0, 3_000);
        let result = Simulator::new(cfg.clone())
            .unwrap()
            .run(&spec.build().unwrap())
            .unwrap();
        (sim_key(&cfg, &spec), result)
    }

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lowvcc_admin_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn verify_quarantines_exactly_the_corrupt_records() {
        let dir = tmpdir("verify");
        let store = ResultStore::open(&dir).unwrap();
        let keys: Vec<SimKey> = [450u32, 500, 550]
            .iter()
            .map(|&v| {
                let (key, result) = run_at(v);
                store.put(key, &result);
                key
            })
            .collect();
        // Corrupt one of the three on disk.
        let hex = keys[1].to_hex();
        let victim = dir.join(&hex[..2]).join(format!("{hex}.sim"));
        let mut bytes = fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x80;
        fs::write(&victim, &bytes).unwrap();

        let report = store.verify().unwrap();
        assert_eq!(report.scanned, 3);
        assert_eq!(report.ok, 2);
        assert_eq!(report.quarantined, 1);
        // Scrub-clean: a second pass finds nothing left to quarantine.
        let again = store.verify().unwrap();
        assert_eq!(again.scanned, 2);
        assert_eq!(again.quarantined, 0);
        let summary = store.summary().unwrap();
        assert_eq!(summary.entries, 2);
        assert_eq!(summary.quarantined_entries, 1);
        assert_eq!(store.quarantine_list().unwrap().len(), 1);
        assert_eq!(store.quarantine_purge().unwrap(), 1);
        assert_eq!(store.quarantine_list().unwrap().len(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn vacuum_collects_down_to_the_byte_budget() {
        let dir = tmpdir("vacuum");
        let store = ResultStore::open(&dir).unwrap();
        let mut per_entry = 0;
        for v in [450u32, 475, 500, 525, 550] {
            let (key, result) = run_at(v);
            store.put(key, &result);
            per_entry = lowvcc_core::encode_sim_result(&result).len() as u64;
        }
        let before = store.summary().unwrap();
        assert_eq!(before.entries, 5);
        // Budget for two records: three oldest go.
        let report = store.vacuum(2 * per_entry).unwrap();
        assert_eq!(report.removed, 3);
        assert_eq!(report.kept, 2);
        assert!(report.kept_bytes <= 2 * per_entry);
        assert_eq!(store.summary().unwrap().entries, 2);
        // A roomy budget removes nothing.
        let noop = store.vacuum(u64::MAX).unwrap();
        assert_eq!(noop.removed, 0);
        // The survivors still verify clean.
        let scrub = store.verify().unwrap();
        assert_eq!((scrub.scanned, scrub.quarantined), (2, 0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn vacuumed_keys_resimulate_cleanly() {
        let dir = tmpdir("revive");
        let store = ResultStore::open(&dir).unwrap();
        let (key, result) = run_at(500);
        store.put(key, &result);
        store.vacuum(0).unwrap();
        assert_eq!(store.summary().unwrap().entries, 0);
        // The LRU may still answer; a cold handle must miss and lead.
        let cold = ResultStore::open(&dir).unwrap();
        assert!(matches!(cold.lookup(key), Flight::Lead(_)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bundle_round_trip_ships_a_warm_cache() {
        let src = tmpdir("bundle_src");
        let store = ResultStore::open(&src).unwrap();
        let keys: Vec<SimKey> = [450u32, 500, 550]
            .iter()
            .map(|&v| {
                let (key, result) = run_at(v);
                store.put(key, &result);
                key
            })
            .collect();
        let out = tmpdir("bundle_out");
        fs::create_dir_all(&out).unwrap();
        let bundle = out.join("warm.lvcb");
        let report = store.export_bundle(&bundle, None).unwrap();
        assert_eq!(report.records, 3);
        assert_eq!((report.skipped_corrupt, report.skipped_stale), (0, 0));
        // Deterministic: a second export is byte-identical.
        let bundle2 = out.join("warm2.lvcb");
        store.export_bundle(&bundle2, None).unwrap();
        assert_eq!(fs::read(&bundle).unwrap(), fs::read(&bundle2).unwrap());

        // Import into a fresh root: a cold handle then hits everything.
        let dst = tmpdir("bundle_dst");
        let fresh = ResultStore::open(&dst).unwrap();
        let imported = fresh.import_bundle(&bundle).unwrap();
        assert_eq!(imported.imported, 3);
        let cold = ResultStore::open(&dst).unwrap();
        for &key in &keys {
            assert!(cold.get(key).is_some());
        }
        assert_eq!(cold.stats().misses, 0);
        // Re-import is idempotent.
        let again = fresh.import_bundle(&bundle).unwrap();
        assert_eq!((again.imported, again.already_present), (0, 3));

        // An ephemeral store imports into its memory tier.
        let mem = ResultStore::ephemeral();
        assert_eq!(mem.import_bundle(&bundle).unwrap().imported, 3);
        assert!(mem.get(keys[0]).is_some());
        assert_eq!(mem.disk_entries(), 0);
        for d in [&src, &out, &dst] {
            let _ = fs::remove_dir_all(d);
        }
    }

    #[test]
    fn bundle_since_window_filters_stale_records() {
        let src = tmpdir("bundle_since");
        let store = ResultStore::open(&src).unwrap();
        let (key, result) = run_at(500);
        store.put(key, &result);
        // A generous window keeps everything…
        let all = src.join("all.lvcb");
        let report = store
            .export_bundle(&all, Some(Duration::from_secs(3600)))
            .unwrap();
        assert_eq!((report.records, report.skipped_stale), (1, 0));
        // …and once the record is older than the window, it is skipped.
        std::thread::sleep(Duration::from_millis(60));
        let none = src.join("none.lvcb");
        let report = store
            .export_bundle(&none, Some(Duration::from_millis(1)))
            .unwrap();
        assert_eq!((report.records, report.skipped_stale), (0, 1));
        let _ = fs::remove_dir_all(&src);
    }

    #[test]
    fn bundle_import_fails_closed_and_quarantines_bad_records() {
        let (key, result) = run_at(500);
        let good = crate::bundle::BundleRecord {
            key: key.value(),
            bytes: lowvcc_core::encode_sim_result(&result),
        };
        let bad = crate::bundle::BundleRecord {
            key: key.value() ^ 1,
            bytes: b"not an LVCR record".to_vec(),
        };
        let image = crate::bundle::encode_bundle(&[good, bad]);
        let dir = tmpdir("bundle_quarantine");
        fs::create_dir_all(&dir).unwrap();
        let file = dir.join("mixed.lvcb");
        fs::write(&file, &image).unwrap();

        let root = tmpdir("bundle_quarantine_root");
        let store = ResultStore::open(&root).unwrap();
        let report = store.import_bundle(&file).unwrap();
        assert_eq!((report.imported, report.quarantined), (1, 1));
        assert_eq!(store.quarantine_list().unwrap().len(), 1);
        assert!(store.get(key).is_some());

        // A flipped byte anywhere in the envelope imports nothing.
        let mut torn = image;
        torn[10] ^= 0x20;
        fs::write(&file, &torn).unwrap();
        let fresh_root = tmpdir("bundle_torn_root");
        let fresh = ResultStore::open(&fresh_root).unwrap();
        assert!(matches!(
            fresh.import_bundle(&file),
            Err(StoreError::Corrupt { .. })
        ));
        assert_eq!(fresh.summary().unwrap().entries, 0);
        for d in [&dir, &root, &fresh_root] {
            let _ = fs::remove_dir_all(d);
        }
    }

    #[test]
    fn ephemeral_admin_surface_is_all_zero() {
        let store = ResultStore::ephemeral();
        assert_eq!(store.summary().unwrap(), StoreSummary::default());
        assert_eq!(store.verify().unwrap(), ScrubReport::default());
        assert_eq!(store.vacuum(0).unwrap(), VacuumReport::default());
        assert_eq!(store.quarantine_list().unwrap(), Vec::new());
        assert_eq!(store.quarantine_purge().unwrap(), 0);
    }
}
